//! Chain search over the delegation graph: the three wallet query forms
//! (§4.1) with monotonicity-based pruning (§4.2.3).
//!
//! The engine is generic over [`GraphView`] so the same traversal runs
//! against the single-threaded [`DelegationGraph`] and the concurrent
//! [`crate::ShardedGraph`]. With `workers > 1` the breadth-first frontier
//! is expanded level-synchronously by a bounded worker pool: workers claim
//! states from the current level with an atomic cursor and compute the
//! frontier-independent part of each edge (attribute absorption,
//! constraint pruning, support resolution, proof assembly), then a
//! sequential merge replays dominance checks, frontier updates, and result
//! insertion in exactly the order the single-threaded search would have
//! used — so query *results* are identical for any worker count. Only the
//! work counters may grow (speculative support resolution for edges the
//! merge later dominance-prunes, and whole-level expansion where the
//! sequential search would have returned mid-level).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use drbac_core::{
    AttrAccumulator, AttrConstraint, AttrOp, DeclarationSet, DelegationId, EntityId, Node, Proof,
    ProofStep, SignedDelegation, Timestamp,
};

use crate::view::GraphView;
use crate::DelegationGraph;

/// Parameters of a graph search.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Logical time (expiry filtering).
    pub now: Timestamp,
    /// Attribute constraints the resulting proof must satisfy.
    pub constraints: Vec<AttrConstraint>,
    /// Maximum primary-chain length (default 64).
    pub max_depth: usize,
    /// Prune branches whose accumulated attributes already violate the
    /// constraints (§4.2.3). Sound because accumulation is monotone;
    /// disable only to measure the pruning benefit.
    pub prune_by_constraints: bool,
    /// Depth limit for recursive support-proof resolution (default 8).
    pub max_support_depth: usize,
    /// Worker threads for frontier expansion (default 1 = sequential).
    /// Results are identical for any value; see the module docs.
    pub workers: usize,
}

impl SearchOptions {
    /// Defaults at logical time `now`: no constraints, pruning enabled.
    pub fn at(now: Timestamp) -> Self {
        SearchOptions {
            now,
            constraints: Vec::new(),
            max_depth: 64,
            prune_by_constraints: true,
            max_support_depth: 8,
            workers: 1,
        }
    }

    /// Adds a constraint.
    pub fn with_constraint(mut self, c: AttrConstraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Disables constraint pruning (for measurement).
    pub fn without_pruning(mut self) -> Self {
        self.prune_by_constraints = false;
        self
    }

    /// Sets the primary-chain depth limit.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Sets the frontier-expansion worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Work counters from one search, for the efficiency experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// States dequeued and expanded.
    pub nodes_expanded: usize,
    /// Edges (delegations) examined during expansion.
    pub edges_considered: usize,
    /// States enqueued (after pruning/dominance filtering).
    pub states_enqueued: usize,
    /// Recursive support-proof searches performed (not counting provided
    /// supports).
    pub support_resolutions: usize,
}

impl SearchStats {
    /// Adds another stats record into this one.
    pub fn absorb(&mut self, other: SearchStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.edges_considered += other.edges_considered;
        self.states_enqueued += other.states_enqueued;
        self.support_resolutions += other.support_resolutions;
    }
}

/// Search direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Reverse,
}

struct Engine<'g, G: GraphView + ?Sized> {
    graph: &'g G,
    opts: &'g SearchOptions,
    decls: DeclarationSet,
    stats: SearchStats,
}

/// One search state: a node plus the proof and accumulation that reach it.
struct State {
    node: Node,
    proof: Proof,
    acc: AttrAccumulator,
}

/// Frontier-independent expansion of one edge, produced by a worker and
/// consumed by the sequential merge.
struct Candidate {
    next_node: Node,
    acc: AttrAccumulator,
    proof: Proof,
    satisfies: bool,
}

/// Direct query (§4.1) against any [`GraphView`]: does a proof
/// `subject ⇒ object` exist that satisfies the constraints? Returns the
/// first one found (breadth-first, so minimal chain length) and the search
/// work done.
pub fn direct_query_on<G: GraphView + ?Sized>(
    graph: &G,
    subject: &Node,
    object: &Node,
    opts: &SearchOptions,
) -> (Option<Proof>, SearchStats) {
    let start = std::time::Instant::now();
    let mut engine = Engine::new(graph, opts);
    let found = engine
        .search(subject, Some(object), Direction::Forward)
        .remove(object);
    drbac_obs::static_histogram!("drbac.graph.search.direct.ns")
        .record(start.elapsed().as_nanos() as u64);
    (found, engine.stats)
}

/// Subject query (§4.1) against any [`GraphView`]: enumerate proofs
/// `subject ⇒ *` that do not violate the constraints, one per reachable
/// node, in deterministic order (chain length, then delegation ids).
pub fn subject_query_on<G: GraphView + ?Sized>(
    graph: &G,
    subject: &Node,
    opts: &SearchOptions,
) -> (Vec<Proof>, SearchStats) {
    let mut engine = Engine::new(graph, opts);
    let reached = engine.search(subject, None, Direction::Forward);
    let mut proofs: Vec<Proof> = reached.into_values().filter(|p| !p.is_trivial()).collect();
    proofs.sort_by_cached_key(|p| order_key(p, p.object()));
    (proofs, engine.stats)
}

/// Object query (§4.1) against any [`GraphView`]: enumerate proofs
/// `* ⇒ object` that do not violate the constraints, one per reaching
/// node, in deterministic order (chain length, then delegation ids).
pub fn object_query_on<G: GraphView + ?Sized>(
    graph: &G,
    object: &Node,
    opts: &SearchOptions,
) -> (Vec<Proof>, SearchStats) {
    let mut engine = Engine::new(graph, opts);
    let reached = engine.search(object, None, Direction::Reverse);
    let mut proofs: Vec<Proof> = reached.into_values().filter(|p| !p.is_trivial()).collect();
    proofs.sort_by_cached_key(|p| order_key(p, p.subject()));
    (proofs, engine.stats)
}

/// Deterministic multi-proof ordering: chain length first (shortest
/// proofs lead), then the proof's full delegation-id set, then the far
/// endpoint as a tiebreak. Independent of hash-map iteration order and
/// shard count, so oracle tests and benches are stable.
fn order_key(p: &Proof, endpoint: &Node) -> (usize, Vec<DelegationId>, String) {
    let ids: Vec<DelegationId> = p.delegation_ids().into_iter().collect();
    (p.chain_len(), ids, endpoint.to_string())
}

impl DelegationGraph {
    /// Direct query (§4.1): does a proof `subject ⇒ object` exist that
    /// satisfies the constraints? Returns the first one found
    /// (breadth-first, so minimal chain length) and the search work done.
    pub fn direct_query(
        &self,
        subject: &Node,
        object: &Node,
        opts: &SearchOptions,
    ) -> (Option<Proof>, SearchStats) {
        direct_query_on(self, subject, object, opts)
    }

    /// Subject query (§4.1): enumerate proofs `subject ⇒ *` that do not
    /// violate the constraints, one per reachable node.
    pub fn subject_query(&self, subject: &Node, opts: &SearchOptions) -> (Vec<Proof>, SearchStats) {
        subject_query_on(self, subject, opts)
    }

    /// Object query (§4.1): enumerate proofs `* ⇒ object` that do not
    /// violate the constraints, one per reaching node.
    pub fn object_query(&self, object: &Node, opts: &SearchOptions) -> (Vec<Proof>, SearchStats) {
        object_query_on(self, object, opts)
    }
}

impl DelegationGraph {
    /// Enumerates *all* distinct proofs `subject ⇒ object` (simple paths,
    /// no node repeated) satisfying the constraints, up to `max_proofs`.
    ///
    /// This is the exhaustive form of the paper's §4.1 queries
    /// ("enumerate the full set of proofs") and the direct measure of the
    /// §4.2.3 path-explosion phenomenon: in a tree with constant
    /// branching the count grows exponentially with depth, which is why
    /// [`DelegationGraph::direct_query`] exists as the single-answer
    /// search. Returns `(proofs, stats)`; stats count every edge touched
    /// during the walk.
    pub fn enumerate_proofs(
        &self,
        subject: &Node,
        object: &Node,
        opts: &SearchOptions,
        max_proofs: usize,
    ) -> (Vec<Proof>, SearchStats) {
        let mut engine = Engine::new(self, opts);
        let mut proofs = Vec::new();
        let mut on_path: Vec<Node> = vec![subject.clone()];
        engine.enumerate(
            subject,
            object,
            &Proof::trivial(subject.clone()),
            &mut on_path,
            &mut proofs,
            max_proofs,
        );
        (proofs, engine.stats)
    }
}

impl<'g, G: GraphView + ?Sized> Engine<'g, G> {
    fn new(graph: &'g G, opts: &'g SearchOptions) -> Self {
        Engine {
            graph,
            opts,
            decls: graph.declaration_set(),
            stats: SearchStats::default(),
        }
    }

    /// Depth-first simple-path enumeration for
    /// [`DelegationGraph::enumerate_proofs`].
    fn enumerate(
        &mut self,
        node: &Node,
        target: &Node,
        proof_so_far: &Proof,
        on_path: &mut Vec<Node>,
        proofs: &mut Vec<Proof>,
        max_proofs: usize,
    ) {
        if proofs.len() >= max_proofs || proof_so_far.chain_len() >= self.opts.max_depth {
            return;
        }
        self.stats.nodes_expanded += 1;
        let edges = self.graph.edges_from(node, self.opts.now);
        for cert in edges {
            if proofs.len() >= max_proofs {
                return;
            }
            self.stats.edges_considered += 1;
            let next = cert.delegation().object().clone();
            if on_path.contains(&next) {
                continue; // simple paths only
            }
            let mut acc = proof_so_far.accumulate();
            for clause in cert.delegation().clauses() {
                acc.absorb_clause(clause);
            }
            if self.opts.prune_by_constraints
                && !self.opts.constraints.is_empty()
                && !acc.satisfies(&self.opts.constraints, &self.decls)
            {
                continue;
            }
            let Some(step) = self.build_step(&cert, &mut Vec::new(), 0) else {
                continue;
            };
            let tail = Proof::from_steps(vec![step]).expect("single step");
            let candidate = proof_so_far.clone().concat(tail).expect("linked");
            if !candidate.respects_extension_depths() {
                continue;
            }
            if &next == target {
                if candidate
                    .accumulate()
                    .satisfies(&self.opts.constraints, &self.decls)
                {
                    proofs.push(candidate);
                }
                continue;
            }
            on_path.push(next.clone());
            self.enumerate(&next, target, &candidate, on_path, proofs, max_proofs);
            on_path.pop();
        }
    }

    /// Breadth-first search from `start`. Forward direction follows
    /// subject→object edges; reverse follows object→subject. Returns the
    /// best (first-found, non-dominated) proof per reached node. If
    /// `target` is given, stops as soon as a satisfying proof reaches it.
    fn search(
        &mut self,
        start: &Node,
        target: Option<&Node>,
        dir: Direction,
    ) -> HashMap<Node, Proof> {
        if self.opts.workers > 1 {
            self.search_level_parallel(start, target, dir)
        } else {
            self.search_sequential(start, target, dir)
        }
    }

    fn search_sequential(
        &mut self,
        start: &Node,
        target: Option<&Node>,
        dir: Direction,
    ) -> HashMap<Node, Proof> {
        let mut results: HashMap<Node, Proof> = HashMap::new();
        // Pareto frontier of accumulations seen per node (constrained
        // searches); plain visited set otherwise.
        let mut frontier: HashMap<Node, Vec<AttrAccumulator>> = HashMap::new();
        let mut queue: VecDeque<State> = VecDeque::new();

        let initial = State {
            node: start.clone(),
            proof: Proof::trivial(start.clone()),
            acc: AttrAccumulator::new(),
        };
        frontier
            .entry(start.clone())
            .or_default()
            .push(initial.acc.clone());
        results.insert(start.clone(), initial.proof.clone());
        queue.push_back(initial);

        while let Some(state) = queue.pop_front() {
            self.stats.nodes_expanded += 1;
            if state.proof.chain_len() >= self.opts.max_depth {
                continue;
            }
            let edges = match dir {
                Direction::Forward => self.graph.edges_from(&state.node, self.opts.now),
                Direction::Reverse => self.graph.edges_to(&state.node, self.opts.now),
            };
            for cert in edges {
                self.stats.edges_considered += 1;
                let next_node = match dir {
                    Direction::Forward => cert.delegation().object().clone(),
                    Direction::Reverse => cert.delegation().subject().clone(),
                };

                let mut acc = state.acc.clone();
                for clause in cert.delegation().clauses() {
                    acc.absorb_clause(clause);
                }
                if self.opts.prune_by_constraints
                    && !self.opts.constraints.is_empty()
                    && !acc.satisfies(&self.opts.constraints, &self.decls)
                {
                    continue;
                }

                // Dominance check against the node's frontier.
                if frontier.get(&next_node).is_some_and(|seen| {
                    seen.iter()
                        .any(|prev| dominates(prev, &acc, &self.opts.constraints, &self.decls))
                }) {
                    continue;
                }

                // Resolve supports; an unusable edge is skipped.
                let Some(step) = self.build_step(&cert, &mut Vec::new(), 0) else {
                    continue;
                };

                let proof = match dir {
                    Direction::Forward => {
                        let tail = Proof::from_steps(vec![step]).expect("single step");
                        state
                            .proof
                            .clone()
                            .concat(tail)
                            .expect("linked by construction")
                    }
                    Direction::Reverse => {
                        let head = Proof::from_steps(vec![step]).expect("single step");
                        head.concat(state.proof.clone())
                            .expect("linked by construction")
                    }
                };
                // Transitive-trust limits: drop chains the validator
                // would reject (forward appends can only break the new
                // step; reverse prepends shift every position).
                if !proof.respects_extension_depths() {
                    continue;
                }

                // Only a usable step may join the frontier; an edge whose
                // support cannot be resolved (or whose chain violates a
                // depth limit) must not dominance-prune a later viable
                // path with the same accumulation.
                let seen = frontier.entry(next_node.clone()).or_default();
                seen.retain(|prev| !dominates(&acc, prev, &self.opts.constraints, &self.decls));
                seen.push(acc.clone());

                // A proof only counts as an answer if it satisfies the
                // constraints; accumulation is monotone, so a violating
                // prefix can never recover (this keeps unpruned searches
                // in agreement with pruned ones).
                if proof
                    .accumulate()
                    .satisfies(&self.opts.constraints, &self.decls)
                {
                    results
                        .entry(next_node.clone())
                        .or_insert_with(|| proof.clone());
                    if target == Some(&next_node) {
                        results.insert(next_node, proof);
                        return results;
                    }
                }

                self.stats.states_enqueued += 1;
                queue.push_back(State {
                    node: next_node,
                    proof,
                    acc,
                });
            }
        }
        results
    }

    /// Level-synchronous parallel variant of
    /// [`Engine::search_sequential`]: each BFS level is expanded by a
    /// worker pool, then merged sequentially in the exact order the
    /// sequential search would have used, so results are identical.
    fn search_level_parallel(
        &mut self,
        start: &Node,
        target: Option<&Node>,
        dir: Direction,
    ) -> HashMap<Node, Proof> {
        let mut results: HashMap<Node, Proof> = HashMap::new();
        let mut frontier: HashMap<Node, Vec<AttrAccumulator>> = HashMap::new();
        let mut queue: VecDeque<State> = VecDeque::new();

        let initial = State {
            node: start.clone(),
            proof: Proof::trivial(start.clone()),
            acc: AttrAccumulator::new(),
        };
        frontier
            .entry(start.clone())
            .or_default()
            .push(initial.acc.clone());
        results.insert(start.clone(), initial.proof.clone());
        queue.push_back(initial);

        while !queue.is_empty() {
            let level: Vec<State> = queue.drain(..).collect();
            let expansions: Vec<Vec<Candidate>> = if level.len() == 1 {
                vec![self.expand_state(&level[0], dir)]
            } else {
                self.expand_level(&level, dir)
            };
            // Sequential merge, replaying the frontier-dependent steps in
            // (state, edge) order — exactly the order the sequential
            // search visits them.
            for candidates in expansions {
                for cand in candidates {
                    if frontier.get(&cand.next_node).is_some_and(|seen| {
                        seen.iter().any(|prev| {
                            dominates(prev, &cand.acc, &self.opts.constraints, &self.decls)
                        })
                    }) {
                        continue;
                    }
                    let seen = frontier.entry(cand.next_node.clone()).or_default();
                    seen.retain(|prev| {
                        !dominates(&cand.acc, prev, &self.opts.constraints, &self.decls)
                    });
                    seen.push(cand.acc.clone());
                    if cand.satisfies {
                        results
                            .entry(cand.next_node.clone())
                            .or_insert_with(|| cand.proof.clone());
                        if target == Some(&cand.next_node) {
                            results.insert(cand.next_node, cand.proof);
                            return results;
                        }
                    }
                    self.stats.states_enqueued += 1;
                    queue.push_back(State {
                        node: cand.next_node,
                        proof: cand.proof,
                        acc: cand.acc,
                    });
                }
            }
        }
        results
    }

    /// Expands every state of one BFS level on a bounded worker pool.
    /// Workers claim states through an atomic cursor (cheap work
    /// stealing: an idle worker takes the next unclaimed state, so uneven
    /// expansion costs balance out) and never touch shared search state.
    fn expand_level(&mut self, level: &[State], dir: Direction) -> Vec<Vec<Candidate>> {
        drbac_obs::static_counter!("drbac.graph.search.parallel_level.count").inc();
        let workers = self.opts.workers.min(level.len());
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Vec<Candidate>, SearchStats)>> =
            Mutex::new(Vec::with_capacity(level.len()));
        let graph = self.graph;
        let opts = self.opts;
        let decls = &self.decls;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Engine {
                        graph,
                        opts,
                        decls: decls.clone(),
                        stats: SearchStats::default(),
                    };
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= level.len() {
                            break;
                        }
                        let candidates = local.expand_state(&level[idx], dir);
                        let stats = std::mem::take(&mut local.stats);
                        collected.lock().unwrap().push((idx, candidates, stats));
                    }
                });
            }
        });
        let mut collected = collected.into_inner().unwrap();
        collected.sort_by_key(|(idx, _, _)| *idx);
        let mut expansions = Vec::with_capacity(collected.len());
        for (_, candidates, stats) in collected {
            self.stats.absorb(stats);
            expansions.push(candidates);
        }
        expansions
    }

    /// The frontier-independent part of expanding one state: fetch edges,
    /// absorb attributes, constraint-prune, resolve supports, assemble
    /// the candidate proof. Support resolution is speculative here — the
    /// merge may still dominance-prune the candidate — which can only
    /// increase the work counters, never change results.
    fn expand_state(&mut self, state: &State, dir: Direction) -> Vec<Candidate> {
        self.stats.nodes_expanded += 1;
        if state.proof.chain_len() >= self.opts.max_depth {
            return Vec::new();
        }
        let edges = match dir {
            Direction::Forward => self.graph.edges_from(&state.node, self.opts.now),
            Direction::Reverse => self.graph.edges_to(&state.node, self.opts.now),
        };
        let mut out = Vec::new();
        for cert in edges {
            self.stats.edges_considered += 1;
            let next_node = match dir {
                Direction::Forward => cert.delegation().object().clone(),
                Direction::Reverse => cert.delegation().subject().clone(),
            };
            let mut acc = state.acc.clone();
            for clause in cert.delegation().clauses() {
                acc.absorb_clause(clause);
            }
            if self.opts.prune_by_constraints
                && !self.opts.constraints.is_empty()
                && !acc.satisfies(&self.opts.constraints, &self.decls)
            {
                continue;
            }
            let Some(step) = self.build_step(&cert, &mut Vec::new(), 0) else {
                continue;
            };
            let proof = match dir {
                Direction::Forward => {
                    let tail = Proof::from_steps(vec![step]).expect("single step");
                    state
                        .proof
                        .clone()
                        .concat(tail)
                        .expect("linked by construction")
                }
                Direction::Reverse => {
                    let head = Proof::from_steps(vec![step]).expect("single step");
                    head.concat(state.proof.clone())
                        .expect("linked by construction")
                }
            };
            if !proof.respects_extension_depths() {
                continue;
            }
            let satisfies = proof
                .accumulate()
                .satisfies(&self.opts.constraints, &self.decls);
            out.push(Candidate {
                next_node,
                acc,
                proof,
                satisfies,
            });
        }
        out
    }

    /// Wraps a credential in a proof step, attaching support proofs for
    /// third-party authority and foreign attribute clauses. Provided
    /// supports are preferred; otherwise a recursive search runs.
    fn build_step(
        &mut self,
        cert: &Arc<SignedDelegation>,
        resolving: &mut Vec<(EntityId, Node)>,
        depth: usize,
    ) -> Option<ProofStep> {
        let delegation = cert.delegation();
        let issuer = delegation.issuer();
        let mut needed: Vec<Node> = Vec::new();
        if let Some(right) = delegation.required_support() {
            needed.push(right);
        }
        for clause in delegation.foreign_clauses() {
            let admin = Node::attr_admin(clause.attr().clone());
            if !needed.contains(&admin) {
                needed.push(admin);
            }
        }
        let mut step = ProofStep::new(Arc::clone(cert));
        for right in needed {
            let support = self.resolve_support(issuer, &right, resolving, depth)?;
            step = step.with_support(support);
        }
        Some(step)
    }

    /// Finds a proof `issuer ⇒ right`, preferring supports provided at
    /// publication and falling back to a recursive unconstrained search.
    fn resolve_support(
        &mut self,
        issuer: EntityId,
        right: &Node,
        resolving: &mut Vec<(EntityId, Node)>,
        depth: usize,
    ) -> Option<Proof> {
        if let Some(p) = self.graph.support_for(issuer, right) {
            // A provided support is only usable while none of its
            // credentials have been revoked or expired; otherwise fall
            // through to a fresh search.
            let usable = p.all_certs().iter().all(|c| {
                !self.graph.id_revoked(c.id()) && !c.delegation().is_expired(self.opts.now)
            });
            if usable {
                return Some(p);
            }
        }
        if depth >= self.opts.max_support_depth {
            return None;
        }
        let key = (issuer, right.clone());
        if resolving.contains(&key) {
            return None; // cycle among support requirements
        }
        resolving.push(key);
        self.stats.support_resolutions += 1;
        let found = self.support_search(&Node::Entity(issuer), right, resolving, depth);
        resolving.pop();
        found
    }

    /// A minimal forward search used only for support resolution (no
    /// attribute constraints; supports authorize, they don't modulate).
    fn support_search(
        &mut self,
        start: &Node,
        target: &Node,
        resolving: &mut Vec<(EntityId, Node)>,
        depth: usize,
    ) -> Option<Proof> {
        let mut visited: HashSet<Node> = HashSet::new();
        let mut queue: VecDeque<(Node, Proof)> = VecDeque::new();
        visited.insert(start.clone());
        queue.push_back((start.clone(), Proof::trivial(start.clone())));
        while let Some((node, proof)) = queue.pop_front() {
            self.stats.nodes_expanded += 1;
            if proof.chain_len() >= self.opts.max_depth {
                continue;
            }
            let edges = self.graph.edges_from(&node, self.opts.now);
            for cert in edges {
                self.stats.edges_considered += 1;
                let next = cert.delegation().object().clone();
                if visited.contains(&next) {
                    continue;
                }
                let Some(step) = self.build_step(&cert, resolving, depth + 1) else {
                    continue;
                };
                let tail = Proof::from_steps(vec![step]).expect("single step");
                let next_proof = proof.clone().concat(tail).expect("linked");
                if !next_proof.respects_extension_depths() {
                    continue;
                }
                if &next == target {
                    return Some(next_proof);
                }
                visited.insert(next.clone());
                queue.push_back((next, next_proof));
            }
        }
        None
    }
}

/// `a` dominates `b` if, for every constrained attribute, `a`'s effective
/// value is at least `b`'s — i.e. `b` cannot satisfy anything `a` cannot.
/// With no constraints all accumulations are equivalent, so any previous
/// visit dominates.
fn dominates(
    a: &AttrAccumulator,
    b: &AttrAccumulator,
    constraints: &[AttrConstraint],
    decls: &DeclarationSet,
) -> bool {
    if constraints.is_empty() {
        return true;
    }
    constraints.iter().all(|c| {
        let base = decls
            .base(&c.attr)
            .unwrap_or_else(|| natural_base(c.attr.op()));
        a.effective(&c.attr, base) >= b.effective(&c.attr, base)
    })
}

fn natural_base(op: AttrOp) -> f64 {
    match op {
        AttrOp::Subtract => 0.0,
        AttrOp::Scale => 1.0,
        AttrOp::Min => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{AttrDeclaration, AttrOp, LocalEntity, ProofValidator, ValidationContext};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fx {
        a: LocalEntity,
        b: LocalEntity,
        maria: LocalEntity,
    }

    fn fx() -> Fx {
        let mut rng = StdRng::seed_from_u64(31);
        let g = SchnorrGroup::test_256();
        Fx {
            a: LocalEntity::generate("A", g.clone(), &mut rng),
            b: LocalEntity::generate("B", g.clone(), &mut rng),
            maria: LocalEntity::generate("Maria", g, &mut rng),
        }
    }

    fn opts() -> SearchOptions {
        SearchOptions::at(Timestamp(0))
    }

    #[test]
    fn multi_hop_chain_found_and_validates() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let r1 = f.a.role("r1");
        let r2 = f.a.role("r2");
        let r3 = f.a.role("r3");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(r1.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(r1), Node::role(r2.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(r2), Node::role(r3.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        let (proof, stats) = g.direct_query(&Node::entity(&f.maria), &Node::role(r3), &opts());
        let proof = proof.expect("chain exists");
        assert_eq!(proof.chain_len(), 3);
        assert!(stats.edges_considered >= 3);
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        assert!(v.validate(&proof).is_ok());
    }

    #[test]
    fn no_path_returns_none() {
        let f = fx();
        let mut g = DelegationGraph::new();
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(f.a.role("r1")))
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(f.a.role("other")),
            &opts(),
        );
        assert!(proof.is_none());
    }

    #[test]
    fn bfs_finds_shortest_chain() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let target = f.a.role("target");
        let hop = f.a.role("hop");
        // Long path Maria -> hop -> target, and short path Maria -> target.
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(hop.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(hop), Node::role(target.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(target.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(target), &opts());
        assert_eq!(proof.unwrap().chain_len(), 1);
    }

    #[test]
    fn third_party_edge_uses_provided_support() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let member = f.a.role("member");
        // A grants B member'.
        let grant =
            f.a.delegate(Node::entity(&f.b), Node::role_admin(member.clone()))
                .sign(&f.a)
                .unwrap();
        let support = Proof::from_steps(vec![ProofStep::new(grant)]).unwrap();
        // B issues member to Maria (third-party), publishing the support.
        let cert =
            f.b.delegate(Node::entity(&f.maria), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap();
        g.insert_with_supports(cert, vec![support]);

        let (proof, stats) = g.direct_query(&Node::entity(&f.maria), &Node::role(member), &opts());
        let proof = proof.expect("supported third-party chain");
        assert_eq!(
            stats.support_resolutions, 0,
            "provided support used directly"
        );
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        assert!(v.validate(&proof).is_ok());
    }

    #[test]
    fn third_party_support_discovered_from_graph() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let member = f.a.role("member");
        // Support material is in the graph but not pre-packaged.
        g.insert(
            f.a.delegate(Node::entity(&f.b), Node::role_admin(member.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.b.delegate(Node::entity(&f.maria), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap(),
        );

        let (proof, stats) = g.direct_query(&Node::entity(&f.maria), &Node::role(member), &opts());
        let proof = proof.expect("support found by recursive search");
        assert!(stats.support_resolutions >= 1);
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        assert!(v.validate(&proof).is_ok());
    }

    #[test]
    fn unsupported_third_party_edge_is_unusable() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let member = f.a.role("member");
        g.insert(
            f.b.delegate(Node::entity(&f.maria), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(member), &opts());
        assert!(proof.is_none(), "no authority for B over A.member");
    }

    #[test]
    fn subject_query_enumerates_reachable() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let r1 = f.a.role("r1");
        let r2 = f.a.role("r2");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(r1.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::entity(&f.b), Node::role(r2.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        let (proofs, _) = g.subject_query(&Node::entity(&f.maria), &opts());
        let objects: Vec<String> = proofs.iter().map(|p| p.object().to_string()).collect();
        assert_eq!(proofs.len(), 2, "reaches r1 and r2: {objects:?}");
        for p in &proofs {
            assert_eq!(p.subject(), &Node::entity(&f.maria));
        }
    }

    #[test]
    fn object_query_enumerates_reaching() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let r1 = f.a.role("r1");
        let r2 = f.a.role("r2");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(r1.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        let (proofs, _) = g.object_query(&Node::role(r2.clone()), &opts());
        assert_eq!(proofs.len(), 2, "r1 and Maria both reach r2");
        for p in &proofs {
            assert_eq!(p.object(), &Node::role(r2.clone()));
        }
        // Reverse-built proofs validate too.
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        for p in &proofs {
            assert!(v.validate(p).is_ok());
        }
    }

    #[test]
    fn constraint_pruning_cuts_work_but_preserves_answers() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        let target = f.a.role("target");

        // Path 1 (fails constraint): BW drops to 10 then fans out widely.
        let weak = f.a.role("weak");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(weak.clone()))
                .with_attr(bw.clone(), 10.0)
                .unwrap()
                .sign(&f.a)
                .unwrap(),
        );
        for i in 0..20 {
            let filler = f.a.role(&format!("filler{i}"));
            g.insert(
                f.a.delegate(Node::role(weak.clone()), Node::role(filler.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
            g.insert(
                f.a.delegate(Node::role(filler), Node::role(target.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
        }
        // Path 2 (satisfies): BW 500 direct.
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(target.clone()))
                .with_attr(bw.clone(), 500.0)
                .unwrap()
                .sign(&f.a)
                .unwrap(),
        );

        let constraint = AttrConstraint::at_least(bw.clone(), 100.0);
        let pruned_opts = opts().with_constraint(constraint.clone());
        let unpruned_opts = opts().with_constraint(constraint).without_pruning();

        let (p1, s1) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(target.clone()),
            &pruned_opts,
        );
        let (p2, s2) = g.direct_query(&Node::entity(&f.maria), &Node::role(target), &unpruned_opts);
        let (p1, _p2) = (
            p1.expect("found with pruning"),
            p2.expect("found without pruning"),
        );
        assert!(p1
            .accumulate()
            .satisfies(&pruned_opts.constraints, g.declarations()));
        assert!(
            s1.edges_considered <= s2.edges_considered,
            "pruning should not examine more edges ({} vs {})",
            s1.edges_considered,
            s2.edges_considered
        );
    }

    #[test]
    fn constrained_search_takes_weaker_free_path_when_strong_is_constrained() {
        // Two paths: short one violates the constraint, longer one is fine.
        // The Pareto frontier must keep the second path alive even though
        // the violating path reaches nodes first.
        let f = fx();
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        let mid = f.a.role("mid");
        let target = f.a.role("target");
        // Fast-but-narrow: Maria -> mid with BW 10.
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(mid.clone()))
                .with_attr(bw.clone(), 10.0)
                .unwrap()
                .sign(&f.a)
                .unwrap(),
        );
        // Slow-but-wide: Maria -> wide -> mid with BW 800.
        let wide = f.a.role("wide");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(wide.clone()))
                .with_attr(bw.clone(), 800.0)
                .unwrap()
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(wide), Node::role(mid.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(mid), Node::role(target.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        let o = opts().with_constraint(AttrConstraint::at_least(bw.clone(), 100.0));
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(target), &o);
        let proof = proof.expect("wide path satisfies");
        assert_eq!(proof.chain_len(), 3);
        let acc = proof.accumulate();
        assert_eq!(acc.effective(&bw, 1000.0), 800.0);
    }

    #[test]
    fn depth_limit_bounds_search() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let mut prev = Node::entity(&f.maria);
        for i in 0..10 {
            let r = f.a.role(&format!("r{i}"));
            g.insert(
                f.a.delegate(prev.clone(), Node::role(r.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
            prev = Node::role(r);
        }
        let shallow = opts().with_max_depth(5);
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &prev, &shallow);
        assert!(proof.is_none(), "target is 10 hops away, limit 5");
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &prev, &opts());
        assert_eq!(proof.unwrap().chain_len(), 10);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let r1 = f.a.role("r1");
        let r2 = f.a.role("r2");
        g.insert(
            f.a.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(r2.clone()), Node::role(r1.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(r1.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(r2), &opts());
        assert!(proof.is_some());
        let (proofs, _) = g.subject_query(&Node::entity(&f.maria), &opts());
        assert_eq!(proofs.len(), 2);
    }

    #[test]
    fn mutual_assignment_support_cycle_terminates_without_proof() {
        // B and C each claim assignment authority only via the other; no
        // self-certified root exists, so no proof should be found (and the
        // search must terminate).
        let f = fx();
        let mut g = DelegationGraph::new();
        let r = f.a.role("r");
        let b = &f.b;
        let mut rng = StdRng::seed_from_u64(99);
        let c = LocalEntity::generate("C", SchnorrGroup::test_256(), &mut rng);
        g.insert(
            b.delegate(Node::entity(&c), Node::role_admin(r.clone()))
                .sign(b)
                .unwrap(),
        );
        g.insert(
            c.delegate(Node::entity(b), Node::role_admin(r.clone()))
                .sign(&c)
                .unwrap(),
        );
        g.insert(
            b.delegate(Node::entity(&f.maria), Node::role(r.clone()))
                .sign(b)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(r), &opts());
        assert!(proof.is_none());
    }

    #[test]
    fn enumerate_proofs_finds_every_simple_path() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let target = f.a.role("target");
        // Diamond: Maria -> {l, r} -> target, plus a direct edge: 3 paths.
        for name in ["l", "r"] {
            let mid = f.a.role(name);
            g.insert(
                f.a.delegate(Node::entity(&f.maria), Node::role(mid.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
            g.insert(
                f.a.delegate(Node::role(mid), Node::role(target.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
        }
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(target.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        let (proofs, stats) = g.enumerate_proofs(
            &Node::entity(&f.maria),
            &Node::role(target.clone()),
            &opts(),
            100,
        );
        assert_eq!(proofs.len(), 3);
        assert!(stats.edges_considered >= 5);
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        for p in &proofs {
            assert!(v.validate(p).is_ok());
            assert_eq!(p.object(), &Node::role(target.clone()));
        }
        // All proofs distinct.
        for (i, p) in proofs.iter().enumerate() {
            for q in &proofs[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn enumerate_proofs_count_is_exponential_in_depth() {
        // Layered graph with branching 2 between layers: path count 2^depth.
        let f = fx();
        for depth in [2usize, 3, 4] {
            let mut g = DelegationGraph::new();
            let mut prev_layer = vec![Node::entity(&f.maria)];
            for l in 0..depth {
                let layer: Vec<Node> = (0..2)
                    .map(|i| Node::role(f.a.role(&format!("d{depth}l{l}n{i}"))))
                    .collect();
                for from in &prev_layer {
                    for to in &layer {
                        g.insert(f.a.delegate(from.clone(), to.clone()).sign(&f.a).unwrap());
                    }
                }
                prev_layer = layer;
            }
            let target = Node::role(f.a.role(&format!("d{depth}target")));
            for from in &prev_layer {
                g.insert(
                    f.a.delegate(from.clone(), target.clone())
                        .sign(&f.a)
                        .unwrap(),
                );
            }
            let (proofs, _) = g.enumerate_proofs(&Node::entity(&f.maria), &target, &opts(), 10_000);
            assert_eq!(proofs.len(), 1 << depth, "depth {depth}");
        }
    }

    #[test]
    fn enumerate_proofs_respects_cap_and_constraints() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        let target = f.a.role("target");
        // Two paths: one wide (500), one narrow (50).
        for (name, cap) in [("wide", 500.0), ("narrow", 50.0)] {
            let mid = f.a.role(name);
            g.insert(
                f.a.delegate(Node::entity(&f.maria), Node::role(mid.clone()))
                    .with_attr(bw.clone(), cap)
                    .unwrap()
                    .sign(&f.a)
                    .unwrap(),
            );
            g.insert(
                f.a.delegate(Node::role(mid), Node::role(target.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
        }
        let constrained = opts().with_constraint(AttrConstraint::at_least(bw, 100.0));
        let (proofs, _) = g.enumerate_proofs(
            &Node::entity(&f.maria),
            &Node::role(target.clone()),
            &constrained,
            100,
        );
        assert_eq!(proofs.len(), 1, "only the wide path satisfies");
        // Cap limits output.
        let (capped, _) =
            g.enumerate_proofs(&Node::entity(&f.maria), &Node::role(target), &opts(), 1);
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn depth_limited_edges_pruned_but_alternatives_found() {
        // Two routes to the target: a short depth-0 grant reachable only
        // via one hop (violates) and a longer unrestricted route.
        let f = fx();
        let mut g = DelegationGraph::new();
        let hop = f.a.role("hop");
        let target = f.a.role("target");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(hop.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        // Restricted: [hop -> target <depth:0>] — cannot be extended by
        // Maria's hop delegation.
        g.insert(
            f.a.delegate(Node::role(hop.clone()), Node::role(target.clone()))
                .max_extension_depth(0)
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(target.clone()),
            &opts(),
        );
        assert!(proof.is_none(), "depth-0 grant must not be extended");

        // Direct depth-0 grant works (position 0).
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(target.clone()))
                .max_extension_depth(0)
                .serial(2)
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(target), &opts());
        let proof = proof.expect("direct grant usable");
        assert_eq!(proof.chain_len(), 1);
        assert!(ProofValidator::new(ValidationContext::at(Timestamp(0)))
            .validate(&proof)
            .is_ok());
    }

    #[test]
    fn reverse_search_respects_depth_limits() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let hop = f.a.role("hop");
        let target = f.a.role("target");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(hop.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(hop), Node::role(target.clone()))
                .max_extension_depth(0)
                .sign(&f.a)
                .unwrap(),
        );
        // Object query from target: the depth-0 edge itself (position 0)
        // is a valid 1-step proof, but the 2-step extension is not.
        let (proofs, _) = g.object_query(&Node::role(target), &opts());
        assert_eq!(proofs.len(), 1, "only the unextended proof survives");
        assert_eq!(proofs[0].chain_len(), 1);
    }

    #[test]
    fn unusable_parallel_edge_does_not_poison_frontier() {
        // Two parallel edges Maria -> member: the first is an unsupported
        // third-party delegation (B has no authority over A.member), the
        // second is A's own, perfectly usable grant. The unusable edge is
        // examined first; it must not enter the Pareto frontier and
        // dominance-prune the usable one.
        let f = fx();
        let mut g = DelegationGraph::new();
        let member = f.a.role("member");
        g.insert(
            f.b.delegate(Node::entity(&f.maria), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(member.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(member), &opts());
        let proof = proof.expect("A's own grant must be found despite B's unusable edge");
        assert_eq!(proof.chain_len(), 1);
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        assert!(v.validate(&proof).is_ok());
    }

    #[test]
    fn pruned_and_unpruned_searches_agree_on_satisfiability() {
        // The only path violates the constraint (BW 10 < 100). The
        // unpruned search walks it anyway for measurement, but must not
        // return a constraint-violating proof as a positive answer.
        let f = fx();
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        let target = f.a.role("target");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(target.clone()))
                .with_attr(bw.clone(), 10.0)
                .unwrap()
                .sign(&f.a)
                .unwrap(),
        );
        let constraint = AttrConstraint::at_least(bw, 100.0);
        let pruned_opts = opts().with_constraint(constraint.clone());
        let unpruned_opts = opts().with_constraint(constraint).without_pruning();
        let (pruned, _) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(target.clone()),
            &pruned_opts,
        );
        let (unpruned, _) =
            g.direct_query(&Node::entity(&f.maria), &Node::role(target), &unpruned_opts);
        assert!(pruned.is_none(), "pruned search rejects the violating path");
        assert!(
            unpruned.is_none(),
            "unpruned search must agree: a violating proof is not an answer"
        );
    }

    #[test]
    fn expired_edges_ignored_at_query_time() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let r = f.a.role("r");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(r.clone()))
                .expires(Timestamp(5))
                .sign(&f.a)
                .unwrap(),
        );
        let (found, _) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(r.clone()),
            &SearchOptions::at(Timestamp(5)),
        );
        assert!(found.is_some());
        let (gone, _) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(r),
            &SearchOptions::at(Timestamp(6)),
        );
        assert!(gone.is_none());
    }

    /// A moderately tangled fixture: role ladders with cross links, a
    /// constrained branch, a supported third-party edge, and a cycle.
    fn tangled_graph(f: &Fx) -> (DelegationGraph, Vec<Node>) {
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        let mut nodes = vec![Node::entity(&f.maria), Node::entity(&f.b)];
        for chain in 0..3 {
            let mut prev = Node::entity(&f.maria);
            for depth in 0..4 {
                let r = Node::role(f.a.role(&format!("c{chain}d{depth}")));
                let mut b = f.a.delegate(prev.clone(), r.clone());
                if chain == 1 {
                    b = b.with_attr(bw.clone(), 400.0 - 100.0 * depth as f64).unwrap();
                }
                g.insert(b.sign(&f.a).unwrap());
                nodes.push(r.clone());
                prev = r;
            }
        }
        // Cross links between the ladders.
        let c0 = Node::role(f.a.role("c0d1"));
        let c2 = Node::role(f.a.role("c2d3"));
        g.insert(f.a.delegate(c0.clone(), c2.clone()).sign(&f.a).unwrap());
        // A cycle.
        g.insert(f.a.delegate(c2, c0).serial(7).sign(&f.a).unwrap());
        // Third-party edge with discoverable support.
        let member = Node::role(f.a.role("member"));
        g.insert(
            f.a.delegate(
                Node::entity(&f.b),
                Node::role_admin(f.a.role("member")),
            )
            .sign(&f.a)
            .unwrap(),
        );
        g.insert(
            f.b.delegate(Node::role(f.a.role("c0d3")), member.clone())
                .sign(&f.b)
                .unwrap(),
        );
        nodes.push(member);
        (g, nodes)
    }

    #[test]
    fn parallel_search_matches_sequential_results() {
        let f = fx();
        let (g, nodes) = tangled_graph(&f);
        let bw = f.a.attr("BW", AttrOp::Min);
        let variants = [
            opts(),
            opts().with_constraint(AttrConstraint::at_least(bw, 150.0)),
        ];
        for o in &variants {
            for workers in [2usize, 4, 8] {
                let par = o.clone().with_workers(workers);
                for target in &nodes {
                    let (seq_proof, _) = g.direct_query(&Node::entity(&f.maria), target, o);
                    let (par_proof, _) = g.direct_query(&Node::entity(&f.maria), target, &par);
                    assert_eq!(
                        seq_proof, par_proof,
                        "direct_query disagrees at workers={workers} target={target}"
                    );
                }
                let (seq_s, _) = g.subject_query(&Node::entity(&f.maria), o);
                let (par_s, _) = g.subject_query(&Node::entity(&f.maria), &par);
                assert_eq!(seq_s, par_s, "subject_query disagrees at workers={workers}");
                for target in &nodes {
                    let (seq_o, _) = g.object_query(target, o);
                    let (par_o, _) = g.object_query(target, &par);
                    assert_eq!(seq_o, par_o, "object_query disagrees at workers={workers}");
                }
            }
        }
    }

    #[test]
    fn multi_proof_order_is_deterministic_and_id_sorted() {
        let f = fx();
        let (g, _) = tangled_graph(&f);
        let (first, _) = g.subject_query(&Node::entity(&f.maria), &opts());
        for _ in 0..5 {
            let (again, _) = g.subject_query(&Node::entity(&f.maria), &opts());
            assert_eq!(first, again, "subject_query order must be stable");
        }
        // Proofs of equal chain length are ordered by their delegation-id
        // sets, not by hash-map iteration order.
        for w in first.windows(2) {
            let ka = order_key(&w[0], w[0].object());
            let kb = order_key(&w[1], w[1].object());
            assert!(ka <= kb, "sorted by (chain_len, ids, endpoint)");
        }
    }
}
