//! Chain search over the delegation graph: the three wallet query forms
//! (§4.1) with monotonicity-based pruning (§4.2.3).
//!
//! The engine is generic over [`GraphView`] so the same traversal runs
//! against the single-threaded [`DelegationGraph`] and the concurrent
//! [`crate::ShardedGraph`]. Three structural choices keep the cold path
//! allocation-light:
//!
//! * **Interned ids.** Nodes are dense `u32` ids from the graph-owned
//!   [`crate::NodeInterner`]; frontier dedup, result keying, and
//!   edge-endpoint comparisons are integer ops, never `Node` hashing or
//!   cloning.
//! * **Parent-pointer proofs.** Reached states form an arena; each state
//!   records only `(predecessor, step)`. Full [`Proof`]s are materialized
//!   once, for final answers, by walking the predecessor chain — the old
//!   per-edge clone-and-concat of whole proofs (O(depth²) per path) is
//!   gone.
//! * **Batched frontier expansion.** With `workers > 1`, a queue batch is
//!   expanded by a bounded pool: workers claim chunks of states through
//!   an atomic cursor and return their candidate lists through their join
//!   handles (no shared mutex to poison; a worker panic is re-raised with
//!   its original payload). Batches smaller than a threshold are expanded
//!   inline, so tiny frontiers never pay thread hand-off. A sequential
//!   merge then replays dominance checks, frontier updates, and result
//!   insertion in exactly the order the single-threaded search would have
//!   used — so query *results* are identical at every pool size. Only the
//!   work counters may differ (speculative support resolution for edges
//!   the merge later dominance-prunes, and whole-batch expansion where
//!   the sequential search would have returned mid-batch).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use drbac_core::{
    AttrAccumulator, AttrConstraint, AttrOp, AttrRef, DeclarationSet, DelegationId, EntityId, Node,
    Proof, ProofStep, SignedDelegation, Timestamp,
};

use crate::intern::{FastMap, FastSet, NodeId};
use crate::view::GraphView;
use crate::DelegationGraph;

/// Queue batches smaller than this are expanded inline by the merging
/// thread even when `workers > 1`: for one or two states, thread hand-off
/// costs more than the expansion itself.
const PAR_MIN_BATCH: usize = 3;
/// States claimed per atomic-cursor bump during batched expansion.
const PAR_CHUNK: usize = 4;
/// Sentinel predecessor index of the root state.
const NO_PRED: u32 = u32::MAX;

/// Parameters of a graph search.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Logical time (expiry filtering).
    pub now: Timestamp,
    /// Attribute constraints the resulting proof must satisfy.
    pub constraints: Vec<AttrConstraint>,
    /// Maximum primary-chain length (default 64).
    pub max_depth: usize,
    /// Prune branches whose accumulated attributes already violate the
    /// constraints (§4.2.3). Sound because accumulation is monotone;
    /// disable only to measure the pruning benefit.
    pub prune_by_constraints: bool,
    /// Depth limit for recursive support-proof resolution (default 8).
    pub max_support_depth: usize,
    /// Worker threads for frontier expansion (default 1 = sequential).
    /// Results are identical for any value; see the module docs.
    pub workers: usize,
}

impl SearchOptions {
    /// Defaults at logical time `now`: no constraints, pruning enabled.
    pub fn at(now: Timestamp) -> Self {
        SearchOptions {
            now,
            constraints: Vec::new(),
            max_depth: 64,
            prune_by_constraints: true,
            max_support_depth: 8,
            workers: 1,
        }
    }

    /// Adds a constraint.
    pub fn with_constraint(mut self, c: AttrConstraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Disables constraint pruning (for measurement).
    pub fn without_pruning(mut self) -> Self {
        self.prune_by_constraints = false;
        self
    }

    /// Sets the primary-chain depth limit.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Sets the frontier-expansion worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Work counters from one search, for the efficiency experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// States dequeued and expanded.
    pub nodes_expanded: usize,
    /// Edges (delegations) examined during expansion.
    pub edges_considered: usize,
    /// States enqueued (after pruning/dominance filtering).
    pub states_enqueued: usize,
    /// Recursive support-proof searches performed (not counting provided
    /// supports).
    pub support_resolutions: usize,
}

impl SearchStats {
    /// Adds another stats record into this one.
    pub fn absorb(&mut self, other: SearchStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.edges_considered += other.edges_considered;
        self.states_enqueued += other.states_enqueued;
        self.support_resolutions += other.support_resolutions;
    }
}

/// Search direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    Forward,
    Reverse,
}

pub(crate) struct Engine<'g, G: GraphView + ?Sized> {
    graph: &'g G,
    opts: &'g SearchOptions,
    decls: DeclarationSet,
    stats: SearchStats,
}

/// One reached search state in the arena: the interned node, the
/// predecessor state, and the proof step that got here. A full [`Proof`]
/// exists only after [`materialize`] walks the predecessor chain.
struct StateRec {
    node: NodeId,
    /// Arena index of the predecessor ([`NO_PRED`] for the root).
    pred: u32,
    /// The step taken into this state (`None` for the root).
    step: Option<ProofStep>,
    /// Primary-chain length so far.
    depth: u32,
    /// Transitive-trust slack: the minimum over all chain steps of
    /// `max_extension_depth - position` (`u64::MAX` = unlimited). Updated
    /// in O(1) per edge; a reverse prepend shifts every position, which
    /// is exactly a decrement of the whole minimum.
    slack: u64,
    /// Attribute accumulation in discovery order (used for pruning and
    /// dominance, exactly as the pre-interning engine did).
    acc: AttrAccumulator,
}

/// Frontier-independent expansion of one edge, produced by
/// [`Engine::expand_state`] and consumed by the sequential merge. Note
/// what is *not* here: no cloned proof — the merge links the candidate to
/// its parent state by index.
struct Candidate {
    far: NodeId,
    step: ProofStep,
    acc: AttrAccumulator,
    /// Effective values per constraint (the frontier's comparison key).
    vals: Box<[f64]>,
    slack: u64,
    satisfies: bool,
}

/// Per-state expansion results tagged with the state's position in its
/// batch, so the sequential merge can restore submission order after the
/// workers hand their chunks back.
type IndexedCandidates = Vec<(usize, Vec<Candidate>)>;

/// Pareto frontier of accumulations seen per node. Unconstrained searches
/// degrade to a plain visited set (any previous visit dominates). For
/// constrained searches each node keeps its non-dominated effective-value
/// vectors sorted descending by first component, so a dominance probe
/// early-exits at the first entry that can no longer dominate — replacing
/// the old linear scan over full accumulators that degraded quadratically
/// on attribute-heavy fanout.
struct Frontier {
    /// `(attr, base)` per constraint, precomputed once per search.
    bases: Vec<(AttrRef, f64)>,
    seen: FastMap<NodeId, Vec<Box<[f64]>>>,
}

impl Frontier {
    fn new(constraints: &[AttrConstraint], decls: &DeclarationSet) -> Self {
        let bases = constraints
            .iter()
            .map(|c| {
                let base = decls
                    .base(&c.attr)
                    .unwrap_or_else(|| natural_base(c.attr.op()));
                (c.attr.clone(), base)
            })
            .collect();
        Frontier {
            bases,
            seen: FastMap::default(),
        }
    }

    /// The effective value of `acc` under every constrained attribute.
    fn vals(&self, acc: &AttrAccumulator) -> Box<[f64]> {
        self.bases
            .iter()
            .map(|(attr, base)| acc.effective(attr, *base))
            .collect()
    }

    /// `true` if a previously admitted accumulation dominates `vals` at
    /// `node`. Sound against a stale snapshot: admitted entries are only
    /// ever displaced by entries that dominate them, so "dominated once"
    /// stays true forever.
    fn is_dominated(&self, node: NodeId, vals: &[f64]) -> bool {
        let Some(entries) = self.seen.get(&node) else {
            return false;
        };
        if self.bases.is_empty() {
            return true; // visited-set semantics
        }
        for entry in entries {
            if entry[0] < vals[0] {
                break; // sorted descending: nothing further can dominate
            }
            if entry.iter().zip(vals).all(|(a, b)| a >= b) {
                return true;
            }
        }
        false
    }

    /// Admits `vals` at `node`, evicting entries it dominates. Only
    /// called after [`Frontier::is_dominated`] returned `false`.
    fn admit(&mut self, node: NodeId, vals: Box<[f64]>) {
        let entries = self.seen.entry(node).or_default();
        if self.bases.is_empty() {
            return; // key presence is the whole visited mark
        }
        // Entries with a larger first component cannot be dominated by
        // `vals`; only the tail needs filtering.
        let keep = entries.partition_point(|e| e[0] > vals[0]);
        let tail = entries.split_off(keep);
        entries.extend(
            tail.into_iter()
                .filter(|e| !vals.iter().zip(e.iter()).all(|(a, b)| a >= b)),
        );
        let pos = entries.partition_point(|e| e[0] >= vals[0]);
        entries.insert(pos, vals);
    }
}

/// Materializes the proof reaching `arena[idx]` by walking predecessor
/// links. Forward chains are collected object-end first and reversed;
/// reverse chains come out already in subject→object order.
fn materialize(arena: &[StateRec], idx: u32, dir: Direction, start: &Node) -> Proof {
    let mut steps = Vec::new();
    let mut cur = idx as usize;
    while let Some(step) = &arena[cur].step {
        steps.push(step.clone());
        cur = arena[cur].pred as usize;
    }
    if steps.is_empty() {
        return Proof::trivial(start.clone());
    }
    if matches!(dir, Direction::Forward) {
        steps.reverse();
    }
    Proof::from_steps(steps).expect("linked by construction")
}

/// Direct query (§4.1) against any [`GraphView`]: does a proof
/// `subject ⇒ object` exist that satisfies the constraints? Returns the
/// first one found (breadth-first, so minimal chain length) and the search
/// work done.
pub fn direct_query_on<G: GraphView + ?Sized>(
    graph: &G,
    subject: &Node,
    object: &Node,
    opts: &SearchOptions,
) -> (Option<Proof>, SearchStats) {
    let start = std::time::Instant::now();
    let mut engine = Engine::new(graph, opts);
    let (arena, results) = engine.search(subject, Some(object), Direction::Forward);
    let found = graph
        .interner()
        .get(object)
        .and_then(|id| results.get(&id).copied())
        .map(|idx| materialize(&arena, idx, Direction::Forward, subject));
    drbac_obs::static_histogram!("drbac.graph.search.direct.ns")
        .record(start.elapsed().as_nanos() as u64);
    (found, engine.stats)
}

/// Subject query (§4.1) against any [`GraphView`]: enumerate proofs
/// `subject ⇒ *` that do not violate the constraints, one per reachable
/// node, in deterministic order (chain length, then delegation ids).
pub fn subject_query_on<G: GraphView + ?Sized>(
    graph: &G,
    subject: &Node,
    opts: &SearchOptions,
) -> (Vec<Proof>, SearchStats) {
    let mut engine = Engine::new(graph, opts);
    let (arena, results) = engine.search(subject, None, Direction::Forward);
    let mut proofs: Vec<Proof> = results
        .values()
        .filter(|&&idx| idx != 0) // the root's trivial proof is not an answer
        .map(|&idx| materialize(&arena, idx, Direction::Forward, subject))
        .collect();
    proofs.sort_by_cached_key(|p| order_key(p, p.object()));
    (proofs, engine.stats)
}

/// Object query (§4.1) against any [`GraphView`]: enumerate proofs
/// `* ⇒ object` that do not violate the constraints, one per reaching
/// node, in deterministic order (chain length, then delegation ids).
pub fn object_query_on<G: GraphView + ?Sized>(
    graph: &G,
    object: &Node,
    opts: &SearchOptions,
) -> (Vec<Proof>, SearchStats) {
    let mut engine = Engine::new(graph, opts);
    let (arena, results) = engine.search(object, None, Direction::Reverse);
    let mut proofs: Vec<Proof> = results
        .values()
        .filter(|&&idx| idx != 0)
        .map(|&idx| materialize(&arena, idx, Direction::Reverse, object))
        .collect();
    proofs.sort_by_cached_key(|p| order_key(p, p.subject()));
    (proofs, engine.stats)
}

/// Deterministic multi-proof ordering: chain length first (shortest
/// proofs lead), then the proof's full delegation-id set, then the far
/// endpoint as a tiebreak. Independent of hash-map iteration order and
/// shard count, so oracle tests and benches are stable.
pub(crate) fn order_key(p: &Proof, endpoint: &Node) -> (usize, Vec<DelegationId>, String) {
    let ids: Vec<DelegationId> = p.delegation_ids().into_iter().collect();
    (p.chain_len(), ids, endpoint.to_string())
}

impl DelegationGraph {
    /// Direct query (§4.1): does a proof `subject ⇒ object` exist that
    /// satisfies the constraints? Returns the first one found
    /// (breadth-first, so minimal chain length) and the search work done.
    pub fn direct_query(
        &self,
        subject: &Node,
        object: &Node,
        opts: &SearchOptions,
    ) -> (Option<Proof>, SearchStats) {
        direct_query_on(self, subject, object, opts)
    }

    /// Subject query (§4.1): enumerate proofs `subject ⇒ *` that do not
    /// violate the constraints, one per reachable node.
    pub fn subject_query(&self, subject: &Node, opts: &SearchOptions) -> (Vec<Proof>, SearchStats) {
        subject_query_on(self, subject, opts)
    }

    /// Object query (§4.1): enumerate proofs `* ⇒ object` that do not
    /// violate the constraints, one per reaching node.
    pub fn object_query(&self, object: &Node, opts: &SearchOptions) -> (Vec<Proof>, SearchStats) {
        object_query_on(self, object, opts)
    }
}

impl DelegationGraph {
    /// Enumerates *all* distinct proofs `subject ⇒ object` (simple paths,
    /// no node repeated) satisfying the constraints, up to `max_proofs`.
    ///
    /// This is the exhaustive form of the paper's §4.1 queries
    /// ("enumerate the full set of proofs") and the direct measure of the
    /// §4.2.3 path-explosion phenomenon: in a tree with constant
    /// branching the count grows exponentially with depth, which is why
    /// [`DelegationGraph::direct_query`] exists as the single-answer
    /// search. Returns `(proofs, stats)`; stats count every edge touched
    /// during the walk.
    pub fn enumerate_proofs(
        &self,
        subject: &Node,
        object: &Node,
        opts: &SearchOptions,
        max_proofs: usize,
    ) -> (Vec<Proof>, SearchStats) {
        let mut engine = Engine::new(self, opts);
        let mut proofs = Vec::new();
        let mut on_path: Vec<Node> = vec![subject.clone()];
        engine.enumerate(
            subject,
            object,
            &Proof::trivial(subject.clone()),
            &mut on_path,
            &mut proofs,
            max_proofs,
        );
        (proofs, engine.stats)
    }
}

impl<'g, G: GraphView + ?Sized> Engine<'g, G> {
    pub(crate) fn new(graph: &'g G, opts: &'g SearchOptions) -> Self {
        Engine {
            graph,
            opts,
            decls: graph.declaration_set(),
            stats: SearchStats::default(),
        }
    }

    /// Depth-first simple-path enumeration for
    /// [`DelegationGraph::enumerate_proofs`].
    fn enumerate(
        &mut self,
        node: &Node,
        target: &Node,
        proof_so_far: &Proof,
        on_path: &mut Vec<Node>,
        proofs: &mut Vec<Proof>,
        max_proofs: usize,
    ) {
        if proofs.len() >= max_proofs || proof_so_far.chain_len() >= self.opts.max_depth {
            return;
        }
        self.stats.nodes_expanded += 1;
        let edges = self.graph.edges_from(node, self.opts.now);
        for cert in edges {
            if proofs.len() >= max_proofs {
                return;
            }
            self.stats.edges_considered += 1;
            let next = cert.delegation().object().clone();
            if on_path.contains(&next) {
                continue; // simple paths only
            }
            let mut acc = proof_so_far.accumulate();
            for clause in cert.delegation().clauses() {
                acc.absorb_clause(clause);
            }
            if self.opts.prune_by_constraints
                && !self.opts.constraints.is_empty()
                && !acc.satisfies(&self.opts.constraints, &self.decls)
            {
                continue;
            }
            let Some(step) = self.build_step(&cert, &mut Vec::new(), 0) else {
                continue;
            };
            let tail = Proof::from_steps(vec![step]).expect("single step");
            let candidate = proof_so_far.clone().concat(tail).expect("linked");
            if !candidate.respects_extension_depths() {
                continue;
            }
            if &next == target {
                if candidate
                    .accumulate()
                    .satisfies(&self.opts.constraints, &self.decls)
                {
                    proofs.push(candidate);
                }
                continue;
            }
            on_path.push(next.clone());
            self.enumerate(&next, target, &candidate, on_path, proofs, max_proofs);
            on_path.pop();
        }
    }

    /// Breadth-first search from `start`. Forward direction follows
    /// subject→object edges; reverse follows object→subject. Returns the
    /// state arena plus the first-found (non-dominated, satisfying) state
    /// per reached node; callers materialize the proofs they need. If
    /// `target` is given, stops as soon as a satisfying state reaches it.
    fn search(
        &mut self,
        start: &Node,
        target: Option<&Node>,
        dir: Direction,
    ) -> (Vec<StateRec>, FastMap<NodeId, u32>) {
        let interner = self.graph.interner();
        let start_id = interner.intern(start);
        let target_id = target.map(|t| interner.intern(t));

        let mut frontier = Frontier::new(&self.opts.constraints, &self.decls);
        let mut arena: Vec<StateRec> = vec![StateRec {
            node: start_id,
            pred: NO_PRED,
            step: None,
            depth: 0,
            slack: u64::MAX,
            acc: AttrAccumulator::new(),
        }];
        let root_vals = frontier.vals(&arena[0].acc);
        frontier.admit(start_id, root_vals);
        let mut results: FastMap<NodeId, u32> = FastMap::default();
        results.insert(start_id, 0);
        let mut queue: VecDeque<u32> = VecDeque::new();
        queue.push_back(0);

        while !queue.is_empty() {
            if self.opts.workers <= 1 || queue.len() < PAR_MIN_BATCH {
                // Inline expansion: exactly the sequential order, one
                // state at a time.
                let idx = queue.pop_front().expect("nonempty");
                let cands = self.expand_state(&arena, idx, dir, &frontier);
                if self
                    .merge(
                        idx,
                        cands,
                        &mut arena,
                        &mut frontier,
                        &mut results,
                        &mut queue,
                        target_id,
                    )
                    .is_some()
                {
                    return (arena, results);
                }
            } else {
                let batch: Vec<u32> = queue.drain(..).collect();
                let expansions = self.expand_batch(&arena, &batch, dir, &frontier);
                for (i, cands) in expansions.into_iter().enumerate() {
                    if self
                        .merge(
                            batch[i],
                            cands,
                            &mut arena,
                            &mut frontier,
                            &mut results,
                            &mut queue,
                            target_id,
                        )
                        .is_some()
                    {
                        return (arena, results);
                    }
                }
            }
        }
        (arena, results)
    }

    /// Replays the frontier-dependent part of expansion — dominance
    /// checks, frontier admission, result insertion, enqueueing — in the
    /// exact order the sequential search would have used. Returns the
    /// arena index of a satisfying target state, ending the search.
    #[allow(clippy::too_many_arguments)]
    fn merge(
        &mut self,
        parent: u32,
        cands: Vec<Candidate>,
        arena: &mut Vec<StateRec>,
        frontier: &mut Frontier,
        results: &mut FastMap<NodeId, u32>,
        queue: &mut VecDeque<u32>,
        target: Option<NodeId>,
    ) -> Option<u32> {
        for cand in cands {
            if frontier.is_dominated(cand.far, &cand.vals) {
                continue;
            }
            frontier.admit(cand.far, cand.vals);
            let idx = u32::try_from(arena.len()).expect("arena full");
            let depth = arena[parent as usize].depth + 1;
            arena.push(StateRec {
                node: cand.far,
                pred: parent,
                step: Some(cand.step),
                depth,
                slack: cand.slack,
                acc: cand.acc,
            });
            // A proof only counts as an answer if it satisfies the
            // constraints; accumulation is monotone, so a violating
            // prefix can never recover (this keeps unpruned searches
            // in agreement with pruned ones).
            if cand.satisfies {
                if target == Some(cand.far) {
                    // Overwrite: when the target is the start node, the
                    // root's trivial proof occupies the slot, but the
                    // answer is the cycle proof that just arrived.
                    results.insert(cand.far, idx);
                    return Some(idx);
                }
                results.entry(cand.far).or_insert(idx);
            }
            self.stats.states_enqueued += 1;
            queue.push_back(idx);
        }
        None
    }

    /// Expands every state of one queue batch on a bounded worker pool.
    /// Workers claim chunks of states through an atomic cursor (cheap
    /// work stealing: an idle worker takes the next unclaimed chunk, so
    /// uneven expansion costs balance out) and hand their candidates back
    /// through their join handles — there is no shared collection mutex,
    /// so a panicking worker cannot poison anything; its original panic
    /// payload is re-raised here after every worker has been joined.
    fn expand_batch(
        &mut self,
        arena: &[StateRec],
        batch: &[u32],
        dir: Direction,
        frontier: &Frontier,
    ) -> Vec<Vec<Candidate>> {
        drbac_obs::static_counter!("drbac.graph.search.parallel_batch.count").inc();
        let workers = self.opts.workers.min(batch.len());
        let cursor = AtomicUsize::new(0);
        let graph = self.graph;
        let opts = self.opts;
        let decls = &self.decls;
        let mut outputs: Vec<(IndexedCandidates, SearchStats)> = Vec::with_capacity(workers);
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Engine {
                            graph,
                            opts,
                            decls: decls.clone(),
                            stats: SearchStats::default(),
                        };
                        let mut out: IndexedCandidates = Vec::new();
                        loop {
                            let begin = cursor.fetch_add(PAR_CHUNK, Ordering::Relaxed);
                            if begin >= batch.len() {
                                break;
                            }
                            let end = (begin + PAR_CHUNK).min(batch.len());
                            for (i, &state) in batch[begin..end].iter().enumerate() {
                                let i = begin + i;
                                out.push((i, local.expand_state(arena, state, dir, frontier)));
                            }
                        }
                        (out, local.stats)
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(output) => outputs.push(output),
                    Err(payload) => {
                        // Keep the first worker's payload; the rest have
                        // already been joined, so nothing leaks.
                        panic_payload.get_or_insert(payload);
                    }
                }
            }
        });
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        let mut collected: IndexedCandidates = Vec::with_capacity(batch.len());
        for (out, stats) in outputs {
            self.stats.absorb(stats);
            collected.extend(out);
        }
        collected.sort_unstable_by_key(|(i, _)| *i);
        collected.into_iter().map(|(_, cands)| cands).collect()
    }

    /// The frontier-independent part of expanding one state: fetch edges,
    /// absorb attributes, constraint-prune, dominance-prune against the
    /// (possibly stale — see [`Frontier::is_dominated`]) frontier, check
    /// transitive-trust limits, resolve supports. Support resolution is
    /// speculative under `workers > 1` — the merge may still
    /// dominance-prune the candidate — which can only increase the work
    /// counters, never change results.
    fn expand_state(
        &mut self,
        arena: &[StateRec],
        idx: u32,
        dir: Direction,
        frontier: &Frontier,
    ) -> Vec<Candidate> {
        self.stats.nodes_expanded += 1;
        let state = &arena[idx as usize];
        if state.depth as usize >= self.opts.max_depth {
            return Vec::new();
        }
        let edges = match dir {
            Direction::Forward => self.graph.edges_from_ids(state.node, self.opts.now),
            Direction::Reverse => self.graph.edges_to_ids(state.node, self.opts.now),
        };
        let mut out = Vec::new();
        for edge in edges {
            self.stats.edges_considered += 1;
            let delegation = edge.cert.delegation();

            let mut acc = state.acc.clone();
            for clause in delegation.clauses() {
                acc.absorb_clause(clause);
            }
            if self.opts.prune_by_constraints
                && !self.opts.constraints.is_empty()
                && !acc.satisfies(&self.opts.constraints, &self.decls)
            {
                continue;
            }

            let vals = frontier.vals(&acc);
            if frontier.is_dominated(edge.far, &vals) {
                continue;
            }

            // Transitive-trust limits, maintained incrementally: drop
            // chains the validator would reject (forward appends can only
            // break the new step; reverse prepends shift every position,
            // i.e. decrement the chain's slack).
            let limit = delegation.max_extension_depth();
            let (depth_ok, slack) = match dir {
                Direction::Forward => {
                    let pos = u64::from(state.depth);
                    match limit {
                        Some(l) if pos > l => (false, 0),
                        Some(l) => (true, state.slack.min(l - pos)),
                        None => (true, state.slack),
                    }
                }
                Direction::Reverse => {
                    if state.slack == 0 {
                        (false, 0)
                    } else {
                        let shifted = state.slack - 1;
                        (
                            true,
                            match limit {
                                Some(l) => shifted.min(l),
                                None => shifted,
                            },
                        )
                    }
                }
            };
            if !depth_ok {
                continue;
            }

            // Resolve supports; an unusable edge is skipped. Only a
            // usable step may later join the frontier: an edge whose
            // support cannot be resolved must not dominance-prune a
            // viable path with the same accumulation.
            let Some(step) = self.build_step(&edge.cert, &mut Vec::new(), 0) else {
                continue;
            };

            let satisfies = self.chain_satisfies(arena, idx, &step, &acc, dir);
            out.push(Candidate {
                far: edge.far,
                step,
                acc,
                vals,
                slack,
                satisfies,
            });
        }
        out
    }

    /// Whether the chain ending in `step` (on top of `arena[parent]`)
    /// satisfies the constraints, evaluated in the same clause order as
    /// [`Proof::accumulate`] — object end first — so answers are
    /// bit-identical to materializing the proof and accumulating it.
    fn chain_satisfies(
        &self,
        arena: &[StateRec],
        parent: u32,
        step: &ProofStep,
        acc: &AttrAccumulator,
        dir: Direction,
    ) -> bool {
        if self.opts.constraints.is_empty() {
            return true;
        }
        match dir {
            // Reverse discovery already runs object→subject, so the
            // incremental accumulator is in `accumulate()` order.
            Direction::Reverse => acc.satisfies(&self.opts.constraints, &self.decls),
            // Forward discovery is subject→object; walking the parent
            // chain from the new step visits clauses object-end first.
            Direction::Forward => {
                let mut chain_acc = AttrAccumulator::new();
                for clause in step.cert().delegation().clauses() {
                    chain_acc.absorb_clause(clause);
                }
                let mut cur = parent as usize;
                while let Some(s) = &arena[cur].step {
                    for clause in s.cert().delegation().clauses() {
                        chain_acc.absorb_clause(clause);
                    }
                    cur = arena[cur].pred as usize;
                }
                chain_acc.satisfies(&self.opts.constraints, &self.decls)
            }
        }
    }

    /// Wraps a credential in a proof step, attaching support proofs for
    /// third-party authority and foreign attribute clauses. Provided
    /// supports are preferred; otherwise a recursive search runs.
    pub(crate) fn build_step(
        &mut self,
        cert: &Arc<SignedDelegation>,
        resolving: &mut Vec<(EntityId, Node)>,
        depth: usize,
    ) -> Option<ProofStep> {
        let delegation = cert.delegation();
        let issuer = delegation.issuer();
        let mut needed: Vec<Node> = Vec::new();
        if let Some(right) = delegation.required_support() {
            needed.push(right);
        }
        for clause in delegation.foreign_clauses() {
            let admin = Node::attr_admin(clause.attr().clone());
            if !needed.contains(&admin) {
                needed.push(admin);
            }
        }
        let mut step = ProofStep::new(Arc::clone(cert));
        for right in needed {
            let support = self.resolve_support(issuer, &right, resolving, depth)?;
            step = step.with_support(support);
        }
        Some(step)
    }

    /// Finds a proof `issuer ⇒ right`, preferring supports provided at
    /// publication and falling back to a recursive unconstrained search.
    fn resolve_support(
        &mut self,
        issuer: EntityId,
        right: &Node,
        resolving: &mut Vec<(EntityId, Node)>,
        depth: usize,
    ) -> Option<Proof> {
        if let Some(p) = self.graph.support_for(issuer, right) {
            // A provided support is only usable while none of its
            // credentials have been revoked or expired; otherwise fall
            // through to a fresh search.
            let usable = p.all_certs().iter().all(|c| {
                !self.graph.id_revoked(c.id()) && !c.delegation().is_expired(self.opts.now)
            });
            if usable {
                return Some(p);
            }
        }
        if depth >= self.opts.max_support_depth {
            return None;
        }
        let key = (issuer, right.clone());
        if resolving.contains(&key) {
            return None; // cycle among support requirements
        }
        resolving.push(key);
        self.stats.support_resolutions += 1;
        let found = self.support_search(&Node::Entity(issuer), right, resolving, depth);
        resolving.pop();
        found
    }

    /// A minimal forward search used only for support resolution (no
    /// attribute constraints; supports authorize, they don't modulate).
    /// Same parent-pointer scheme as the main search: the one support
    /// proof that is returned is assembled at the end.
    fn support_search(
        &mut self,
        start: &Node,
        target: &Node,
        resolving: &mut Vec<(EntityId, Node)>,
        depth: usize,
    ) -> Option<Proof> {
        struct SupRec {
            node: NodeId,
            pred: u32,
            step: Option<ProofStep>,
            depth: u32,
        }
        let interner = self.graph.interner();
        let start_id = interner.intern(start);
        let target_id = interner.intern(target);
        let mut arena: Vec<SupRec> = vec![SupRec {
            node: start_id,
            pred: NO_PRED,
            step: None,
            depth: 0,
        }];
        let mut visited: FastSet<NodeId> = FastSet::default();
        visited.insert(start_id);
        let mut queue: VecDeque<u32> = VecDeque::new();
        queue.push_back(0);
        while let Some(idx) = queue.pop_front() {
            self.stats.nodes_expanded += 1;
            let (node, state_depth) = {
                let s = &arena[idx as usize];
                (s.node, s.depth)
            };
            if state_depth as usize >= self.opts.max_depth {
                continue;
            }
            for edge in self.graph.edges_from_ids(node, self.opts.now) {
                self.stats.edges_considered += 1;
                if visited.contains(&edge.far) {
                    continue;
                }
                // Forward append: only the new step can break its own
                // transitive-trust limit.
                if edge
                    .cert
                    .delegation()
                    .max_extension_depth()
                    .is_some_and(|l| u64::from(state_depth) > l)
                {
                    continue;
                }
                let Some(step) = self.build_step(&edge.cert, resolving, depth + 1) else {
                    continue;
                };
                if edge.far == target_id {
                    let mut steps = vec![step];
                    let mut cur = idx as usize;
                    while let Some(s) = &arena[cur].step {
                        steps.push(s.clone());
                        cur = arena[cur].pred as usize;
                    }
                    steps.reverse();
                    return Some(Proof::from_steps(steps).expect("linked"));
                }
                visited.insert(edge.far);
                arena.push(SupRec {
                    node: edge.far,
                    pred: idx,
                    step: Some(step),
                    depth: state_depth + 1,
                });
                queue.push_back(u32::try_from(arena.len() - 1).expect("arena full"));
            }
        }
        None
    }
}

/// `a` dominates `b` if, for every constrained attribute, `a`'s effective
/// value is at least `b`'s — i.e. `b` cannot satisfy anything `a` cannot.
/// With no constraints all accumulations are equivalent, so any previous
/// visit dominates. (The live engine compares precomputed effective-value
/// vectors — see [`Frontier`] — this form is kept for the reference
/// engine and tests.)
pub(crate) fn dominates(
    a: &AttrAccumulator,
    b: &AttrAccumulator,
    constraints: &[AttrConstraint],
    decls: &DeclarationSet,
) -> bool {
    if constraints.is_empty() {
        return true;
    }
    constraints.iter().all(|c| {
        let base = decls
            .base(&c.attr)
            .unwrap_or_else(|| natural_base(c.attr.op()));
        a.effective(&c.attr, base) >= b.effective(&c.attr, base)
    })
}

pub(crate) fn natural_base(op: AttrOp) -> f64 {
    match op {
        AttrOp::Subtract => 0.0,
        AttrOp::Scale => 1.0,
        AttrOp::Min => f64::INFINITY,
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{AttrDeclaration, AttrOp, LocalEntity, ProofValidator, ValidationContext};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fx {
        a: LocalEntity,
        b: LocalEntity,
        maria: LocalEntity,
    }

    fn fx() -> Fx {
        let mut rng = StdRng::seed_from_u64(31);
        let g = SchnorrGroup::test_256();
        Fx {
            a: LocalEntity::generate("A", g.clone(), &mut rng),
            b: LocalEntity::generate("B", g.clone(), &mut rng),
            maria: LocalEntity::generate("Maria", g, &mut rng),
        }
    }

    fn opts() -> SearchOptions {
        SearchOptions::at(Timestamp(0))
    }

    #[test]
    fn multi_hop_chain_found_and_validates() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let r1 = f.a.role("r1");
        let r2 = f.a.role("r2");
        let r3 = f.a.role("r3");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(r1.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(r1), Node::role(r2.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(r2), Node::role(r3.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        let (proof, stats) = g.direct_query(&Node::entity(&f.maria), &Node::role(r3), &opts());
        let proof = proof.expect("chain exists");
        assert_eq!(proof.chain_len(), 3);
        assert!(stats.edges_considered >= 3);
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        assert!(v.validate(&proof).is_ok());
    }

    #[test]
    fn no_path_returns_none() {
        let f = fx();
        let mut g = DelegationGraph::new();
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(f.a.role("r1")))
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(f.a.role("other")),
            &opts(),
        );
        assert!(proof.is_none());
    }

    #[test]
    fn bfs_finds_shortest_chain() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let target = f.a.role("target");
        let hop = f.a.role("hop");
        // Long path Maria -> hop -> target, and short path Maria -> target.
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(hop.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(hop), Node::role(target.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(target.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(target), &opts());
        assert_eq!(proof.unwrap().chain_len(), 1);
    }

    #[test]
    fn third_party_edge_uses_provided_support() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let member = f.a.role("member");
        // A grants B member'.
        let grant =
            f.a.delegate(Node::entity(&f.b), Node::role_admin(member.clone()))
                .sign(&f.a)
                .unwrap();
        let support = Proof::from_steps(vec![ProofStep::new(grant)]).unwrap();
        // B issues member to Maria (third-party), publishing the support.
        let cert =
            f.b.delegate(Node::entity(&f.maria), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap();
        g.insert_with_supports(cert, vec![support]);

        let (proof, stats) = g.direct_query(&Node::entity(&f.maria), &Node::role(member), &opts());
        let proof = proof.expect("supported third-party chain");
        assert_eq!(
            stats.support_resolutions, 0,
            "provided support used directly"
        );
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        assert!(v.validate(&proof).is_ok());
    }

    #[test]
    fn third_party_support_discovered_from_graph() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let member = f.a.role("member");
        // Support material is in the graph but not pre-packaged.
        g.insert(
            f.a.delegate(Node::entity(&f.b), Node::role_admin(member.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.b.delegate(Node::entity(&f.maria), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap(),
        );

        let (proof, stats) = g.direct_query(&Node::entity(&f.maria), &Node::role(member), &opts());
        let proof = proof.expect("support found by recursive search");
        assert!(stats.support_resolutions >= 1);
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        assert!(v.validate(&proof).is_ok());
    }

    #[test]
    fn unsupported_third_party_edge_is_unusable() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let member = f.a.role("member");
        g.insert(
            f.b.delegate(Node::entity(&f.maria), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(member), &opts());
        assert!(proof.is_none(), "no authority for B over A.member");
    }

    #[test]
    fn subject_query_enumerates_reachable() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let r1 = f.a.role("r1");
        let r2 = f.a.role("r2");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(r1.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::entity(&f.b), Node::role(r2.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        let (proofs, _) = g.subject_query(&Node::entity(&f.maria), &opts());
        let objects: Vec<String> = proofs.iter().map(|p| p.object().to_string()).collect();
        assert_eq!(proofs.len(), 2, "reaches r1 and r2: {objects:?}");
        for p in &proofs {
            assert_eq!(p.subject(), &Node::entity(&f.maria));
        }
    }

    #[test]
    fn object_query_enumerates_reaching() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let r1 = f.a.role("r1");
        let r2 = f.a.role("r2");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(r1.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        let (proofs, _) = g.object_query(&Node::role(r2.clone()), &opts());
        assert_eq!(proofs.len(), 2, "r1 and Maria both reach r2");
        for p in &proofs {
            assert_eq!(p.object(), &Node::role(r2.clone()));
        }
        // Reverse-built proofs validate too.
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        for p in &proofs {
            assert!(v.validate(p).is_ok());
        }
    }

    #[test]
    fn constraint_pruning_cuts_work_but_preserves_answers() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        let target = f.a.role("target");

        // Path 1 (fails constraint): BW drops to 10 then fans out widely.
        let weak = f.a.role("weak");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(weak.clone()))
                .with_attr(bw.clone(), 10.0)
                .unwrap()
                .sign(&f.a)
                .unwrap(),
        );
        for i in 0..20 {
            let filler = f.a.role(&format!("filler{i}"));
            g.insert(
                f.a.delegate(Node::role(weak.clone()), Node::role(filler.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
            g.insert(
                f.a.delegate(Node::role(filler), Node::role(target.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
        }
        // Path 2 (satisfies): BW 500 direct.
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(target.clone()))
                .with_attr(bw.clone(), 500.0)
                .unwrap()
                .sign(&f.a)
                .unwrap(),
        );

        let constraint = AttrConstraint::at_least(bw.clone(), 100.0);
        let pruned_opts = opts().with_constraint(constraint.clone());
        let unpruned_opts = opts().with_constraint(constraint).without_pruning();

        let (p1, s1) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(target.clone()),
            &pruned_opts,
        );
        let (p2, s2) = g.direct_query(&Node::entity(&f.maria), &Node::role(target), &unpruned_opts);
        let (p1, _p2) = (
            p1.expect("found with pruning"),
            p2.expect("found without pruning"),
        );
        assert!(p1
            .accumulate()
            .satisfies(&pruned_opts.constraints, g.declarations()));
        assert!(
            s1.edges_considered <= s2.edges_considered,
            "pruning should not examine more edges ({} vs {})",
            s1.edges_considered,
            s2.edges_considered
        );
    }

    #[test]
    fn constrained_search_takes_weaker_free_path_when_strong_is_constrained() {
        // Two paths: short one violates the constraint, longer one is fine.
        // The Pareto frontier must keep the second path alive even though
        // the violating path reaches nodes first.
        let f = fx();
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        let mid = f.a.role("mid");
        let target = f.a.role("target");
        // Fast-but-narrow: Maria -> mid with BW 10.
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(mid.clone()))
                .with_attr(bw.clone(), 10.0)
                .unwrap()
                .sign(&f.a)
                .unwrap(),
        );
        // Slow-but-wide: Maria -> wide -> mid with BW 800.
        let wide = f.a.role("wide");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(wide.clone()))
                .with_attr(bw.clone(), 800.0)
                .unwrap()
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(wide), Node::role(mid.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(mid), Node::role(target.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        let o = opts().with_constraint(AttrConstraint::at_least(bw.clone(), 100.0));
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(target), &o);
        let proof = proof.expect("wide path satisfies");
        assert_eq!(proof.chain_len(), 3);
        let acc = proof.accumulate();
        assert_eq!(acc.effective(&bw, 1000.0), 800.0);
    }

    #[test]
    fn depth_limit_bounds_search() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let mut prev = Node::entity(&f.maria);
        for i in 0..10 {
            let r = f.a.role(&format!("r{i}"));
            g.insert(
                f.a.delegate(prev.clone(), Node::role(r.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
            prev = Node::role(r);
        }
        let shallow = opts().with_max_depth(5);
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &prev, &shallow);
        assert!(proof.is_none(), "target is 10 hops away, limit 5");
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &prev, &opts());
        assert_eq!(proof.unwrap().chain_len(), 10);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let r1 = f.a.role("r1");
        let r2 = f.a.role("r2");
        g.insert(
            f.a.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(r2.clone()), Node::role(r1.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(r1.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(r2), &opts());
        assert!(proof.is_some());
        let (proofs, _) = g.subject_query(&Node::entity(&f.maria), &opts());
        assert_eq!(proofs.len(), 2);
    }

    #[test]
    fn mutual_assignment_support_cycle_terminates_without_proof() {
        // B and C each claim assignment authority only via the other; no
        // self-certified root exists, so no proof should be found (and the
        // search must terminate).
        let f = fx();
        let mut g = DelegationGraph::new();
        let r = f.a.role("r");
        let b = &f.b;
        let mut rng = StdRng::seed_from_u64(99);
        let c = LocalEntity::generate("C", SchnorrGroup::test_256(), &mut rng);
        g.insert(
            b.delegate(Node::entity(&c), Node::role_admin(r.clone()))
                .sign(b)
                .unwrap(),
        );
        g.insert(
            c.delegate(Node::entity(b), Node::role_admin(r.clone()))
                .sign(&c)
                .unwrap(),
        );
        g.insert(
            b.delegate(Node::entity(&f.maria), Node::role(r.clone()))
                .sign(b)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(r), &opts());
        assert!(proof.is_none());
    }

    #[test]
    fn enumerate_proofs_finds_every_simple_path() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let target = f.a.role("target");
        // Diamond: Maria -> {l, r} -> target, plus a direct edge: 3 paths.
        for name in ["l", "r"] {
            let mid = f.a.role(name);
            g.insert(
                f.a.delegate(Node::entity(&f.maria), Node::role(mid.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
            g.insert(
                f.a.delegate(Node::role(mid), Node::role(target.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
        }
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(target.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        let (proofs, stats) = g.enumerate_proofs(
            &Node::entity(&f.maria),
            &Node::role(target.clone()),
            &opts(),
            100,
        );
        assert_eq!(proofs.len(), 3);
        assert!(stats.edges_considered >= 5);
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        for p in &proofs {
            assert!(v.validate(p).is_ok());
            assert_eq!(p.object(), &Node::role(target.clone()));
        }
        // All proofs distinct.
        for (i, p) in proofs.iter().enumerate() {
            for q in &proofs[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn enumerate_proofs_count_is_exponential_in_depth() {
        // Layered graph with branching 2 between layers: path count 2^depth.
        let f = fx();
        for depth in [2usize, 3, 4] {
            let mut g = DelegationGraph::new();
            let mut prev_layer = vec![Node::entity(&f.maria)];
            for l in 0..depth {
                let layer: Vec<Node> = (0..2)
                    .map(|i| Node::role(f.a.role(&format!("d{depth}l{l}n{i}"))))
                    .collect();
                for from in &prev_layer {
                    for to in &layer {
                        g.insert(f.a.delegate(from.clone(), to.clone()).sign(&f.a).unwrap());
                    }
                }
                prev_layer = layer;
            }
            let target = Node::role(f.a.role(&format!("d{depth}target")));
            for from in &prev_layer {
                g.insert(
                    f.a.delegate(from.clone(), target.clone())
                        .sign(&f.a)
                        .unwrap(),
                );
            }
            let (proofs, _) = g.enumerate_proofs(&Node::entity(&f.maria), &target, &opts(), 10_000);
            assert_eq!(proofs.len(), 1 << depth, "depth {depth}");
        }
    }

    #[test]
    fn enumerate_proofs_respects_cap_and_constraints() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        let target = f.a.role("target");
        // Two paths: one wide (500), one narrow (50).
        for (name, cap) in [("wide", 500.0), ("narrow", 50.0)] {
            let mid = f.a.role(name);
            g.insert(
                f.a.delegate(Node::entity(&f.maria), Node::role(mid.clone()))
                    .with_attr(bw.clone(), cap)
                    .unwrap()
                    .sign(&f.a)
                    .unwrap(),
            );
            g.insert(
                f.a.delegate(Node::role(mid), Node::role(target.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
        }
        let constrained = opts().with_constraint(AttrConstraint::at_least(bw, 100.0));
        let (proofs, _) = g.enumerate_proofs(
            &Node::entity(&f.maria),
            &Node::role(target.clone()),
            &constrained,
            100,
        );
        assert_eq!(proofs.len(), 1, "only the wide path satisfies");
        // Cap limits output.
        let (capped, _) =
            g.enumerate_proofs(&Node::entity(&f.maria), &Node::role(target), &opts(), 1);
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn depth_limited_edges_pruned_but_alternatives_found() {
        // Two routes to the target: a short depth-0 grant reachable only
        // via one hop (violates) and a longer unrestricted route.
        let f = fx();
        let mut g = DelegationGraph::new();
        let hop = f.a.role("hop");
        let target = f.a.role("target");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(hop.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        // Restricted: [hop -> target <depth:0>] — cannot be extended by
        // Maria's hop delegation.
        g.insert(
            f.a.delegate(Node::role(hop.clone()), Node::role(target.clone()))
                .max_extension_depth(0)
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(target.clone()),
            &opts(),
        );
        assert!(proof.is_none(), "depth-0 grant must not be extended");

        // Direct depth-0 grant works (position 0).
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(target.clone()))
                .max_extension_depth(0)
                .serial(2)
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(target), &opts());
        let proof = proof.expect("direct grant usable");
        assert_eq!(proof.chain_len(), 1);
        assert!(ProofValidator::new(ValidationContext::at(Timestamp(0)))
            .validate(&proof)
            .is_ok());
    }

    #[test]
    fn reverse_search_respects_depth_limits() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let hop = f.a.role("hop");
        let target = f.a.role("target");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(hop.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::role(hop), Node::role(target.clone()))
                .max_extension_depth(0)
                .sign(&f.a)
                .unwrap(),
        );
        // Object query from target: the depth-0 edge itself (position 0)
        // is a valid 1-step proof, but the 2-step extension is not.
        let (proofs, _) = g.object_query(&Node::role(target), &opts());
        assert_eq!(proofs.len(), 1, "only the unextended proof survives");
        assert_eq!(proofs[0].chain_len(), 1);
    }

    #[test]
    fn unusable_parallel_edge_does_not_poison_frontier() {
        // Two parallel edges Maria -> member: the first is an unsupported
        // third-party delegation (B has no authority over A.member), the
        // second is A's own, perfectly usable grant. The unusable edge is
        // examined first; it must not enter the Pareto frontier and
        // dominance-prune the usable one.
        let f = fx();
        let mut g = DelegationGraph::new();
        let member = f.a.role("member");
        g.insert(
            f.b.delegate(Node::entity(&f.maria), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap(),
        );
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(member.clone()))
                .sign(&f.a)
                .unwrap(),
        );
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(member), &opts());
        let proof = proof.expect("A's own grant must be found despite B's unusable edge");
        assert_eq!(proof.chain_len(), 1);
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)));
        assert!(v.validate(&proof).is_ok());
    }

    #[test]
    fn pruned_and_unpruned_searches_agree_on_satisfiability() {
        // The only path violates the constraint (BW 10 < 100). The
        // unpruned search walks it anyway for measurement, but must not
        // return a constraint-violating proof as a positive answer.
        let f = fx();
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        let target = f.a.role("target");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(target.clone()))
                .with_attr(bw.clone(), 10.0)
                .unwrap()
                .sign(&f.a)
                .unwrap(),
        );
        let constraint = AttrConstraint::at_least(bw, 100.0);
        let pruned_opts = opts().with_constraint(constraint.clone());
        let unpruned_opts = opts().with_constraint(constraint).without_pruning();
        let (pruned, _) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(target.clone()),
            &pruned_opts,
        );
        let (unpruned, _) =
            g.direct_query(&Node::entity(&f.maria), &Node::role(target), &unpruned_opts);
        assert!(pruned.is_none(), "pruned search rejects the violating path");
        assert!(
            unpruned.is_none(),
            "unpruned search must agree: a violating proof is not an answer"
        );
    }

    #[test]
    fn expired_edges_ignored_at_query_time() {
        let f = fx();
        let mut g = DelegationGraph::new();
        let r = f.a.role("r");
        g.insert(
            f.a.delegate(Node::entity(&f.maria), Node::role(r.clone()))
                .expires(Timestamp(5))
                .sign(&f.a)
                .unwrap(),
        );
        let (found, _) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(r.clone()),
            &SearchOptions::at(Timestamp(5)),
        );
        assert!(found.is_some());
        let (gone, _) = g.direct_query(
            &Node::entity(&f.maria),
            &Node::role(r),
            &SearchOptions::at(Timestamp(6)),
        );
        assert!(gone.is_none());
    }

    /// A moderately tangled fixture: role ladders with cross links, a
    /// constrained branch, a supported third-party edge, and a cycle.
    fn tangled_graph(f: &Fx) -> (DelegationGraph, Vec<Node>) {
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        let mut nodes = vec![Node::entity(&f.maria), Node::entity(&f.b)];
        for chain in 0..3 {
            let mut prev = Node::entity(&f.maria);
            for depth in 0..4 {
                let r = Node::role(f.a.role(&format!("c{chain}d{depth}")));
                let mut b = f.a.delegate(prev.clone(), r.clone());
                if chain == 1 {
                    b = b.with_attr(bw.clone(), 400.0 - 100.0 * depth as f64).unwrap();
                }
                g.insert(b.sign(&f.a).unwrap());
                nodes.push(r.clone());
                prev = r;
            }
        }
        // Cross links between the ladders.
        let c0 = Node::role(f.a.role("c0d1"));
        let c2 = Node::role(f.a.role("c2d3"));
        g.insert(f.a.delegate(c0.clone(), c2.clone()).sign(&f.a).unwrap());
        // A cycle.
        g.insert(f.a.delegate(c2, c0).serial(7).sign(&f.a).unwrap());
        // Third-party edge with discoverable support.
        let member = Node::role(f.a.role("member"));
        g.insert(
            f.a.delegate(
                Node::entity(&f.b),
                Node::role_admin(f.a.role("member")),
            )
            .sign(&f.a)
            .unwrap(),
        );
        g.insert(
            f.b.delegate(Node::role(f.a.role("c0d3")), member.clone())
                .sign(&f.b)
                .unwrap(),
        );
        nodes.push(member);
        (g, nodes)
    }

    #[test]
    fn parallel_search_matches_sequential_results() {
        let f = fx();
        let (g, nodes) = tangled_graph(&f);
        let bw = f.a.attr("BW", AttrOp::Min);
        let variants = [
            opts(),
            opts().with_constraint(AttrConstraint::at_least(bw, 150.0)),
        ];
        for o in &variants {
            for workers in [2usize, 4, 8] {
                let par = o.clone().with_workers(workers);
                for target in &nodes {
                    let (seq_proof, _) = g.direct_query(&Node::entity(&f.maria), target, o);
                    let (par_proof, _) = g.direct_query(&Node::entity(&f.maria), target, &par);
                    assert_eq!(
                        seq_proof, par_proof,
                        "direct_query disagrees at workers={workers} target={target}"
                    );
                }
                let (seq_s, _) = g.subject_query(&Node::entity(&f.maria), o);
                let (par_s, _) = g.subject_query(&Node::entity(&f.maria), &par);
                assert_eq!(seq_s, par_s, "subject_query disagrees at workers={workers}");
                for target in &nodes {
                    let (seq_o, _) = g.object_query(target, o);
                    let (par_o, _) = g.object_query(target, &par);
                    assert_eq!(seq_o, par_o, "object_query disagrees at workers={workers}");
                }
            }
        }
    }

    #[test]
    fn multi_proof_order_is_deterministic_and_id_sorted() {
        let f = fx();
        let (g, _) = tangled_graph(&f);
        let (first, _) = g.subject_query(&Node::entity(&f.maria), &opts());
        for _ in 0..5 {
            let (again, _) = g.subject_query(&Node::entity(&f.maria), &opts());
            assert_eq!(first, again, "subject_query order must be stable");
        }
        // Proofs of equal chain length are ordered by their delegation-id
        // sets, not by hash-map iteration order.
        for w in first.windows(2) {
            let ka = order_key(&w[0], w[0].object());
            let kb = order_key(&w[1], w[1].object());
            assert!(ka <= kb, "sorted by (chain_len, ids, endpoint)");
        }
    }

    /// A view that injects a panic while expanding one specific node,
    /// standing in for any worker-thread fault (bug, OOM-adjacent abort in
    /// a dependency, etc.).
    struct PoisonedView<'a> {
        inner: &'a DelegationGraph,
        poison: Node,
    }

    impl GraphView for PoisonedView<'_> {
        fn interner(&self) -> &crate::intern::NodeInterner {
            GraphView::interner(self.inner)
        }

        fn edges_from_ids(&self, node: crate::intern::NodeId, now: Timestamp) -> Vec<crate::view::InternedEdge> {
            if GraphView::interner(self.inner).resolve(node) == self.poison {
                panic!("injected fault while expanding poisoned node");
            }
            self.inner.edges_from_ids(node, now)
        }

        fn edges_to_ids(&self, node: crate::intern::NodeId, now: Timestamp) -> Vec<crate::view::InternedEdge> {
            self.inner.edges_to_ids(node, now)
        }

        fn support_for(&self, issuer: EntityId, right: &Node) -> Option<Proof> {
            self.inner.support_for(issuer, right)
        }

        fn id_revoked(&self, id: DelegationId) -> bool {
            GraphView::id_revoked(self.inner, id)
        }

        fn declaration_set(&self) -> DeclarationSet {
            self.inner.declaration_set()
        }
    }

    #[test]
    fn worker_panic_propagates_original_payload() {
        // Regression: a panicking search worker used to poison the shared
        // collection mutex, so the caller's unwrap reported an opaque
        // `PoisonError` instead of the worker's own panic. The batched
        // design has no shared mutex; the payload must surface verbatim.
        let f = fx();
        let mut g = DelegationGraph::new();
        let target = f.a.role("target");
        for i in 0..4 {
            let mid = f.a.role(&format!("mid{i}"));
            g.insert(
                f.a.delegate(Node::entity(&f.maria), Node::role(mid.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
            g.insert(
                f.a.delegate(Node::role(mid), Node::role(target.clone()))
                    .sign(&f.a)
                    .unwrap(),
            );
        }
        let view = PoisonedView {
            inner: &g,
            poison: Node::role(f.a.role("mid2")),
        };
        let o = opts().with_workers(4);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            direct_query_on(&view, &Node::entity(&f.maria), &Node::role(target.clone()), &o)
        }))
        .expect_err("worker panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default();
        assert!(
            msg.contains("injected fault"),
            "caller must see the worker's own payload, got: {msg:?}"
        );
        // The graph itself holds no poisoned state: the same parallel
        // query against the unpoisoned view still succeeds.
        let (proof, _) = g.direct_query(&Node::entity(&f.maria), &Node::role(target), &o);
        assert!(proof.is_some());
    }

    #[test]
    fn incomparable_attribute_fanout_keeps_pareto_alternatives() {
        // Ten parallel edges whose (BW, CPU) pairs are pairwise
        // incomparable (BW falls as CPU rises): none may dominance-prune
        // another, and every threshold pair picks out exactly its edge.
        let f = fx();
        let mut g = DelegationGraph::new();
        let bw = f.a.attr("BW", AttrOp::Min);
        let cpu = f.a.attr("CPU", AttrOp::Min);
        g.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());
        g.insert_declaration(&AttrDeclaration::new(cpu.clone(), 1000.0).unwrap());
        let hub = f.a.role("hub");
        let target = f.a.role("target");
        for i in 0..10u32 {
            g.insert(
                f.a.delegate(Node::entity(&f.maria), Node::role(hub.clone()))
                    .with_attr(bw.clone(), 1000.0 - 10.0 * f64::from(i))
                    .unwrap()
                    .with_attr(cpu.clone(), 10.0 + 10.0 * f64::from(i))
                    .unwrap()
                    .serial(u64::from(i))
                    .sign(&f.a)
                    .unwrap(),
            );
        }
        g.insert(
            f.a.delegate(Node::role(hub.clone()), Node::role(target.clone()))
                .sign(&f.a)
                .unwrap(),
        );

        // Loose thresholds admit every edge: all ten incomparable
        // accumulations must coexist on the hub's frontier.
        let loose = opts()
            .with_constraint(AttrConstraint::at_least(bw.clone(), 910.0))
            .with_constraint(AttrConstraint::at_least(cpu.clone(), 10.0));
        let (proof, stats) =
            g.direct_query(&Node::entity(&f.maria), &Node::role(target.clone()), &loose);
        assert!(proof.is_some());
        assert!(
            stats.states_enqueued >= 10,
            "all incomparable arrivals survive the frontier: {stats:?}"
        );

        // Tight threshold pairs are satisfied by exactly one edge each.
        for j in [0u32, 4, 9] {
            let o = opts()
                .with_constraint(AttrConstraint::at_least(
                    bw.clone(),
                    1000.0 - 10.0 * f64::from(j),
                ))
                .with_constraint(AttrConstraint::at_least(
                    cpu.clone(),
                    10.0 + 10.0 * f64::from(j),
                ));
            let (proof, _) =
                g.direct_query(&Node::entity(&f.maria), &Node::role(target.clone()), &o);
            let proof = proof.unwrap_or_else(|| panic!("edge {j} satisfies both constraints"));
            let acc = proof.accumulate();
            assert_eq!(acc.effective(&bw, 1000.0), 1000.0 - 10.0 * f64::from(j));
            assert_eq!(acc.effective(&cpu, 1000.0), 10.0 + 10.0 * f64::from(j));
        }
    }
}
