//! A delegation store sharded behind per-shard reader–writer locks.
//!
//! [`ShardedGraph`] holds the same data as [`DelegationGraph`] but splits
//! it across independent lock domains so concurrent provers don't
//! serialize on a single graph lock:
//!
//! * **edge shards** — `by_subject` / `by_object` adjacency and provided
//!   support proofs, sharded by the *namespace entity* of the keying node
//!   (`Node::namespace()`, i.e. the subject-entity fingerprint). A
//!   delegation lives in the shard of its subject's namespace (subject
//!   index) and the shard of its object's namespace (object index).
//! * **id shards** — the `by_id` index and revocation marks, sharded by
//!   the leading byte of the delegation id.
//! * **declarations** — one small lock of their own.
//!
//! All mutators take `&self`; interior locks are held only for the
//! duration of one method call and are never nested with each other or
//! with anything else (in particular, callers must never journal while a
//! shard lock is held — same rule as drbac-store). A multi-index update
//! (insert, remove) therefore isn't atomic across shards; readers may
//! transiently see a delegation in one direction index before the other.
//! Search tolerates that: each direction is consulted independently, and
//! revocation marks — the safety-critical signal — live in a single id
//! shard per id, so a revoke is observed atomically.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use drbac_core::{
    AttrDeclaration, DeclarationSet, DelegationId, EntityId, Node, Proof, SignedDelegation,
    Timestamp,
};

use crate::intern::{namespace_hash, FastMap, NodeId, NodeInterner};
use crate::search::{direct_query_on, object_query_on, subject_query_on};
use crate::view::{GraphView, InternedEdge};
use crate::{DelegationGraph, GraphMetrics, SearchOptions, SearchStats};

/// Default number of edge/id shards.
const DEFAULT_SHARDS: usize = 16;

#[derive(Debug, Default)]
struct EdgeShard {
    /// Adjacency keyed by interned subject id; each entry carries the
    /// object endpoint pre-interned so searches never hash a `Node`.
    by_subject: FastMap<NodeId, Vec<InternedEdge>>,
    /// Adjacency keyed by interned object id; `far` is the subject.
    by_object: FastMap<NodeId, Vec<InternedEdge>>,
    supports: HashMap<(EntityId, Node), Proof>,
}

/// Inserts `edge` into an adjacency list at its id-ordered position.
/// Lists stay sorted by delegation id so iteration order — and thus every
/// proof-search tie-break among parallel edges — is independent of the
/// order delegations arrived in. Ids are unique per list (duplicates are
/// rejected by the `by_id` check before edges are touched).
fn insert_edge_ordered(list: &mut Vec<InternedEdge>, edge: InternedEdge) {
    let id = edge.cert.id();
    let pos = list.partition_point(|e| e.cert.id() < id);
    list.insert(pos, edge);
}

#[derive(Debug, Default)]
struct IdShard {
    by_id: HashMap<DelegationId, Arc<SignedDelegation>>,
    revoked: BTreeSet<DelegationId>,
}

/// A concurrently usable delegation graph: the [`DelegationGraph`] data
/// model behind per-shard `RwLock`s. See the module docs for the shard
/// layout and lock rules.
#[derive(Debug)]
pub struct ShardedGraph {
    edge_shards: Box<[RwLock<EdgeShard>]>,
    id_shards: Box<[RwLock<IdShard>]>,
    declarations: RwLock<DeclarationSet>,
    /// Node ⇄ dense-id table. Append-only, so ids held by an in-flight
    /// search stay valid across concurrent writes; the cached namespace
    /// hash makes shard routing a table lookup.
    interner: NodeInterner,
}

impl Default for ShardedGraph {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl ShardedGraph {
    /// An empty graph with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph with `shards` lock domains (clamped to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1);
        ShardedGraph {
            edge_shards: (0..n).map(|_| RwLock::new(EdgeShard::default())).collect(),
            id_shards: (0..n).map(|_| RwLock::new(IdShard::default())).collect(),
            declarations: RwLock::new(DeclarationSet::default()),
            interner: NodeInterner::new(),
        }
    }

    /// Number of shard lock domains.
    pub fn shard_count(&self) -> usize {
        self.edge_shards.len()
    }

    /// Shard routing by interned id: the namespace hash was computed once
    /// at intern time, so this is a table lookup, not a fingerprint hash.
    fn edge_shard_of_id(&self, id: NodeId) -> &RwLock<EdgeShard> {
        let idx = (self.interner.ns_hash(id) as usize) % self.edge_shards.len();
        &self.edge_shards[idx]
    }

    fn edge_shard_of_entity(&self, entity: EntityId) -> &RwLock<EdgeShard> {
        let idx = (namespace_hash(entity) as usize) % self.edge_shards.len();
        &self.edge_shards[idx]
    }

    fn id_shard_of(&self, id: DelegationId) -> &RwLock<IdShard> {
        &self.id_shards[id.0[0] as usize % self.id_shards.len()]
    }

    /// Read-locks an edge shard, counting contention: if the lock can't be
    /// taken immediately (a writer holds it) the
    /// `drbac.graph.shard.contention.count` counter is bumped before
    /// blocking.
    fn read_edges<'a>(
        &'a self,
        shard: &'a RwLock<EdgeShard>,
    ) -> parking_lot::RwLockReadGuard<'a, EdgeShard> {
        match shard.try_read() {
            Some(guard) => guard,
            None => {
                drbac_obs::static_counter!("drbac.graph.shard.contention.count").inc();
                shard.read()
            }
        }
    }

    /// Inserts a delegation. Returns its id; idempotent for identical
    /// delegations.
    ///
    /// Adjacency lists are kept ordered by delegation id, so the graph —
    /// and therefore every search answer, including which of several
    /// parallel edges a proof happens to use — is a pure function of the
    /// delegation *set*, not of insertion order. Journal replay and
    /// index-driven hydration insert in different orders and must still
    /// produce byte-identical proofs.
    pub fn insert(&self, cert: impl Into<Arc<SignedDelegation>>) -> DelegationId {
        let cert: Arc<SignedDelegation> = cert.into();
        let id = cert.id();
        {
            let mut ids = self.id_shard_of(id).write();
            if ids.by_id.contains_key(&id) {
                return id;
            }
            ids.by_id.insert(id, Arc::clone(&cert));
        }
        let subject = self.interner.intern(cert.delegation().subject());
        let object = self.interner.intern(cert.delegation().object());
        insert_edge_ordered(
            self.edge_shard_of_id(subject)
                .write()
                .by_subject
                .entry(subject)
                .or_default(),
            InternedEdge {
                cert: Arc::clone(&cert),
                far: object,
            },
        );
        insert_edge_ordered(
            self.edge_shard_of_id(object)
                .write()
                .by_object
                .entry(object)
                .or_default(),
            InternedEdge { cert, far: subject },
        );
        id
    }

    /// Inserts a third-party delegation together with the support proofs
    /// its issuer must provide.
    pub fn insert_with_supports(
        &self,
        cert: impl Into<Arc<SignedDelegation>>,
        supports: Vec<Proof>,
    ) -> DelegationId {
        let id = self.insert(cert);
        for support in supports {
            self.provide_support(support);
        }
        id
    }

    /// Registers a standalone support proof, keyed by what it proves.
    /// Later insertions with the same key replace earlier ones.
    pub fn provide_support(&self, support: Proof) {
        if let Node::Entity(issuer) = support.subject() {
            let issuer = *issuer;
            let key = (issuer, support.object().clone());
            self.edge_shard_of_entity(issuer)
                .write()
                .supports
                .insert(key, support);
        }
    }

    /// Looks up a provided support proof for `(issuer, right)`.
    pub fn provided_support(&self, issuer: EntityId, right: &Node) -> Option<Proof> {
        let shard = self.edge_shard_of_entity(issuer);
        let guard = self.read_edges(shard);
        guard.supports.get(&(issuer, right.clone())).cloned()
    }

    /// Every provided support proof (for persistence).
    pub fn all_supports(&self) -> Vec<Proof> {
        let mut out = Vec::new();
        for shard in self.edge_shards.iter() {
            out.extend(shard.read().supports.values().cloned());
        }
        out
    }

    /// Records a verified attribute declaration.
    pub fn insert_declaration(&self, decl: &AttrDeclaration) {
        self.declarations.write().insert(decl);
    }

    /// Owned snapshot of the declaration set.
    pub fn declarations(&self) -> DeclarationSet {
        self.declarations.read().clone()
    }

    /// Marks a delegation revoked. Revoked edges are skipped by searches.
    /// Returns `true` if the id was known.
    pub fn revoke(&self, id: DelegationId) -> bool {
        let mut ids = self.id_shard_of(id).write();
        ids.revoked.insert(id);
        ids.by_id.contains_key(&id)
    }

    /// `true` if `id` has been revoked.
    pub fn is_revoked(&self, id: DelegationId) -> bool {
        self.id_shard_of(id).read().revoked.contains(&id)
    }

    /// The full revocation set (union over shards).
    pub fn revoked_ids(&self) -> BTreeSet<DelegationId> {
        let mut out = BTreeSet::new();
        for shard in self.id_shards.iter() {
            out.extend(shard.read().revoked.iter().copied());
        }
        out
    }

    /// Removes a delegation entirely (e.g. an expired cache entry).
    /// Returns the removed credential, if present.
    pub fn remove(&self, id: DelegationId) -> Option<Arc<SignedDelegation>> {
        let cert = self.id_shard_of(id).write().by_id.remove(&id)?;
        let subject = self.interner.intern(cert.delegation().subject());
        let object = self.interner.intern(cert.delegation().object());
        {
            let mut shard = self.edge_shard_of_id(subject).write();
            if let Some(v) = shard.by_subject.get_mut(&subject) {
                v.retain(|e| e.cert.id() != id);
            }
        }
        {
            let mut shard = self.edge_shard_of_id(object).write();
            if let Some(v) = shard.by_object.get_mut(&object) {
                v.retain(|e| e.cert.id() != id);
            }
        }
        Some(cert)
    }

    /// Fetches a delegation by id.
    pub fn get(&self, id: DelegationId) -> Option<Arc<SignedDelegation>> {
        self.id_shard_of(id).read().by_id.get(&id).cloned()
    }

    /// `true` if the graph holds `id`.
    pub fn contains(&self, id: DelegationId) -> bool {
        self.id_shard_of(id).read().by_id.contains_key(&id)
    }

    /// Number of stored delegations.
    pub fn len(&self) -> usize {
        self.id_shards.iter().map(|s| s.read().by_id.len()).sum()
    }

    /// `true` if the graph holds no delegations.
    pub fn is_empty(&self) -> bool {
        self.id_shards.iter().all(|s| s.read().by_id.is_empty())
    }

    /// Every stored delegation (owned; order unspecified).
    pub fn iter_certs(&self) -> Vec<Arc<SignedDelegation>> {
        let mut out = Vec::new();
        for shard in self.id_shards.iter() {
            out.extend(shard.read().by_id.values().cloned());
        }
        out
    }

    /// Streams every stored delegation through `f`, one shard at a time
    /// (order unspecified), without materializing the whole set. Used by
    /// index rebuilds and snapshot-adjacent sweeps over large wallets.
    /// The shard lock is held across each callback; don't re-enter the
    /// graph from `f`.
    pub fn for_each_cert(&self, f: &mut dyn FnMut(&Arc<SignedDelegation>)) {
        for shard in self.id_shards.iter() {
            for cert in shard.read().by_id.values() {
                f(cert);
            }
        }
    }

    /// Drops expired delegations given the current time; returns how many
    /// were removed.
    pub fn purge_expired(&self, now: Timestamp) -> usize {
        let expired: Vec<DelegationId> = self
            .iter_certs()
            .into_iter()
            .filter(|c| c.delegation().is_expired(now))
            .map(|c| c.id())
            .collect();
        let mut n = 0;
        for id in expired {
            if self.remove(id).is_some() {
                n += 1;
            }
        }
        n
    }

    /// Drops every delegation, support, declaration, and revocation mark.
    pub fn clear(&self) {
        for shard in self.edge_shards.iter() {
            *shard.write() = EdgeShard::default();
        }
        for shard in self.id_shards.iter() {
            *shard.write() = IdShard::default();
        }
        *self.declarations.write() = DeclarationSet::default();
    }

    /// Materializes a single-threaded [`DelegationGraph`] with the same
    /// contents. This walks every shard — it's for diagnostics, export,
    /// and oracle checks, not for the query hot path.
    pub fn snapshot(&self) -> DelegationGraph {
        let mut by_subject: HashMap<Node, Vec<Arc<SignedDelegation>>> = HashMap::new();
        let mut by_object: HashMap<Node, Vec<Arc<SignedDelegation>>> = HashMap::new();
        let mut supports: HashMap<(EntityId, Node), Proof> = HashMap::new();
        for shard in self.edge_shards.iter() {
            let guard = shard.read();
            for (k, v) in &guard.by_subject {
                by_subject.insert(
                    self.interner.resolve(*k),
                    v.iter().map(|e| Arc::clone(&e.cert)).collect(),
                );
            }
            for (k, v) in &guard.by_object {
                by_object.insert(
                    self.interner.resolve(*k),
                    v.iter().map(|e| Arc::clone(&e.cert)).collect(),
                );
            }
            for (k, v) in &guard.supports {
                supports.insert(k.clone(), v.clone());
            }
        }
        let mut by_id: HashMap<DelegationId, Arc<SignedDelegation>> = HashMap::new();
        let mut revoked: BTreeSet<DelegationId> = BTreeSet::new();
        for shard in self.id_shards.iter() {
            let guard = shard.read();
            for (k, v) in &guard.by_id {
                by_id.insert(*k, Arc::clone(v));
            }
            revoked.extend(guard.revoked.iter().copied());
        }
        DelegationGraph {
            by_subject,
            by_object,
            by_id,
            supports,
            declarations: self.declarations.read().clone(),
            revoked,
            interner: NodeInterner::new(),
        }
    }

    /// Structural metrics (via [`ShardedGraph::snapshot`]; diagnostics
    /// only).
    pub fn metrics(&self) -> GraphMetrics {
        self.snapshot().metrics()
    }

    /// Direct query (§4.1) against the live sharded store; see
    /// [`DelegationGraph::direct_query`].
    pub fn direct_query(
        &self,
        subject: &Node,
        object: &Node,
        opts: &SearchOptions,
    ) -> (Option<Proof>, SearchStats) {
        direct_query_on(self, subject, object, opts)
    }

    /// Subject query (§4.1); see [`DelegationGraph::subject_query`].
    pub fn subject_query(&self, subject: &Node, opts: &SearchOptions) -> (Vec<Proof>, SearchStats) {
        subject_query_on(self, subject, opts)
    }

    /// Object query (§4.1); see [`DelegationGraph::object_query`].
    pub fn object_query(&self, object: &Node, opts: &SearchOptions) -> (Vec<Proof>, SearchStats) {
        object_query_on(self, object, opts)
    }
}

impl GraphView for ShardedGraph {
    fn interner(&self) -> &NodeInterner {
        &self.interner
    }

    fn edges_from_ids(&self, node: NodeId, now: Timestamp) -> Vec<InternedEdge> {
        let mut edges: Vec<InternedEdge> = {
            let shard = self.edge_shard_of_id(node);
            let guard = self.read_edges(shard);
            guard.by_subject.get(&node).cloned().unwrap_or_default()
        };
        edges.retain(|e| !e.cert.delegation().is_expired(now) && !self.is_revoked(e.cert.id()));
        edges
    }

    fn edges_to_ids(&self, node: NodeId, now: Timestamp) -> Vec<InternedEdge> {
        let mut edges: Vec<InternedEdge> = {
            let shard = self.edge_shard_of_id(node);
            let guard = self.read_edges(shard);
            guard.by_object.get(&node).cloned().unwrap_or_default()
        };
        edges.retain(|e| !e.cert.delegation().is_expired(now) && !self.is_revoked(e.cert.id()));
        edges
    }

    fn support_for(&self, issuer: EntityId, right: &Node) -> Option<Proof> {
        self.provided_support(issuer, right)
    }

    fn id_revoked(&self, id: DelegationId) -> bool {
        self.is_revoked(id)
    }

    fn declaration_set(&self) -> DeclarationSet {
        self.declarations.read().clone()
    }
}

impl From<DelegationGraph> for ShardedGraph {
    fn from(graph: DelegationGraph) -> Self {
        let sharded = ShardedGraph::new();
        for cert in graph.by_id.values() {
            sharded.insert(Arc::clone(cert));
        }
        for support in graph.supports.values() {
            sharded.provide_support(support.clone());
        }
        *sharded.declarations.write() = graph.declarations.clone();
        for id in &graph.revoked {
            let mut shard = sharded.id_shard_of(*id).write();
            shard.revoked.insert(*id);
        }
        sharded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{LocalEntity, ProofStep};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn local(name: &str, seed: u64) -> LocalEntity {
        LocalEntity::generate(
            name,
            SchnorrGroup::test_256(),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    fn opts() -> SearchOptions {
        SearchOptions::at(Timestamp(0))
    }

    #[test]
    fn insert_query_revoke_roundtrip() {
        let a = local("A", 1);
        let m = local("M", 2);
        let g = ShardedGraph::new();
        let r1 = a.role("r1");
        let r2 = a.role("r2");
        let id = g.insert(
            a.delegate(Node::entity(&m), Node::role(r1.clone()))
                .sign(&a)
                .unwrap(),
        );
        g.insert(
            a.delegate(Node::role(r1), Node::role(r2.clone()))
                .sign(&a)
                .unwrap(),
        );
        assert_eq!(g.len(), 2);
        assert!(g.contains(id));
        let (proof, _) = g.direct_query(&Node::entity(&m), &Node::role(r2.clone()), &opts());
        assert_eq!(proof.expect("chain").chain_len(), 2);

        assert!(g.revoke(id));
        assert!(g.is_revoked(id));
        let (proof, _) = g.direct_query(&Node::entity(&m), &Node::role(r2), &opts());
        assert!(proof.is_none(), "revoked first hop breaks the chain");
        assert_eq!(g.revoked_ids().len(), 1);
    }

    #[test]
    fn queries_match_unsharded_graph_across_shard_counts() {
        let a = local("A", 1);
        let b = local("B", 7);
        let m = local("M", 2);
        let mut plain = DelegationGraph::new();
        let mut certs = Vec::new();
        // A few ladders, a third-party edge with support, one revocation.
        let mut prev = Node::entity(&m);
        for d in 0..4 {
            let r = Node::role(a.role(&format!("d{d}")));
            certs.push(a.delegate(prev.clone(), r.clone()).sign(&a).unwrap());
            prev = r;
        }
        certs.push(
            a.delegate(Node::entity(&b), Node::role_admin(a.role("member")))
                .sign(&a)
                .unwrap(),
        );
        certs.push(
            b.delegate(Node::role(a.role("d3")), Node::role(a.role("member")))
                .sign(&b)
                .unwrap(),
        );
        for c in &certs {
            plain.insert(c.clone());
        }
        let revoked_id = certs[1].id();
        plain.revoke(revoked_id);

        for shards in [1usize, 3, 16] {
            let g = ShardedGraph::with_shards(shards);
            for c in &certs {
                g.insert(c.clone());
            }
            g.revoke(revoked_id);
            for target in ["d0", "d1", "d2", "d3", "member"] {
                let t = Node::role(a.role(target));
                let (want, _) = plain.direct_query(&Node::entity(&m), &t, &opts());
                let (got, _) = g.direct_query(&Node::entity(&m), &t, &opts());
                assert_eq!(want, got, "target {target}, shards {shards}");
            }
            let (want_s, _) = plain.subject_query(&Node::entity(&m), &opts());
            let (got_s, _) = g.subject_query(&Node::entity(&m), &opts());
            assert_eq!(want_s, got_s, "subject query, shards {shards}");
            let t = Node::role(a.role("member"));
            let (want_o, _) = plain.object_query(&t, &opts());
            let (got_o, _) = g.object_query(&t, &opts());
            assert_eq!(want_o, got_o, "object query, shards {shards}");
        }
    }

    #[test]
    fn snapshot_preserves_contents() {
        let a = local("A", 1);
        let b = local("B", 5);
        let m = local("M", 2);
        let g = ShardedGraph::new();
        let member = a.role("member");
        let grant = a
            .delegate(Node::entity(&b), Node::role_admin(member.clone()))
            .sign(&a)
            .unwrap();
        let support = Proof::from_steps(vec![ProofStep::new(grant)]).unwrap();
        let id = g.insert_with_supports(
            b.delegate(Node::entity(&m), Node::role(member.clone()))
                .sign(&b)
                .unwrap(),
            vec![support.clone()],
        );
        let other = g.insert(
            a.delegate(Node::entity(&m), Node::role(a.role("r")))
                .sign(&a)
                .unwrap(),
        );
        g.revoke(other);

        let snap = g.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.is_revoked(other));
        assert!(snap.contains(id));
        assert_eq!(
            snap.provided_support(b.id(), &Node::role_admin(member.clone())),
            Some(&support)
        );
        // The snapshot answers queries like the sharded original.
        let (want, _) = g.direct_query(&Node::entity(&m), &Node::role(member.clone()), &opts());
        let (got, _) = snap.direct_query(&Node::entity(&m), &Node::role(member), &opts());
        assert_eq!(want, got);
        // And converting back keeps everything too.
        let back = ShardedGraph::from(snap);
        assert_eq!(back.len(), 2);
        assert!(back.is_revoked(other));
    }

    #[test]
    fn remove_and_purge_unindex_across_shards() {
        let a = local("A", 1);
        let m = local("M", 2);
        let g = ShardedGraph::with_shards(4);
        let keep = g.insert(
            a.delegate(Node::entity(&m), Node::role(a.role("keep")))
                .sign(&a)
                .unwrap(),
        );
        g.insert(
            a.delegate(Node::entity(&m), Node::role(a.role("drop")))
                .expires(Timestamp(3))
                .sign(&a)
                .unwrap(),
        );
        assert_eq!(g.purge_expired(Timestamp(10)), 1);
        assert_eq!(g.len(), 1);
        assert!(g.remove(keep).is_some());
        assert!(g.remove(keep).is_none());
        assert!(g.is_empty());
        assert!(g.edges_from(&Node::entity(&m), Timestamp(0)).is_empty());
        g.clear();
        assert!(g.is_empty());
    }

    #[test]
    fn concurrent_readers_and_writers_smoke() {
        let a = local("A", 1);
        let users: Vec<LocalEntity> = (0..4).map(|i| local(&format!("U{i}"), 100 + i)).collect();
        let g = Arc::new(ShardedGraph::new());
        let role = a.role("r");
        let mut certs = Vec::new();
        for (i, u) in users.iter().enumerate() {
            certs.push(
                a.delegate(Node::entity(u), Node::role(role.clone()))
                    .serial(i as u64)
                    .sign(&a)
                    .unwrap(),
            );
        }
        std::thread::scope(|s| {
            for chunk in certs.chunks(2) {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for c in chunk {
                        g.insert(c.clone());
                    }
                });
            }
            for u in &users {
                let g = Arc::clone(&g);
                let subject = Node::entity(u);
                let target = Node::role(role.clone());
                s.spawn(move || {
                    for _ in 0..20 {
                        let _ = g.direct_query(&subject, &target, &opts());
                    }
                });
            }
        });
        assert_eq!(g.len(), users.len());
        for u in &users {
            let (proof, _) = g.direct_query(&Node::entity(u), &Node::role(role.clone()), &opts());
            assert!(proof.is_some(), "every published grant resolvable");
        }
    }
}
