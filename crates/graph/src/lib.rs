#![warn(missing_docs)]

//! Delegation graph and credential-chain search for dRBAC.
//!
//! The paper's wallets "rely upon graph-based data structures that allow
//! efficient enumeration of delegation chains between any specified
//! subject and object" (§4.1). This crate provides that structure:
//!
//! * [`DelegationGraph`] — an indexed store of signed delegations,
//!   provided support proofs, attribute declarations, and revocations;
//! * [`ShardedGraph`] — the same store sharded by subject-entity
//!   fingerprint behind per-shard locks, so concurrent readers and
//!   writers don't serialize on one lock;
//! * the three query forms of §4.1 — [`DelegationGraph::direct_query`]
//!   (`S ⇒ O?`), [`DelegationGraph::subject_query`] (`S ⇒ *`), and
//!   [`DelegationGraph::object_query`] (`* ⇒ O`) — all constraint-aware
//!   and available against any [`GraphView`] (see [`direct_query_on`]);
//! * monotonicity-based pruning of constrained searches (§4.2.3), with
//!   [`SearchStats`] so experiments can measure its effect;
//! * dense node interning ([`NodeInterner`]) so the search hot path
//!   compares and hashes `u32` ids instead of cloning [`drbac_core::Node`]s;
//! * optional parallel frontier expansion
//!   ([`SearchOptions::with_workers`]) with results identical to the
//!   sequential search.
//!
//! See [`DelegationGraph`] for a worked example.

mod graph;
mod intern;
#[doc(hidden)]
pub mod reference;
mod search;
mod sharded;
mod view;

pub use graph::{DelegationGraph, GraphMetrics};
pub use intern::{FastIdHasher, FastMap, FastSet, NodeId, NodeInterner};
pub use search::{
    direct_query_on, object_query_on, subject_query_on, SearchOptions, SearchStats,
};
pub use sharded::ShardedGraph;
pub use view::{GraphView, InternedEdge};
