#![warn(missing_docs)]

//! Delegation graph and credential-chain search for dRBAC.
//!
//! The paper's wallets "rely upon graph-based data structures that allow
//! efficient enumeration of delegation chains between any specified
//! subject and object" (§4.1). This crate provides that structure:
//!
//! * [`DelegationGraph`] — an indexed store of signed delegations,
//!   provided support proofs, attribute declarations, and revocations;
//! * the three query forms of §4.1 — [`DelegationGraph::direct_query`]
//!   (`S ⇒ O?`), [`DelegationGraph::subject_query`] (`S ⇒ *`), and
//!   [`DelegationGraph::object_query`] (`* ⇒ O`) — all constraint-aware;
//! * monotonicity-based pruning of constrained searches (§4.2.3), with
//!   [`SearchStats`] so experiments can measure its effect.
//!
//! See [`DelegationGraph`] for a worked example.

mod graph;
mod search;

pub use graph::{DelegationGraph, GraphMetrics};
pub use search::{SearchOptions, SearchStats};
