//! Read abstraction over delegation storage.
//!
//! The chain-search engine ([`crate::SearchOptions`], `search.rs`) is
//! generic over this trait so the same traversal, pruning, and
//! support-resolution logic runs against both the single-threaded
//! [`crate::DelegationGraph`] and the concurrent [`crate::ShardedGraph`].
//! All methods return owned data: a view implementation may hold internal
//! locks only for the duration of one call, never across search steps, so
//! a search in progress can overlap with writers.
//!
//! The hot-path accessors are the *interned* ones
//! ([`GraphView::edges_from_ids`] / [`GraphView::edges_to_ids`]): they
//! key adjacency by dense [`NodeId`]s from the graph-owned
//! [`NodeInterner`] and hand back each edge's far endpoint pre-interned,
//! so the search never hashes or clones a [`Node`] per edge. The
//! `Node`-keyed forms remain for entry points and diagnostics.

use std::sync::Arc;

use drbac_core::{DeclarationSet, DelegationId, EntityId, Node, Proof, SignedDelegation, Timestamp};

use crate::intern::{NodeId, NodeInterner};
use crate::DelegationGraph;

/// One adjacency entry: a credential plus the interned id of its far
/// endpoint (the object for subject-indexed edges, the subject for
/// object-indexed ones).
#[derive(Debug, Clone)]
pub struct InternedEdge {
    /// The delegation credential.
    pub cert: Arc<SignedDelegation>,
    /// Interned id of the edge's far endpoint.
    pub far: NodeId,
}

/// Read-only delegation storage as seen by the search engine.
///
/// `Sync` is required so parallel frontier expansion can share the view
/// across worker threads.
pub trait GraphView: Sync {
    /// The graph-owned intern table mapping [`Node`]s to dense ids.
    fn interner(&self) -> &NodeInterner;

    /// Usable (unrevoked, unexpired at `now`) delegations whose subject
    /// is the interned `node`, in insertion order, each with its object
    /// endpoint pre-interned.
    fn edges_from_ids(&self, node: NodeId, now: Timestamp) -> Vec<InternedEdge>;

    /// Usable delegations whose object is the interned `node`, in
    /// insertion order, each with its subject endpoint pre-interned.
    fn edges_to_ids(&self, node: NodeId, now: Timestamp) -> Vec<InternedEdge>;

    /// Usable delegations whose subject is `node`, in insertion order.
    fn edges_from(&self, node: &Node, now: Timestamp) -> Vec<Arc<SignedDelegation>> {
        match self.interner().get(node) {
            Some(id) => self
                .edges_from_ids(id, now)
                .into_iter()
                .map(|e| e.cert)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Usable delegations whose object is `node`, in insertion order.
    fn edges_to(&self, node: &Node, now: Timestamp) -> Vec<Arc<SignedDelegation>> {
        match self.interner().get(node) {
            Some(id) => self
                .edges_to_ids(id, now)
                .into_iter()
                .map(|e| e.cert)
                .collect(),
            None => Vec::new(),
        }
    }

    /// The support proof provided at publication for `(issuer, right)`,
    /// if any.
    fn support_for(&self, issuer: EntityId, right: &Node) -> Option<Proof>;

    /// `true` if `id` carries a revocation mark.
    fn id_revoked(&self, id: DelegationId) -> bool;

    /// Owned snapshot of the attribute declarations (base values). Taken
    /// once per search, so constraint evaluation inside one search is
    /// self-consistent even while declarations are concurrently updated.
    fn declaration_set(&self) -> DeclarationSet;
}

impl GraphView for DelegationGraph {
    fn interner(&self) -> &NodeInterner {
        self.node_interner()
    }

    fn edges_from_ids(&self, node: NodeId, now: Timestamp) -> Vec<InternedEdge> {
        let interner = self.node_interner();
        let resolved = interner.resolve(node);
        self.outgoing(&resolved, now)
            .map(|c| InternedEdge {
                far: interner.intern(c.delegation().object()),
                cert: Arc::clone(c),
            })
            .collect()
    }

    fn edges_to_ids(&self, node: NodeId, now: Timestamp) -> Vec<InternedEdge> {
        let interner = self.node_interner();
        let resolved = interner.resolve(node);
        self.incoming(&resolved, now)
            .map(|c| InternedEdge {
                far: interner.intern(c.delegation().subject()),
                cert: Arc::clone(c),
            })
            .collect()
    }

    fn edges_from(&self, node: &Node, now: Timestamp) -> Vec<Arc<SignedDelegation>> {
        self.outgoing(node, now).cloned().collect()
    }

    fn edges_to(&self, node: &Node, now: Timestamp) -> Vec<Arc<SignedDelegation>> {
        self.incoming(node, now).cloned().collect()
    }

    fn support_for(&self, issuer: EntityId, right: &Node) -> Option<Proof> {
        self.provided_support(issuer, right).cloned()
    }

    fn id_revoked(&self, id: DelegationId) -> bool {
        self.is_revoked(id)
    }

    fn declaration_set(&self) -> DeclarationSet {
        self.declarations().clone()
    }
}
