//! Read abstraction over delegation storage.
//!
//! The chain-search engine ([`crate::SearchOptions`], `search.rs`) is
//! generic over this trait so the same traversal, pruning, and
//! support-resolution logic runs against both the single-threaded
//! [`crate::DelegationGraph`] and the concurrent [`crate::ShardedGraph`].
//! All methods return owned data: a view implementation may hold internal
//! locks only for the duration of one call, never across search steps, so
//! a search in progress can overlap with writers.

use std::sync::Arc;

use drbac_core::{DeclarationSet, DelegationId, EntityId, Node, Proof, SignedDelegation, Timestamp};

use crate::DelegationGraph;

/// Read-only delegation storage as seen by the search engine.
///
/// `Sync` is required so parallel frontier expansion can share the view
/// across worker threads.
pub trait GraphView: Sync {
    /// Usable (unrevoked, unexpired at `now`) delegations whose subject is
    /// `node`, in insertion order.
    fn edges_from(&self, node: &Node, now: Timestamp) -> Vec<Arc<SignedDelegation>>;

    /// Usable delegations whose object is `node`, in insertion order.
    fn edges_to(&self, node: &Node, now: Timestamp) -> Vec<Arc<SignedDelegation>>;

    /// The support proof provided at publication for `(issuer, right)`,
    /// if any.
    fn support_for(&self, issuer: EntityId, right: &Node) -> Option<Proof>;

    /// `true` if `id` carries a revocation mark.
    fn id_revoked(&self, id: DelegationId) -> bool;

    /// Owned snapshot of the attribute declarations (base values). Taken
    /// once per search, so constraint evaluation inside one search is
    /// self-consistent even while declarations are concurrently updated.
    fn declaration_set(&self) -> DeclarationSet;
}

impl GraphView for DelegationGraph {
    fn edges_from(&self, node: &Node, now: Timestamp) -> Vec<Arc<SignedDelegation>> {
        self.outgoing(node, now).cloned().collect()
    }

    fn edges_to(&self, node: &Node, now: Timestamp) -> Vec<Arc<SignedDelegation>> {
        self.incoming(node, now).cloned().collect()
    }

    fn support_for(&self, issuer: EntityId, right: &Node) -> Option<Proof> {
        self.provided_support(issuer, right).cloned()
    }

    fn id_revoked(&self, id: DelegationId) -> bool {
        self.is_revoked(id)
    }

    fn declaration_set(&self) -> DeclarationSet {
        self.declarations().clone()
    }
}
