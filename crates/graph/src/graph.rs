//! The indexed delegation store.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use drbac_core::{
    AttrDeclaration, DeclarationSet, DelegationId, EntityId, Node, Proof, SignedDelegation,
    Timestamp,
};

/// An in-memory graph of delegations, indexed by subject, object, and id.
///
/// This is the data structure at the heart of a wallet (paper Figure 1):
/// nodes are entities/roles/rights, edges are delegations. Alongside the
/// edges it stores the *support proofs* that issuers of third-party
/// delegations are required to provide at publication, the attribute
/// declarations for base values, and the set of revoked delegation ids.
///
/// # Example
///
/// ```
/// use drbac_core::{LocalEntity, Node, Timestamp};
/// use drbac_crypto::SchnorrGroup;
/// use drbac_graph::{DelegationGraph, SearchOptions};
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(21);
/// # let g = SchnorrGroup::test_256();
/// let a = LocalEntity::generate("A", g.clone(), &mut rng);
/// let m = LocalEntity::generate("M", g, &mut rng);
///
/// let mut graph = DelegationGraph::new();
/// graph.insert(a.delegate(Node::entity(&m), Node::role(a.role("r"))).sign(&a)?);
///
/// let (proof, _stats) = graph.direct_query(
///     &Node::entity(&m),
///     &Node::role(a.role("r")),
///     &SearchOptions::at(Timestamp(0)),
/// );
/// assert!(proof.is_some());
/// # Ok::<(), drbac_core::ValidationError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DelegationGraph {
    pub(crate) by_subject: HashMap<Node, Vec<Arc<SignedDelegation>>>,
    pub(crate) by_object: HashMap<Node, Vec<Arc<SignedDelegation>>>,
    pub(crate) by_id: HashMap<DelegationId, Arc<SignedDelegation>>,
    /// Support proofs provided at publication, keyed by (issuer, right).
    pub(crate) supports: HashMap<(EntityId, Node), Proof>,
    pub(crate) declarations: DeclarationSet,
    pub(crate) revoked: BTreeSet<DelegationId>,
    /// Node ⇄ dense-id table used by the interned search accessors
    /// ([`crate::GraphView::edges_from_ids`]). Populated lazily as
    /// searches touch nodes; carries no authority of its own, so clones
    /// and snapshots may start it fresh.
    pub(crate) interner: crate::intern::NodeInterner,
}

impl DelegationGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a delegation. Returns its id; idempotent for identical
    /// delegations.
    ///
    /// Adjacency lists are kept ordered by delegation id so search
    /// answers — including which of several parallel edges a proof uses —
    /// depend only on the delegation set, never on insertion order.
    pub fn insert(&mut self, cert: impl Into<Arc<SignedDelegation>>) -> DelegationId {
        let cert: Arc<SignedDelegation> = cert.into();
        let id = cert.id();
        if self.by_id.contains_key(&id) {
            return id;
        }
        let subject_list = self
            .by_subject
            .entry(cert.delegation().subject().clone())
            .or_default();
        let pos = subject_list.partition_point(|c| c.id() < id);
        subject_list.insert(pos, Arc::clone(&cert));
        let object_list = self
            .by_object
            .entry(cert.delegation().object().clone())
            .or_default();
        let pos = object_list.partition_point(|c| c.id() < id);
        object_list.insert(pos, Arc::clone(&cert));
        self.by_id.insert(id, cert);
        id
    }

    /// Inserts a third-party delegation together with the support proofs
    /// its issuer must provide (paper §4.1: wallets are freed "from having
    /// to conduct recursive searches to collect the supporting chains").
    pub fn insert_with_supports(
        &mut self,
        cert: impl Into<Arc<SignedDelegation>>,
        supports: Vec<Proof>,
    ) -> DelegationId {
        let id = self.insert(cert);
        for support in supports {
            self.provide_support(support);
        }
        id
    }

    /// Registers a standalone support proof, keyed by what it proves.
    /// Later insertions with the same key replace earlier ones.
    pub fn provide_support(&mut self, support: Proof) {
        if let Node::Entity(issuer) = support.subject() {
            self.supports
                .insert((*issuer, support.object().clone()), support);
        }
    }

    /// Looks up a provided support proof for `(issuer, right)`.
    pub fn provided_support(&self, issuer: EntityId, right: &Node) -> Option<&Proof> {
        self.supports.get(&(issuer, right.clone()))
    }

    /// Every provided support proof (for persistence).
    pub fn all_supports(&self) -> Vec<Proof> {
        self.supports.values().cloned().collect()
    }

    /// Records a verified attribute declaration.
    pub fn insert_declaration(&mut self, decl: &AttrDeclaration) {
        self.declarations.insert(decl);
    }

    /// The declaration set (base values for effective-value computation).
    pub fn declarations(&self) -> &DeclarationSet {
        &self.declarations
    }

    /// Marks a delegation revoked. Revoked edges are skipped by searches
    /// and fail validation. Returns `true` if the id was known.
    pub fn revoke(&mut self, id: DelegationId) -> bool {
        self.revoked.insert(id);
        self.by_id.contains_key(&id)
    }

    /// `true` if `id` has been revoked.
    pub fn is_revoked(&self, id: DelegationId) -> bool {
        self.revoked.contains(&id)
    }

    /// The revocation set.
    pub fn revoked(&self) -> &BTreeSet<DelegationId> {
        &self.revoked
    }

    /// Removes a delegation entirely (e.g. an expired cache entry).
    /// Returns the removed credential, if present.
    pub fn remove(&mut self, id: DelegationId) -> Option<Arc<SignedDelegation>> {
        let cert = self.by_id.remove(&id)?;
        if let Some(v) = self.by_subject.get_mut(cert.delegation().subject()) {
            v.retain(|c| c.id() != id);
        }
        if let Some(v) = self.by_object.get_mut(cert.delegation().object()) {
            v.retain(|c| c.id() != id);
        }
        Some(cert)
    }

    /// Fetches a delegation by id.
    pub fn get(&self, id: DelegationId) -> Option<&Arc<SignedDelegation>> {
        self.by_id.get(&id)
    }

    /// `true` if the graph holds `id`.
    pub fn contains(&self, id: DelegationId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Number of stored delegations.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// `true` if the graph holds no delegations.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Delegations whose subject is `node` (outgoing edges), excluding
    /// revoked and expired ones.
    pub fn outgoing(
        &self,
        node: &Node,
        now: Timestamp,
    ) -> impl Iterator<Item = &Arc<SignedDelegation>> {
        self.by_subject
            .get(node)
            .into_iter()
            .flatten()
            .filter(move |c| !self.revoked.contains(&c.id()) && !c.delegation().is_expired(now))
    }

    /// Delegations whose object is `node` (incoming edges), excluding
    /// revoked and expired ones.
    pub fn incoming(
        &self,
        node: &Node,
        now: Timestamp,
    ) -> impl Iterator<Item = &Arc<SignedDelegation>> {
        self.by_object
            .get(node)
            .into_iter()
            .flatten()
            .filter(move |c| !self.revoked.contains(&c.id()) && !c.delegation().is_expired(now))
    }

    /// Iterates over every stored delegation.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<SignedDelegation>> {
        self.by_id.values()
    }

    /// The node intern table (see [`crate::NodeInterner`]).
    pub(crate) fn node_interner(&self) -> &crate::intern::NodeInterner {
        &self.interner
    }

    /// Structural metrics over the stored graph (diagnostics and
    /// experiment reporting).
    pub fn metrics(&self) -> GraphMetrics {
        let mut entities = std::collections::BTreeSet::new();
        let mut roles = std::collections::BTreeSet::new();
        let mut issuers = std::collections::BTreeSet::new();
        fn note(
            node: &Node,
            entities: &mut std::collections::BTreeSet<EntityId>,
            roles: &mut std::collections::BTreeSet<Node>,
        ) {
            match node {
                Node::Entity(e) => {
                    entities.insert(*e);
                }
                other => {
                    roles.insert(other.clone());
                    entities.insert(other.namespace());
                }
            }
        }
        let mut third_party = 0usize;
        let mut with_attrs = 0usize;
        for cert in self.by_id.values() {
            let d = cert.delegation();
            note(d.subject(), &mut entities, &mut roles);
            note(d.object(), &mut entities, &mut roles);
            issuers.insert(d.issuer());
            entities.insert(d.issuer());
            if d.kind() == drbac_core::DelegationKind::ThirdParty {
                third_party += 1;
            }
            if !d.clauses().is_empty() {
                with_attrs += 1;
            }
        }
        let max_out_degree = self.by_subject.values().map(Vec::len).max().unwrap_or(0);
        GraphMetrics {
            delegations: self.by_id.len(),
            revoked: self.revoked.len(),
            entities: entities.len(),
            roles: roles.len(),
            issuers: issuers.len(),
            third_party,
            with_attributes: with_attrs,
            max_out_degree,
            provided_supports: self.supports.len(),
            declarations: self.declarations.len(),
        }
    }

    /// Drops expired delegations given the current time; returns how many
    /// were removed.
    pub fn purge_expired(&mut self, now: Timestamp) -> usize {
        let expired: Vec<DelegationId> = self
            .by_id
            .values()
            .filter(|c| c.delegation().is_expired(now))
            .map(|c| c.id())
            .collect();
        let n = expired.len();
        for id in expired {
            self.remove(id);
        }
        n
    }
}

/// Structural summary of a delegation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphMetrics {
    /// Stored delegations (including revoked ones still marked).
    pub delegations: usize,
    /// Revocation marks.
    pub revoked: usize,
    /// Distinct entities appearing anywhere.
    pub entities: usize,
    /// Distinct role-like nodes.
    pub roles: usize,
    /// Distinct issuing entities.
    pub issuers: usize,
    /// Third-party delegations.
    pub third_party: usize,
    /// Delegations carrying attribute clauses.
    pub with_attributes: usize,
    /// Largest out-degree of any node.
    pub max_out_degree: usize,
    /// Provided support proofs on file.
    pub provided_supports: usize,
    /// Attribute declarations on file.
    pub declarations: usize,
}

impl std::fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} delegations ({} third-party, {} with attributes, {} revoked), \
             {} roles across {} entities, max out-degree {}, {} supports, {} declarations",
            self.delegations,
            self.third_party,
            self.with_attributes,
            self.revoked,
            self.roles,
            self.entities,
            self.max_out_degree,
            self.provided_supports,
            self.declarations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchOptions;
    use drbac_core::LocalEntity;
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn local(name: &str, seed: u64) -> LocalEntity {
        LocalEntity::generate(
            name,
            SchnorrGroup::test_256(),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn insert_is_idempotent_and_indexed() {
        let a = local("A", 1);
        let m = local("M", 2);
        let cert = a
            .delegate(Node::entity(&m), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        let mut g = DelegationGraph::new();
        let id1 = g.insert(cert.clone());
        let id2 = g.insert(cert);
        assert_eq!(id1, id2);
        assert_eq!(g.len(), 1);
        assert_eq!(g.outgoing(&Node::entity(&m), Timestamp(0)).count(), 1);
        assert_eq!(
            g.incoming(&Node::role(a.role("r")), Timestamp(0)).count(),
            1
        );
        assert!(g.contains(id1));
        assert!(g.get(id1).is_some());
    }

    #[test]
    fn revoked_and_expired_edges_are_skipped() {
        let a = local("A", 1);
        let m = local("M", 2);
        let c1 = a
            .delegate(Node::entity(&m), Node::role(a.role("r1")))
            .sign(&a)
            .unwrap();
        let c2 = a
            .delegate(Node::entity(&m), Node::role(a.role("r2")))
            .expires(Timestamp(5))
            .sign(&a)
            .unwrap();
        let mut g = DelegationGraph::new();
        let id1 = g.insert(c1);
        g.insert(c2);
        assert_eq!(g.outgoing(&Node::entity(&m), Timestamp(0)).count(), 2);
        assert_eq!(g.outgoing(&Node::entity(&m), Timestamp(6)).count(), 1);
        g.revoke(id1);
        assert!(g.is_revoked(id1));
        assert_eq!(g.outgoing(&Node::entity(&m), Timestamp(6)).count(), 0);
    }

    #[test]
    fn remove_unindexes() {
        let a = local("A", 1);
        let m = local("M", 2);
        let cert = a
            .delegate(Node::entity(&m), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        let mut g = DelegationGraph::new();
        let id = g.insert(cert);
        assert!(g.remove(id).is_some());
        assert!(g.remove(id).is_none());
        assert!(g.is_empty());
        assert_eq!(g.outgoing(&Node::entity(&m), Timestamp(0)).count(), 0);
    }

    #[test]
    fn purge_expired_removes_only_expired() {
        let a = local("A", 1);
        let m = local("M", 2);
        let mut g = DelegationGraph::new();
        g.insert(
            a.delegate(Node::entity(&m), Node::role(a.role("keep")))
                .sign(&a)
                .unwrap(),
        );
        g.insert(
            a.delegate(Node::entity(&m), Node::role(a.role("drop")))
                .expires(Timestamp(3))
                .sign(&a)
                .unwrap(),
        );
        assert_eq!(g.purge_expired(Timestamp(10)), 1);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn supports_are_keyed_by_issuer_and_right() {
        let a = local("A", 1);
        let b = local("B", 2);
        let member = a.role("member");
        let grant = a
            .delegate(Node::entity(&b), Node::role_admin(member.clone()))
            .sign(&a)
            .unwrap();
        let support = Proof::from_steps(vec![drbac_core::ProofStep::new(grant)]).unwrap();
        let mut g = DelegationGraph::new();
        g.provide_support(support.clone());
        assert_eq!(
            g.provided_support(b.id(), &Node::role_admin(member.clone())),
            Some(&support)
        );
        assert_eq!(g.provided_support(a.id(), &Node::role_admin(member)), None);
    }

    #[test]
    fn metrics_count_structure() {
        let a = local("A", 1);
        let b = local("B", 2);
        let m = local("M", 3);
        let mut g = DelegationGraph::new();
        assert_eq!(g.metrics(), GraphMetrics::default());

        let bw = a.attr("bw", drbac_core::AttrOp::Min);
        g.insert_declaration(&drbac_core::AttrDeclaration::new(bw.clone(), 10.0).unwrap());
        // Self-certified with attribute.
        let c1 = a
            .delegate(Node::entity(&m), Node::role(a.role("r1")))
            .with_attr(bw, 5.0)
            .unwrap()
            .sign(&a)
            .unwrap();
        // Third-party.
        let c2 = b
            .delegate(Node::role(a.role("r1")), Node::role(a.role("r2")))
            .sign(&b)
            .unwrap();
        let id1 = g.insert(c1);
        g.insert(c2);
        g.revoke(id1);

        let metrics = g.metrics();
        assert_eq!(metrics.delegations, 2);
        assert_eq!(metrics.revoked, 1);
        assert_eq!(metrics.third_party, 1);
        assert_eq!(metrics.with_attributes, 1);
        assert_eq!(metrics.roles, 2);
        assert_eq!(metrics.issuers, 2);
        assert_eq!(metrics.entities, 3, "A, B, M");
        assert_eq!(metrics.declarations, 1);
        assert!(metrics.to_string().contains("2 delegations"));
    }

    #[test]
    fn quickstart_example_finds_direct_proof() {
        let a = local("A", 1);
        let m = local("M", 2);
        let mut g = DelegationGraph::new();
        g.insert(
            a.delegate(Node::entity(&m), Node::role(a.role("r")))
                .sign(&a)
                .unwrap(),
        );
        let (proof, stats) = g.direct_query(
            &Node::entity(&m),
            &Node::role(a.role("r")),
            &SearchOptions::at(Timestamp(0)),
        );
        assert!(proof.is_some());
        assert!(stats.nodes_expanded >= 1);
    }
}
