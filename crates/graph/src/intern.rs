//! Dense integer interning of graph nodes.
//!
//! Every [`Node`] that enters a graph is assigned a dense `u32` id by a
//! graph-owned [`NodeInterner`]. Adjacency, frontier dedup, and
//! edge-endpoint comparisons then operate on [`NodeId`]s — single-word
//! hashes and `==` instead of fingerprint hashing and `Node::clone()` per
//! edge. Alongside the id, the interner caches the hash of the node's
//! namespace entity so shard routing is a table lookup instead of a
//! `DefaultHasher` run over a 32-byte fingerprint.
//!
//! The table is append-only: ids are never reused or remapped, so a
//! search may keep ids across lock acquisitions and a concurrent writer
//! interning new nodes can never invalidate them. Interning an existing
//! node takes a read lock only.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use parking_lot::RwLock;

use drbac_core::Node;

/// Dense graph-local identity of an interned [`Node`].
///
/// Ids are only meaningful relative to the [`NodeInterner`] that issued
/// them; they are *not* stable across graphs or process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A fast one-word hasher for maps keyed by [`NodeId`] (or other small
/// integer keys). Fibonacci-style multiply-xor, in the spirit of FxHash;
/// not DoS-resistant, which is fine for ids we assign ourselves.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastIdHasher(u64);

const FAST_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FastIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FAST_SEED);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(FAST_SEED);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FAST_SEED);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` keyed by interned ids, using [`FastIdHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastIdHasher>>;

/// `HashSet` of interned ids, using [`FastIdHasher`].
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastIdHasher>>;

/// Per-node metadata cached at intern time.
#[derive(Debug, Clone)]
struct NodeMeta {
    node: Node,
    /// `DefaultHasher` hash of `node.namespace()` — the shard-routing key,
    /// computed once here instead of per access.
    ns_hash: u64,
}

#[derive(Debug, Default)]
struct Table {
    ids: HashMap<Node, NodeId>,
    meta: Vec<NodeMeta>,
}

/// Append-only `Node` ⇄ [`NodeId`] table with interior mutability.
///
/// All methods take `&self`; `intern` takes the write lock only when the
/// node is genuinely new.
#[derive(Debug, Default)]
pub struct NodeInterner {
    table: RwLock<Table>,
}

/// Hashes a namespace entity the same way shard routing always has
/// (`DefaultHasher` over the `EntityId`).
pub(crate) fn namespace_hash(entity: drbac_core::EntityId) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    entity.hash(&mut h);
    h.finish()
}

impl NodeInterner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id of `node`, assigning a fresh one if it was never seen.
    pub fn intern(&self, node: &Node) -> NodeId {
        if let Some(id) = self.table.read().ids.get(node) {
            return *id;
        }
        let mut table = self.table.write();
        if let Some(id) = table.ids.get(node) {
            return *id; // raced with another interning writer
        }
        let id = NodeId(u32::try_from(table.meta.len()).expect("interner full"));
        table.meta.push(NodeMeta {
            node: node.clone(),
            ns_hash: namespace_hash(node.namespace()),
        });
        table.ids.insert(node.clone(), id);
        id
    }

    /// The id of `node` if it has been interned.
    pub fn get(&self, node: &Node) -> Option<NodeId> {
        self.table.read().ids.get(node).copied()
    }

    /// The node behind `id` (owned clone).
    ///
    /// # Panics
    ///
    /// If `id` was not issued by this interner.
    pub fn resolve(&self, id: NodeId) -> Node {
        self.table.read().meta[id.index()].node.clone()
    }

    /// The cached namespace hash of `id` (shard-routing key).
    ///
    /// # Panics
    ///
    /// If `id` was not issued by this interner.
    pub fn ns_hash(&self, id: NodeId) -> u64 {
        self.table.read().meta[id.index()].ns_hash
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.table.read().meta.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Clone for NodeInterner {
    fn clone(&self) -> Self {
        let table = self.table.read();
        NodeInterner {
            table: RwLock::new(Table {
                ids: table.ids.clone(),
                meta: table.meta.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::LocalEntity;
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn intern_is_stable_and_dense() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = LocalEntity::generate("A", SchnorrGroup::test_256(), &mut rng);
        let interner = NodeInterner::new();
        let n1 = Node::entity(&a);
        let n2 = Node::role(a.role("r"));
        let id1 = interner.intern(&n1);
        let id2 = interner.intern(&n2);
        assert_ne!(id1, id2);
        assert_eq!(interner.intern(&n1), id1, "re-interning is stable");
        assert_eq!(interner.get(&n2), Some(id2));
        assert_eq!(interner.resolve(id1), n1);
        assert_eq!(interner.resolve(id2), n2);
        assert_eq!(interner.len(), 2);
        assert_eq!((id1.index(), id2.index()), (0, 1), "ids are dense");
    }

    #[test]
    fn ns_hash_matches_default_hasher_of_namespace() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = LocalEntity::generate("A", SchnorrGroup::test_256(), &mut rng);
        let interner = NodeInterner::new();
        let node = Node::role(a.role("r"));
        let id = interner.intern(&node);
        assert_eq!(interner.ns_hash(id), namespace_hash(node.namespace()));
    }

    #[test]
    fn concurrent_interning_yields_one_id_per_node() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = LocalEntity::generate("A", SchnorrGroup::test_256(), &mut rng);
        let interner = NodeInterner::new();
        let nodes: Vec<Node> = (0..32).map(|i| Node::role(a.role(&format!("r{i}")))).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for n in &nodes {
                        interner.intern(n);
                    }
                });
            }
        });
        assert_eq!(interner.len(), nodes.len());
        let clone = interner.clone();
        for n in &nodes {
            assert_eq!(interner.get(n), clone.get(n));
        }
    }
}
