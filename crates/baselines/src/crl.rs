//! CRL-style periodic revocation lists (paper §6).
//!
//! "Revocation-based schemes transmit information regarding all revoked
//! certificates to all subscribers" — each period, every subscriber
//! receives the full list whether or not any entry is relevant to it.

use std::collections::{BTreeSet, HashMap};

use drbac_core::{DelegationId, Ticks, Timestamp};

/// A published revocation list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrlList {
    /// Publication instant.
    pub published_at: Timestamp,
    /// Every revocation accumulated so far.
    pub revoked: BTreeSet<DelegationId>,
}

impl CrlList {
    /// Size in entries (proxy for bytes on the wire).
    pub fn len(&self) -> usize {
        self.revoked.len()
    }

    /// `true` when no revocations are listed.
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty()
    }
}

/// The CRL issuer: accumulates revocations and publishes on a period.
#[derive(Debug, Clone)]
pub struct CrlPublisher {
    period: Ticks,
    next_publication: Timestamp,
    revoked: BTreeSet<DelegationId>,
    revoked_at: HashMap<DelegationId, Timestamp>,
    /// Lists published so far.
    pub publications: u64,
}

impl CrlPublisher {
    /// A publisher issuing a list every `period`.
    pub fn new(period: Ticks) -> Self {
        assert!(period.0 > 0, "publication period must be positive");
        CrlPublisher {
            period,
            next_publication: Timestamp(0),
            revoked: BTreeSet::new(),
            revoked_at: HashMap::new(),
            publications: 0,
        }
    }

    /// Records a revocation (appears in the next list).
    pub fn revoke(&mut self, id: DelegationId, at: Timestamp) {
        if self.revoked.insert(id) {
            self.revoked_at.insert(id, at);
        }
    }

    /// When `id` was revoked, if it was.
    pub fn revoked_at(&self, id: DelegationId) -> Option<Timestamp> {
        self.revoked_at.get(&id).copied()
    }

    /// Advances to `now`, returning every list that came due.
    pub fn publish_due(&mut self, now: Timestamp) -> Vec<CrlList> {
        let mut lists = Vec::new();
        while self.next_publication <= now {
            lists.push(CrlList {
                published_at: self.next_publication,
                revoked: self.revoked.clone(),
            });
            self.publications += 1;
            self.next_publication = self.next_publication.after(self.period);
        }
        lists
    }
}

/// A CRL subscriber: receives each list in full.
#[derive(Debug, Clone, Default)]
pub struct CrlSubscriber {
    known_revoked: BTreeSet<DelegationId>,
    detected: HashMap<DelegationId, Timestamp>,
    /// List messages received.
    pub messages: u64,
    /// Total entries received across all lists (wire-volume proxy),
    /// including entries irrelevant to this subscriber.
    pub entries_received: u64,
}

impl CrlSubscriber {
    /// A fresh subscriber.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests a published list.
    pub fn receive(&mut self, list: &CrlList) {
        self.messages += 1;
        self.entries_received += list.len() as u64;
        for &id in &list.revoked {
            if self.known_revoked.insert(id) {
                self.detected.insert(id, list.published_at);
            }
        }
    }

    /// `true` if this subscriber has learned `id` is revoked.
    pub fn knows_revoked(&self, id: DelegationId) -> bool {
        self.known_revoked.contains(&id)
    }

    /// Detection latency relative to the publisher's revocation record.
    pub fn staleness(&self, id: DelegationId, publisher: &CrlPublisher) -> Option<Ticks> {
        let revoked = publisher.revoked_at(id)?;
        let detected = self.detected.get(&id)?;
        Some(detected.since(revoked))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(b: u8) -> DelegationId {
        DelegationId([b; 32])
    }

    #[test]
    fn lists_accumulate_and_publish_on_period() {
        let mut publisher = CrlPublisher::new(Ticks(10));
        publisher.revoke(id(1), Timestamp(1));
        let lists = publisher.publish_due(Timestamp(25)); // t0, t10, t20
        assert_eq!(lists.len(), 3);
        assert!(lists[0].is_empty() || lists[0].revoked.contains(&id(1)));
        assert!(lists[2].revoked.contains(&id(1)));
        assert_eq!(publisher.publications, 3);
    }

    #[test]
    fn subscribers_receive_irrelevant_entries() {
        let mut publisher = CrlPublisher::new(Ticks(10));
        for b in 1..=50 {
            publisher.revoke(id(b), Timestamp(0));
        }
        let mut subscriber = CrlSubscriber::new();
        for list in publisher.publish_due(Timestamp(10)) {
            subscriber.receive(&list);
        }
        // Two lists, each carrying all 50 entries, even if the subscriber
        // cares about none of them.
        assert_eq!(subscriber.messages, 2);
        assert_eq!(subscriber.entries_received, 100);
    }

    #[test]
    fn staleness_is_bounded_by_period() {
        let mut publisher = CrlPublisher::new(Ticks(10));
        let mut subscriber = CrlSubscriber::new();
        for list in publisher.publish_due(Timestamp(0)) {
            subscriber.receive(&list);
        }
        publisher.revoke(id(1), Timestamp(1));
        for list in publisher.publish_due(Timestamp(20)) {
            subscriber.receive(&list);
        }
        assert!(subscriber.knows_revoked(id(1)));
        assert_eq!(subscriber.staleness(id(1), &publisher), Some(Ticks(9))); // t10 − t1
    }
}
