#![warn(missing_docs)]

//! Baselines the dRBAC paper compares against (qualitatively, §3.1.3 and
//! §6), implemented so the benchmark harness can measure the comparisons:
//!
//! * [`ocsp`] — online positive status checking: clients poll an
//!   authorized responder on an interval, costing messages even when
//!   nothing changed (contrast: delegation subscriptions push only on
//!   change);
//! * [`crl`] — periodic revocation lists: every subscriber receives the
//!   full list each period, including revocations irrelevant to it;
//! * [`phantom`] — the SPKI/RT0-style *phantom role* encoding of
//!   third-party delegation, to quantify the namespace pollution dRBAC's
//!   third-party form avoids;
//! * [`strategy`] — forward-only, reverse-only, and bidirectional chain
//!   search over a delegation graph, for the §4.2.3 path-explosion
//!   experiment;
//! * [`workload`] — synthetic delegation-forest generators shared by
//!   tests and benches.

pub mod crl;
pub mod ocsp;
pub mod phantom;
pub mod strategy;
pub mod workload;
