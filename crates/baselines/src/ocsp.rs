//! OCSP-style online status polling (paper §6, contrast to delegation
//! subscriptions).
//!
//! "Unlike OCSP, where a client monitoring the status of a certificate
//! must continuously poll an authorized server (even when the credential
//! has not changed), delegation subscriptions only require server and
//! network resources when a credential has been updated."

use std::collections::HashMap;

use drbac_core::{DelegationId, Ticks, Timestamp};

/// The authorized status responder.
#[derive(Debug, Clone, Default)]
pub struct OcspResponder {
    revoked: HashMap<DelegationId, Timestamp>,
    /// Status queries served (each costs a request + response message).
    pub queries_served: u64,
}

impl OcspResponder {
    /// A responder with nothing revoked.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `id` revoked effective `at`.
    pub fn revoke(&mut self, id: DelegationId, at: Timestamp) {
        self.revoked.entry(id).or_insert(at);
    }

    /// Answers a status query (counted).
    pub fn status(&mut self, id: DelegationId) -> bool {
        self.queries_served += 1;
        !self.revoked.contains_key(&id)
    }

    /// When `id` was revoked, if it was.
    pub fn revoked_at(&self, id: DelegationId) -> Option<Timestamp> {
        self.revoked.get(&id).copied()
    }
}

/// A relying party polling the responder on a fixed interval.
#[derive(Debug, Clone)]
pub struct OcspClient {
    interval: Ticks,
    watched: Vec<DelegationId>,
    next_poll: Timestamp,
    detected: HashMap<DelegationId, Timestamp>,
    /// Total messages this client has put on the wire (2 per status
    /// query: request + response).
    pub messages: u64,
}

impl OcspClient {
    /// A client polling every `interval`, starting at the epoch.
    pub fn new(interval: Ticks, watched: Vec<DelegationId>) -> Self {
        assert!(interval.0 > 0, "polling interval must be positive");
        OcspClient {
            interval,
            watched,
            next_poll: Timestamp(0),
            detected: HashMap::new(),
            messages: 0,
        }
    }

    /// Advances to `now`, performing every poll that came due. Returns the
    /// number of messages sent during this call.
    pub fn tick(&mut self, now: Timestamp, responder: &mut OcspResponder) -> u64 {
        let before = self.messages;
        while self.next_poll <= now {
            let poll_time = self.next_poll;
            for &id in &self.watched {
                self.messages += 2;
                if !responder.status(id) {
                    self.detected.entry(id).or_insert(poll_time);
                }
            }
            self.next_poll = self.next_poll.after(self.interval);
        }
        self.messages - before
    }

    /// When this client first observed `id` as revoked, if ever.
    pub fn detected_at(&self, id: DelegationId) -> Option<Timestamp> {
        self.detected.get(&id).copied()
    }

    /// Detection latency for `id`: observation time minus revocation time.
    pub fn staleness(&self, id: DelegationId, responder: &OcspResponder) -> Option<Ticks> {
        let revoked = responder.revoked_at(id)?;
        let detected = self.detected_at(id)?;
        Some(detected.since(revoked))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(b: u8) -> DelegationId {
        DelegationId([b; 32])
    }

    #[test]
    fn polling_costs_messages_even_without_changes() {
        let mut responder = OcspResponder::new();
        let mut client = OcspClient::new(Ticks(10), vec![id(1), id(2)]);
        // 101 ticks → polls at t0,10,...,100 → 11 polls × 2 ids × 2 msgs.
        let sent = client.tick(Timestamp(100), &mut responder);
        assert_eq!(sent, 44);
        assert_eq!(responder.queries_served, 22);
    }

    #[test]
    fn revocation_detected_at_next_poll_boundary() {
        let mut responder = OcspResponder::new();
        let mut client = OcspClient::new(Ticks(10), vec![id(1)]);
        client.tick(Timestamp(5), &mut responder); // poll at t0
        responder.revoke(id(1), Timestamp(7));
        client.tick(Timestamp(25), &mut responder); // polls at t10, t20
        assert_eq!(client.detected_at(id(1)), Some(Timestamp(10)));
        assert_eq!(client.staleness(id(1), &responder), Some(Ticks(3)));
    }

    #[test]
    fn unrevoked_ids_never_detected() {
        let mut responder = OcspResponder::new();
        let mut client = OcspClient::new(Ticks(5), vec![id(1)]);
        client.tick(Timestamp(100), &mut responder);
        assert_eq!(client.detected_at(id(1)), None);
        assert_eq!(client.staleness(id(1), &responder), None);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = OcspClient::new(Ticks(0), vec![]);
    }
}
