//! Unidirectional vs bidirectional chain search (paper §4.2.3).
//!
//! "The number of potential authorizing paths in a delegation tree with a
//! constant branching factor ... is clearly exponential in depth. ... a
//! significant reduction in the number of paths that must be considered
//! is possible if the search is simultaneously conducted in both
//! directions."
//!
//! These strategies traverse raw delegation edges (no proof assembly or
//! support resolution) so the benchmark isolates pure search cost.

use std::collections::{HashSet, VecDeque};

use drbac_core::{Node, Timestamp};
use drbac_graph::DelegationGraph;

/// Work counters for one strategy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrategyStats {
    /// Nodes dequeued.
    pub nodes_expanded: usize,
    /// Edges examined.
    pub edges_considered: usize,
    /// Whether a path was found.
    pub found: bool,
}

/// Forward breadth-first search (subject towards object).
pub fn forward_search(
    graph: &DelegationGraph,
    subject: &Node,
    object: &Node,
    now: Timestamp,
) -> StrategyStats {
    directed_search(graph, subject, object, now, true)
}

/// Reverse breadth-first search (object towards subject).
pub fn reverse_search(
    graph: &DelegationGraph,
    subject: &Node,
    object: &Node,
    now: Timestamp,
) -> StrategyStats {
    directed_search(graph, object, subject, now, false)
}

fn directed_search(
    graph: &DelegationGraph,
    start: &Node,
    target: &Node,
    now: Timestamp,
    forward: bool,
) -> StrategyStats {
    let mut stats = StrategyStats::default();
    let mut visited: HashSet<Node> = HashSet::new();
    let mut queue: VecDeque<Node> = VecDeque::new();
    visited.insert(start.clone());
    queue.push_back(start.clone());
    while let Some(node) = queue.pop_front() {
        stats.nodes_expanded += 1;
        let neighbors: Vec<Node> = if forward {
            graph
                .outgoing(&node, now)
                .map(|c| c.delegation().object().clone())
                .collect()
        } else {
            graph
                .incoming(&node, now)
                .map(|c| c.delegation().subject().clone())
                .collect()
        };
        for next in neighbors {
            stats.edges_considered += 1;
            if &next == target {
                stats.found = true;
                return stats;
            }
            if visited.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    stats
}

/// Bidirectional search: alternately expands the smaller frontier from
/// each end until the frontiers meet.
pub fn bidirectional_search(
    graph: &DelegationGraph,
    subject: &Node,
    object: &Node,
    now: Timestamp,
) -> StrategyStats {
    let mut stats = StrategyStats::default();
    if subject == object {
        stats.found = true;
        return stats;
    }
    let mut fwd_visited: HashSet<Node> = HashSet::from([subject.clone()]);
    let mut rev_visited: HashSet<Node> = HashSet::from([object.clone()]);
    let mut fwd_queue: VecDeque<Node> = VecDeque::from([subject.clone()]);
    let mut rev_queue: VecDeque<Node> = VecDeque::from([object.clone()]);

    while !fwd_queue.is_empty() || !rev_queue.is_empty() {
        // Expand the smaller nonempty frontier (classic meet-in-middle).
        let expand_forward = match (fwd_queue.is_empty(), rev_queue.is_empty()) {
            (false, true) => true,
            (true, false) => false,
            _ => fwd_queue.len() <= rev_queue.len(),
        };
        if expand_forward {
            if let Some(node) = fwd_queue.pop_front() {
                stats.nodes_expanded += 1;
                for cert in graph.outgoing(&node, now) {
                    stats.edges_considered += 1;
                    let next = cert.delegation().object().clone();
                    if rev_visited.contains(&next) {
                        stats.found = true;
                        return stats;
                    }
                    if fwd_visited.insert(next.clone()) {
                        fwd_queue.push_back(next);
                    }
                }
            }
        } else if let Some(node) = rev_queue.pop_front() {
            stats.nodes_expanded += 1;
            for cert in graph.incoming(&node, now) {
                stats.edges_considered += 1;
                let next = cert.delegation().subject().clone();
                if fwd_visited.contains(&next) {
                    stats.found = true;
                    return stats;
                }
                if rev_visited.insert(next.clone()) {
                    rev_queue.push_back(next);
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{funnel, layered_dag, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_strategies_agree_on_reachability() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = WorkloadSpec {
            branching: 3,
            depth: 4,
            width: 9,
        };
        let w = layered_dag(&spec, &mut rng);
        let now = Timestamp(0);
        let f = forward_search(&w.graph, &w.subject, &w.object, now);
        let r = reverse_search(&w.graph, &w.subject, &w.object, now);
        let b = bidirectional_search(&w.graph, &w.subject, &w.object, now);
        assert!(f.found && r.found && b.found);

        let missing = Node::role(w.owner.role("not-a-role"));
        assert!(!forward_search(&w.graph, &w.subject, &missing, now).found);
        assert!(!reverse_search(&w.graph, &w.subject, &missing, now).found);
        assert!(!bidirectional_search(&w.graph, &w.subject, &missing, now).found);
    }

    #[test]
    fn bidirectional_matches_cheap_direction_on_funnels() {
        let now = Timestamp(0);
        // Wide forward side: forward search explodes, reverse is cheap,
        // bidirectional follows the small frontier and stays cheap.
        let mut rng = StdRng::seed_from_u64(2);
        let w = funnel(4, 4, true, &mut rng);
        let f = forward_search(&w.graph, &w.subject, &w.object, now);
        let r = reverse_search(&w.graph, &w.subject, &w.object, now);
        let b = bidirectional_search(&w.graph, &w.subject, &w.object, now);
        assert!(f.found && r.found && b.found);
        assert!(
            b.edges_considered < f.edges_considered / 4,
            "bi {} vs fwd {}",
            b.edges_considered,
            f.edges_considered
        );

        // Mirrored: wide reverse side.
        let w = funnel(4, 4, false, &mut rng);
        let f = forward_search(&w.graph, &w.subject, &w.object, now);
        let r2 = reverse_search(&w.graph, &w.subject, &w.object, now);
        let b = bidirectional_search(&w.graph, &w.subject, &w.object, now);
        assert!(f.found && r2.found && b.found);
        assert!(
            b.edges_considered < r2.edges_considered / 4,
            "bi {} vs rev {}",
            b.edges_considered,
            r2.edges_considered
        );
    }

    #[test]
    fn trivial_same_node_search() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = WorkloadSpec {
            branching: 2,
            depth: 2,
            width: 4,
        };
        let w = layered_dag(&spec, &mut rng);
        let s = bidirectional_search(&w.graph, &w.subject, &w.subject, Timestamp(0));
        assert!(s.found);
        assert_eq!(s.edges_considered, 0);
    }
}
