//! Synthetic delegation workload generators, shared by tests and the
//! benchmark harness.

#[cfg(test)]
use drbac_core::Timestamp;
use drbac_core::{LocalEntity, Node};
use drbac_crypto::SchnorrGroup;
use drbac_graph::DelegationGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters for [`layered_dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Out-degree of each node.
    pub branching: usize,
    /// Number of role layers between subject and object.
    pub depth: usize,
    /// Roles per layer.
    pub width: usize,
}

/// A generated workload: the graph plus the endpoints to query.
#[derive(Debug)]
pub struct Workload {
    /// The populated delegation graph.
    pub graph: DelegationGraph,
    /// The querying principal.
    pub subject: Node,
    /// The target role.
    pub object: Node,
    /// The single owning entity (all delegations self-certified, so the
    /// workload isolates search cost from support-proof cost).
    pub owner: LocalEntity,
}

/// Builds a layered delegation DAG: `subject → L0 → L1 → … → object`,
/// where each node delegates to `branching` random nodes in the next
/// layer. The path count grows as `branching^depth`, reproducing the
/// §4.2.3 path-explosion setting.
pub fn layered_dag<R: Rng + ?Sized>(spec: &WorkloadSpec, rng: &mut R) -> Workload {
    assert!(spec.width >= spec.branching, "width must be >= branching");
    let owner = LocalEntity::generate("Owner", SchnorrGroup::test_256(), rng);
    let user = LocalEntity::generate("User", SchnorrGroup::test_256(), rng);
    let subject = Node::entity(&user);
    let object = Node::role(owner.role("target"));

    let mut graph = DelegationGraph::new();
    let layers: Vec<Vec<Node>> = (0..spec.depth)
        .map(|layer| {
            (0..spec.width)
                .map(|i| Node::role(owner.role(&format!("l{layer}-n{i}"))))
                .collect()
        })
        .collect();

    let connect = |graph: &mut DelegationGraph, from: &Node, targets: &[Node], rng: &mut R| {
        let mut picks: Vec<&Node> = targets.iter().collect();
        picks.shuffle(rng);
        for to in picks.into_iter().take(spec.branching) {
            graph.insert(
                owner
                    .delegate(from.clone(), to.clone())
                    .sign(&owner)
                    .expect("self-certified delegation signs"),
            );
        }
    };

    if let Some(first) = layers.first() {
        connect(&mut graph, &subject, first, rng);
    }
    for window in layers.windows(2) {
        for from in &window[0] {
            connect(&mut graph, from, &window[1], rng);
        }
    }
    if let Some(last) = layers.last() {
        for from in last {
            graph.insert(
                owner
                    .delegate(from.clone(), object.clone())
                    .sign(&owner)
                    .expect("signs"),
            );
        }
    } else {
        graph.insert(
            owner
                .delegate(subject.clone(), object.clone())
                .sign(&owner)
                .expect("signs"),
        );
    }

    Workload {
        graph,
        subject,
        object,
        owner,
    }
}

/// Builds a "funnel": one real chain of length `depth + 1` from subject
/// to object, decorated so that the wide side has out-degree `branching`
/// everywhere (a `branching`-ary decoy tree) while the narrow side has
/// in-degree 1 along the chain.
///
/// With `narrow_reverse = true`, decoys fan out *forward*: a
/// subject-towards-object search must explore `O(branching^depth)` decoy
/// edges, while an object-towards-subject search walks the in-degree-1
/// chain in `depth + 1` edges. Bidirectional search expands the smaller
/// frontier and therefore matches the cheap direction *without knowing in
/// advance which direction is cheap* — the §4.2.3 claim.
/// `narrow_reverse = false` mirrors the topology.
pub fn funnel<R: Rng + ?Sized>(
    branching: usize,
    depth: usize,
    narrow_reverse: bool,
    rng: &mut R,
) -> Workload {
    assert!(branching >= 2 && depth >= 1);
    let owner = LocalEntity::generate("Owner", SchnorrGroup::test_256(), rng);
    let user = LocalEntity::generate("User", SchnorrGroup::test_256(), rng);
    let subject = Node::entity(&user);
    let object = Node::role(owner.role("target"));
    let mut graph = DelegationGraph::new();
    let _ = rng; // topology is deterministic; rng only seeds the entities

    // The real chain subject → p0 → … → p(depth-1) → object.
    let chain_nodes: Vec<Node> = (0..depth)
        .map(|i| Node::role(owner.role(&format!("p{i}"))))
        .collect();
    let mut prev = subject.clone();
    for node in &chain_nodes {
        graph.insert(
            owner
                .delegate(prev.clone(), node.clone())
                .sign(&owner)
                .expect("signs"),
        );
        prev = node.clone();
    }
    graph.insert(
        owner
            .delegate(prev, object.clone())
            .sign(&owner)
            .expect("signs"),
    );

    // Decoy tree: every chain node sprouts branching−1 extra children,
    // each the root of a (branching)-ary decoy subtree, in the wide
    // direction. Each anchor gets its own decoy budget so truncation
    // cannot starve the anchors nearest one endpoint.
    let per_anchor_cap = 1500usize;
    let mut decoy_id = 0usize;
    let mut spawn = |graph: &mut DelegationGraph, anchor: &Node, forward: bool| {
        let budget_end = decoy_id + per_anchor_cap;
        let mut frontier = vec![anchor.clone()];
        for _ in 0..depth {
            let mut next = Vec::new();
            for from in &frontier {
                let fanout = if from == anchor {
                    branching - 1
                } else {
                    branching
                };
                for _ in 0..fanout {
                    if decoy_id >= budget_end {
                        return;
                    }
                    let d = Node::role(owner.role(&format!("d{decoy_id}")));
                    decoy_id += 1;
                    let cert = if forward {
                        owner.delegate(from.clone(), d.clone())
                    } else {
                        owner.delegate(d.clone(), from.clone())
                    };
                    graph.insert(cert.sign(&owner).expect("signs"));
                    next.push(d);
                }
            }
            frontier = next;
        }
    };
    // Forward decoys can anchor on the (entity) subject; backward decoys
    // must anchor on role-like nodes only (edges cannot point INTO a bare
    // entity).
    let mut anchors = Vec::new();
    if narrow_reverse {
        anchors.push(subject.clone());
        anchors.extend(chain_nodes.iter().cloned());
    } else {
        anchors.extend(chain_nodes.iter().cloned());
        anchors.push(object.clone());
    }
    for anchor in &anchors {
        // narrow_reverse: decoys point forward (wide forward search);
        // otherwise decoys point backward (wide reverse search).
        spawn(&mut graph, anchor, narrow_reverse);
    }

    Workload {
        graph,
        subject,
        object,
        owner,
    }
}

/// Populates a graph with `n` random role-to-role delegations among
/// `roles` role names (wallet-scale benchmarks).
pub fn random_mesh<R: Rng + ?Sized>(n: usize, roles: usize, rng: &mut R) -> Workload {
    assert!(roles >= 2);
    let owner = LocalEntity::generate("Owner", SchnorrGroup::test_256(), rng);
    let user = LocalEntity::generate("User", SchnorrGroup::test_256(), rng);
    let subject = Node::entity(&user);
    let nodes: Vec<Node> = (0..roles)
        .map(|i| Node::role(owner.role(&format!("m{i}"))))
        .collect();
    let object = nodes[roles - 1].clone();
    let mut graph = DelegationGraph::new();
    graph.insert(
        owner
            .delegate(subject.clone(), nodes[0].clone())
            .sign(&owner)
            .expect("signs"),
    );
    for serial in 0..n {
        let a = rng.gen_range(0..roles);
        let mut b = rng.gen_range(0..roles);
        if a == b {
            b = (b + 1) % roles;
        }
        graph.insert(
            owner
                .delegate(nodes[a].clone(), nodes[b].clone())
                .serial(serial as u64)
                .sign(&owner)
                .expect("signs"),
        );
    }
    Workload {
        graph,
        subject,
        object,
        owner,
    }
}

/// A straight chain of `len` delegations from subject to object
/// (validation-cost benchmarks).
pub fn chain<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Workload {
    assert!(len >= 1);
    let owner = LocalEntity::generate("Owner", SchnorrGroup::test_256(), rng);
    let user = LocalEntity::generate("User", SchnorrGroup::test_256(), rng);
    let subject = Node::entity(&user);
    let mut graph = DelegationGraph::new();
    let mut prev = subject.clone();
    for i in 0..len - 1 {
        let next = Node::role(owner.role(&format!("c{i}")));
        graph.insert(
            owner
                .delegate(prev.clone(), next.clone())
                .sign(&owner)
                .expect("signs"),
        );
        prev = next;
    }
    let object = Node::role(owner.role("target"));
    graph.insert(
        owner
            .delegate(prev, object.clone())
            .sign(&owner)
            .expect("signs"),
    );
    Workload {
        graph,
        subject,
        object,
        owner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_graph::SearchOptions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layered_dag_connects_subject_to_object() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = WorkloadSpec {
            branching: 2,
            depth: 3,
            width: 4,
        };
        let w = layered_dag(&spec, &mut rng);
        let (proof, _) =
            w.graph
                .direct_query(&w.subject, &w.object, &SearchOptions::at(Timestamp(0)));
        let proof = proof.expect("connected");
        assert_eq!(proof.chain_len(), spec.depth + 1);
        // Edge count: branching + depth-1 layers * width * branching + width.
        let expected = spec.branching + (spec.depth - 1) * spec.width * spec.branching + spec.width;
        assert_eq!(w.graph.len(), expected);
    }

    #[test]
    fn chain_has_exact_length() {
        let mut rng = StdRng::seed_from_u64(8);
        let w = chain(5, &mut rng);
        let (proof, _) =
            w.graph
                .direct_query(&w.subject, &w.object, &SearchOptions::at(Timestamp(0)));
        assert_eq!(proof.unwrap().chain_len(), 5);
        assert_eq!(w.graph.len(), 5);
    }

    #[test]
    fn random_mesh_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = random_mesh(100, 20, &mut rng);
        // +1 for the subject's entry edge; serials make collisions unique.
        assert_eq!(w.graph.len(), 101);
    }

    #[test]
    fn funnel_connects_in_both_orientations() {
        let mut rng = StdRng::seed_from_u64(10);
        for narrow_reverse in [true, false] {
            let w = funnel(3, 3, narrow_reverse, &mut rng);
            let (proof, _) =
                w.graph
                    .direct_query(&w.subject, &w.object, &SearchOptions::at(Timestamp(0)));
            assert_eq!(proof.expect("real chain exists").chain_len(), 4);
        }
    }
}
