//! The phantom-role encoding of third-party delegation (paper §3.1.3 and
//! §6).
//!
//! "In both SDSI/SPKI and RT0, the only way to allow a third party T to
//! delegate a privilege P controlled by entity O is to introduce a
//! phantom role representing P into T's namespace." This module builds
//! both encodings concretely so the `separability` bench can count the
//! roles and delegations each needs as the number of roles and
//! administrators grows.

use drbac_core::{LocalEntity, Node, SignedDelegation, ValidationError};

/// Size accounting for one encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodingCost {
    /// Role names created across all namespaces (namespace pollution).
    pub roles_created: usize,
    /// Delegations that must be issued and maintained before any user is
    /// enrolled.
    pub setup_delegations: usize,
    /// Delegations per user enrollment.
    pub per_user_delegations: usize,
}

/// The credentials produced by an encoding build.
#[derive(Debug)]
pub struct Encoding {
    /// Cost counters.
    pub cost: EncodingCost,
    /// The setup credentials themselves.
    pub setup: Vec<SignedDelegation>,
}

/// dRBAC's native encoding: the owner groups the `k` roles' assignment
/// rights under one administrative role and delegates that role to each
/// of the `m` administrators (third-party delegation does the rest).
///
/// Setup: `k` assignment delegations `[O.admin → O.r_i'] O` plus `m`
/// delegations `[T_j → O.admin] O`. No roles enter the administrators'
/// namespaces. Each enrollment is then a single third-party delegation
/// `[user → O.r_i] T_j`.
///
/// # Errors
///
/// Propagates signing failures (none in practice for well-formed input).
pub fn drbac_encoding(
    owner: &LocalEntity,
    admins: &[LocalEntity],
    role_names: &[String],
) -> Result<Encoding, ValidationError> {
    let admin_role = owner.role("admin");
    let mut setup = Vec::new();
    for name in role_names {
        let role = owner.role(name);
        setup.push(
            owner
                .delegate(Node::role(admin_role.clone()), Node::role_admin(role))
                .sign(owner)?,
        );
    }
    for admin in admins {
        setup.push(
            owner
                .delegate(Node::entity(admin), Node::role(admin_role.clone()))
                .sign(owner)?,
        );
    }
    Ok(Encoding {
        cost: EncodingCost {
            // Only the owner's namespace grows: k roles + 1 admin role.
            roles_created: role_names.len() + 1,
            setup_delegations: setup.len(),
            per_user_delegations: 1,
        },
        setup,
    })
}

/// The phantom-role encoding: every administrator `T_j` must mint a local
/// phantom role `T_j.r_i` for every delegable role `r_i`, and the owner
/// must link each phantom into its real role (`[T_j.r_i → O.r_i] O`).
///
/// Setup: `k` owner roles plus `k·m` phantom roles and `k·m` linking
/// delegations. Each enrollment is one self-certified delegation into the
/// phantom role.
///
/// # Errors
///
/// Propagates signing failures.
pub fn phantom_encoding(
    owner: &LocalEntity,
    admins: &[LocalEntity],
    role_names: &[String],
) -> Result<Encoding, ValidationError> {
    let mut setup = Vec::new();
    let mut phantom_roles = 0usize;
    for admin in admins {
        for name in role_names {
            let phantom = admin.role(&format!("phantom-{name}"));
            phantom_roles += 1;
            // Owner links the phantom to the real role (self-certified in
            // the owner's namespace, so no support machinery is needed —
            // that's the SPKI/RT0 workaround).
            setup.push(
                owner
                    .delegate(Node::role(phantom), Node::role(owner.role(name)))
                    .sign(owner)?,
            );
        }
    }
    Ok(Encoding {
        cost: EncodingCost {
            roles_created: role_names.len() + phantom_roles,
            setup_delegations: setup.len(),
            per_user_delegations: 1,
        },
        setup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world(admins: usize) -> (LocalEntity, Vec<LocalEntity>) {
        let mut rng = StdRng::seed_from_u64(111);
        let g = SchnorrGroup::test_256();
        let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
        let admins = (0..admins)
            .map(|i| LocalEntity::generate(format!("T{i}"), g.clone(), &mut rng))
            .collect();
        (owner, admins)
    }

    fn roles(k: usize) -> Vec<String> {
        (0..k).map(|i| format!("r{i}")).collect()
    }

    #[test]
    fn drbac_setup_is_k_plus_m() {
        let (owner, admins) = world(4);
        let enc = drbac_encoding(&owner, &admins, &roles(6)).unwrap();
        assert_eq!(enc.cost.setup_delegations, 6 + 4);
        assert_eq!(enc.cost.roles_created, 6 + 1);
        assert_eq!(enc.setup.len(), 10);
    }

    #[test]
    fn phantom_setup_is_k_times_m() {
        let (owner, admins) = world(4);
        let enc = phantom_encoding(&owner, &admins, &roles(6)).unwrap();
        assert_eq!(enc.cost.setup_delegations, 24);
        assert_eq!(enc.cost.roles_created, 6 + 24);
    }

    #[test]
    fn drbac_encoding_actually_authorizes_enrollment() {
        use drbac_core::{ProofValidator, Timestamp, ValidationContext};
        use drbac_graph::{DelegationGraph, SearchOptions};

        let (owner, admins) = world(2);
        let mut rng = StdRng::seed_from_u64(5);
        let user = LocalEntity::generate("User", SchnorrGroup::test_256(), &mut rng);
        let enc = drbac_encoding(&owner, &admins, &roles(3)).unwrap();

        let mut graph = DelegationGraph::new();
        for cert in enc.setup {
            graph.insert(cert);
        }
        // Admin 0 enrolls the user into owner's r1 via third-party
        // delegation — the support chain is already in the graph.
        let cert = admins[0]
            .delegate(Node::entity(&user), Node::role(owner.role("r1")))
            .sign(&admins[0])
            .unwrap();
        graph.insert(cert);

        let (proof, _) = graph.direct_query(
            &Node::entity(&user),
            &Node::role(owner.role("r1")),
            &SearchOptions::at(Timestamp(0)),
        );
        let proof = proof.expect("third-party enrollment authorized");
        ProofValidator::new(ValidationContext::at(Timestamp(0)))
            .validate(&proof)
            .unwrap();
    }

    #[test]
    fn phantom_encoding_authorizes_via_local_role() {
        use drbac_core::{ProofValidator, Timestamp, ValidationContext};
        use drbac_graph::{DelegationGraph, SearchOptions};

        let (owner, admins) = world(2);
        let mut rng = StdRng::seed_from_u64(6);
        let user = LocalEntity::generate("User", SchnorrGroup::test_256(), &mut rng);
        let enc = phantom_encoding(&owner, &admins, &roles(3)).unwrap();

        let mut graph = DelegationGraph::new();
        for cert in enc.setup {
            graph.insert(cert);
        }
        // Enrollment: admin self-certifies the user into its phantom role.
        let cert = admins[0]
            .delegate(
                Node::entity(&user),
                Node::role(admins[0].role("phantom-r1")),
            )
            .sign(&admins[0])
            .unwrap();
        graph.insert(cert);

        let (proof, _) = graph.direct_query(
            &Node::entity(&user),
            &Node::role(owner.role("r1")),
            &SearchOptions::at(Timestamp(0)),
        );
        let proof = proof.expect("phantom chain authorizes");
        assert_eq!(proof.chain_len(), 2, "user -> phantom -> real role");
        ProofValidator::new(ValidationContext::at(Timestamp(0)))
            .validate(&proof)
            .unwrap();
    }

    #[test]
    fn costs_diverge_with_scale() {
        let (owner, admins) = world(8);
        let k = 10;
        let d = drbac_encoding(&owner, &admins, &roles(k)).unwrap().cost;
        let p = phantom_encoding(&owner, &admins, &roles(k)).unwrap().cost;
        assert!(d.setup_delegations < p.setup_delegations);
        assert!(d.roles_created < p.roles_created);
    }
}
