//! Primality testing and random number generation.
//!
//! Used by `drbac-crypto` to validate the hard-coded Schnorr group
//! parameters and to generate fresh (small, test-sized) groups.

use rand::Rng;

use crate::BigUint;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: &[u64] = &[
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Uniformly random [`BigUint`] in `[0, bound)`.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_biguint_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bits();
    let limbs = bits.div_ceil(64);
    let top_mask = if bits.is_multiple_of(64) {
        u64::MAX
    } else {
        (1u64 << (bits % 64)) - 1
    };
    // Rejection sampling; expected < 2 iterations.
    loop {
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        if let Some(top) = v.last_mut() {
            *top &= top_mask;
        }
        let candidate = BigUint::from_limbs(v);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Miller–Rabin probabilistic primality test with `rounds` random witnesses
/// (plus deterministic trial division by small primes).
///
/// A composite passes with probability at most 4^-rounds; `rounds = 32` is
/// overwhelming for the sizes used here.
///
/// # Example
///
/// ```
/// use drbac_bignum::{is_probable_prime, BigUint};
/// let mut rng = rand::thread_rng();
/// assert!(is_probable_prime(&BigUint::from(65537u64), 16, &mut rng));
/// assert!(!is_probable_prime(&BigUint::from(65536u64), 16, &mut rng));
/// ```
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: u32, rng: &mut R) -> bool {
    if n < &BigUint::from(2u64) {
        return false;
    }
    for &p in SMALL_PRIMES {
        let p_big = BigUint::from(p);
        if n == &p_big {
            return true;
        }
        if n.rem_ref(&p_big).is_zero() {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    let s = {
        let mut s = 0usize;
        while !n_minus_1.bit(s) {
            s += 1;
        }
        s
    };
    let d = n_minus_1.shr_bits(s);

    let two = BigUint::from(2u64);
    let n_minus_2 = n - &two;
    'witness: for _ in 0..rounds {
        // a in [2, n-2]
        let a = &random_biguint_below(rng, &(&n_minus_2 - &one)) + &two;
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.modpow(&two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    loop {
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        // Force exact bit length and oddness.
        let top_bit = (bits - 1) % 64;
        let last = limbs - 1;
        v[last] &= if top_bit == 63 {
            u64::MAX
        } else {
            (1u64 << (top_bit + 1)) - 1
        };
        v[last] |= 1u64 << top_bit;
        v[0] |= 1;
        let candidate = BigUint::from_limbs(v);
        if is_probable_prime(&candidate, 32, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_primes_and_composites() {
        let mut rng = StdRng::seed_from_u64(7);
        let primes = [2u64, 3, 5, 97, 65537, (1 << 61) - 1];
        for p in primes {
            assert!(
                is_probable_prime(&BigUint::from(p), 32, &mut rng),
                "{p} is prime"
            );
        }
        let composites = [0u64, 1, 4, 100, 65535, 561 /* Carmichael */, 6601];
        for c in composites {
            assert!(
                !is_probable_prime(&BigUint::from(c), 32, &mut rng),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn large_known_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let mut rng = StdRng::seed_from_u64(7);
        let p = BigUint::from_hex("7fffffffffffffffffffffffffffffff").unwrap();
        assert!(is_probable_prime(&p, 16, &mut rng));
        let q = &p - &BigUint::from(2u64);
        assert!(!is_probable_prime(&q, 16, &mut rng));
    }

    #[test]
    fn random_below_stays_below() {
        let mut rng = StdRng::seed_from_u64(42);
        let bound = BigUint::from_hex("1000000000000000000000001").unwrap();
        for _ in 0..200 {
            assert!(random_biguint_below(&mut rng, &bound) < bound);
        }
        // Tiny bound: only 0 possible.
        assert!(random_biguint_below(&mut rng, &BigUint::one()).is_zero());
    }

    #[test]
    fn random_prime_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(13);
        for bits in [8usize, 16, 32, 64, 96] {
            let p = random_prime(&mut rng, bits);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, 16, &mut rng));
        }
    }
}
