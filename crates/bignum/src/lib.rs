#![warn(missing_docs)]

//! Arbitrary-precision unsigned integer arithmetic for the dRBAC workspace.
//!
//! The dRBAC paper assumes a PKI: every entity *is* a public key, and every
//! delegation is a signed certificate. This workspace implements that PKI
//! from scratch (see `drbac-crypto`), and this crate provides the number
//! theory it stands on: an [`BigUint`] type with schoolbook and
//! Montgomery-accelerated modular arithmetic, plus Miller–Rabin primality
//! testing for validating group parameters.
//!
//! The implementation favours clarity and reviewability over raw speed, but
//! is fast enough that a 2048-bit Schnorr signature verifies in a few
//! milliseconds, which the benchmark suite exercises.
//!
//! # Example
//!
//! ```
//! use drbac_bignum::BigUint;
//!
//! let p = BigUint::from_hex("ffffffffffffffc5").unwrap(); // largest 64-bit prime
//! let g = BigUint::from(3u64);
//! let x = BigUint::from(0x1234_5678u64);
//! let y = g.modpow(&x, &p);
//! assert_eq!(y, BigUint::from_hex("279e5f229f3e9f0f").unwrap());
//! ```

mod arith;
mod biguint;
mod modular;
mod prime;

pub use biguint::{BigUint, ParseBigUintError};
pub use modular::MontgomeryCtx;
pub use prime::{is_probable_prime, random_biguint_below, random_prime};
