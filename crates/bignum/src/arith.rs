//! Core arithmetic on [`BigUint`]: addition, subtraction, multiplication,
//! shifts, and division (Knuth Algorithm D).

use std::ops::{Add, Mul, Rem, Shl, Shr, Sub};

use crate::BigUint;

impl BigUint {
    /// `self + other`.
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.len() >= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut limbs = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let a = long.limbs[i] as u128;
            let b = *short.limbs.get(i).unwrap_or(&0) as u128;
            let sum = a + b + carry as u128;
            limbs.push(sum as u64);
            carry = (sum >> 64) as u64;
        }
        if carry != 0 {
            limbs.push(carry);
        }
        BigUint::from_limbs(limbs)
    }

    /// `self - other`, or `None` if the result would be negative.
    ///
    /// ```
    /// # use drbac_bignum::BigUint;
    /// let a = BigUint::from(5u64);
    /// let b = BigUint::from(7u64);
    /// assert_eq!(b.checked_sub(&a), Some(BigUint::from(2u64)));
    /// assert_eq!(a.checked_sub(&b), None);
    /// ```
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.len());
        let mut borrow = 0i128;
        for i in 0..self.len() {
            let a = self.limbs[i] as i128;
            let b = *other.limbs.get(i).unwrap_or(&0) as i128;
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(diff as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(limbs))
    }

    /// `self * other`: schoolbook below [`Self::KARATSUBA_THRESHOLD`]
    /// limbs, Karatsuba above.
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.len().min(other.len()) >= Self::KARATSUBA_THRESHOLD {
            self.mul_karatsuba(other)
        } else {
            self.mul_schoolbook(other)
        }
    }

    /// Operand size (in limbs) above which [`BigUint::mul_karatsuba`]
    /// beats the schoolbook product (measured by the `bignum_ablation`
    /// bench).
    pub const KARATSUBA_THRESHOLD: usize = 24;

    /// `self * other` by the O(n²) schoolbook method. Exposed for the
    /// ablation benchmarks; [`BigUint::mul_ref`] picks automatically.
    pub fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u64; self.len() + other.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + limbs[i + j] as u128 + carry as u128;
                limbs[i + j] = t as u64;
                carry = (t >> 64) as u64;
            }
            limbs[i + other.len()] = carry;
        }
        BigUint::from_limbs(limbs)
    }

    /// `self * other` by Karatsuba's O(n^1.585) split:
    /// `(a1·B + a0)(b1·B + b0) = z2·B² + (z1 − z2 − z0)·B + z0` with three
    /// recursive half-size products. Exposed for the ablation benchmarks.
    pub fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let n = self.len().max(other.len());
        if self.len().min(other.len()) < Self::KARATSUBA_THRESHOLD {
            return self.mul_schoolbook(other);
        }
        let half = n / 2;
        let (a0, a1) = self.split_at_limb(half);
        let (b0, b1) = other.split_at_limb(half);

        let z0 = a0.mul_ref(&b0);
        let z2 = a1.mul_ref(&b1);
        let z1 = (&a0 + &a1).mul_ref(&(&b0 + &b1));
        // middle = z1 - z2 - z0 (non-negative by construction)
        let middle = (&z1 - &z2)
            .checked_sub(&z0)
            .expect("karatsuba middle term is non-negative");

        let mut acc = z2.shl_bits(half * 128);
        acc = &acc + &middle.shl_bits(half * 64);
        &acc + &z0
    }

    /// Splits into (low `at` limbs, the rest).
    fn split_at_limb(&self, at: usize) -> (BigUint, BigUint) {
        if at >= self.len() {
            return (self.clone(), BigUint::zero());
        }
        let low = BigUint::from_limbs(self.limbs[..at].to_vec());
        let high = BigUint::from_limbs(self.limbs[at..].to_vec());
        (low, high)
    }

    /// `self * m` for a single limb.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        let mut limbs = Vec::with_capacity(self.len() + 1);
        let mut carry = 0u64;
        for &a in &self.limbs {
            let t = a as u128 * m as u128 + carry as u128;
            limbs.push(t as u64);
            carry = (t >> 64) as u64;
        }
        if carry != 0 {
            limbs.push(carry);
        }
        BigUint::from_limbs(limbs)
    }

    /// `(self / d, self % d)` for a single limb divisor.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn divrem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u64; self.len()];
        let mut rem = 0u64;
        for i in (0..self.len()).rev() {
            let cur = ((rem as u128) << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = (cur % d as u128) as u64;
        }
        (BigUint::from_limbs(q), rem)
    }

    /// Left shift by `n` bits.
    pub fn shl_bits(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Right shift by `n` bits.
    pub fn shr_bits(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                limbs.push(lo | hi);
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// `(self / divisor, self % divisor)` via Knuth Algorithm D.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.len() == 1 {
            let (q, r) = self.divrem_u64(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }

        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl_bits(shift);
        let v = divisor.shl_bits(shift);
        let n = v.len();
        let m = u.len() - n;

        let mut un: Vec<u64> = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_second = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate quotient digit.
            let numerator = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = numerator / v_top as u128;
            let mut rhat = numerator % v_top as u128;
            while qhat >= 1u128 << 64
                || qhat * v_second as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply and subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = un[j + i] as i128 - (p as u64) as i128 - borrow;
                if sub < 0 {
                    un[j + i] = (sub + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    un[j + i] = sub as u64;
                    borrow = 0;
                }
            }
            let sub = un[j + n] as i128 - carry as i128 - borrow;
            if sub < 0 {
                // qhat was one too large: add back.
                un[j + n] = (sub + (1i128 << 64)) as u64;
                qhat -= 1;
                let mut carry2 = 0u128;
                for i in 0..n {
                    let t = un[j + i] as u128 + vn[i] as u128 + carry2;
                    un[j + i] = t as u64;
                    carry2 = t >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry2 as u64);
            } else {
                un[j + n] = sub as u64;
            }
            q[j] = qhat as u64;
        }

        let quotient = BigUint::from_limbs(q);
        let remainder = BigUint::from_limbs(un[..n].to_vec()).shr_bits(shift);
        (quotient, remainder)
    }

    /// `self % modulus`.
    pub fn rem_ref(&self, modulus: &BigUint) -> BigUint {
        self.divrem(modulus).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $imp:ident, $out:ty) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = $out;
            fn $method(self, rhs: &BigUint) -> $out {
                self.$imp(rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = $out;
            fn $method(self, rhs: BigUint) -> $out {
                (&self).$imp(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = $out;
            fn $method(self, rhs: &BigUint) -> $out {
                (&self).$imp(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = $out;
            fn $method(self, rhs: BigUint) -> $out {
                self.$imp(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref, BigUint);
forward_binop!(Mul, mul, mul_ref, BigUint);
forward_binop!(Rem, rem, rem_ref, BigUint);

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Sub<BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, n: usize) -> BigUint {
        self.shl_bits(n)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, n: usize) -> BigUint {
        self.shr_bits(n)
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;
    use proptest::prelude::*;

    fn big(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn add_with_carry_chain() {
        let a = big("ffffffffffffffffffffffffffffffff");
        let one = BigUint::one();
        assert_eq!(&a + &one, big("100000000000000000000000000000000"));
    }

    #[test]
    fn sub_borrow_chain() {
        let a = big("100000000000000000000000000000000");
        let one = BigUint::one();
        assert_eq!(&a - &one, big("ffffffffffffffffffffffffffffffff"));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::from(2u64);
    }

    #[test]
    fn mul_known_values() {
        let a = big("ffffffffffffffff");
        assert_eq!(&a * &a, big("fffffffffffffffe0000000000000001"));
        assert_eq!(&a * &BigUint::zero(), BigUint::zero());
        assert_eq!(&a * &BigUint::one(), a);
    }

    #[test]
    fn shifts() {
        let a = big("1");
        assert_eq!(
            a.shl_bits(130).to_hex(),
            "400000000000000000000000000000000"
        );
        assert_eq!(a.shl_bits(130).shr_bits(130), a);
        assert_eq!(a.shr_bits(1), BigUint::zero());
        assert_eq!(big("ff00").shr_bits(8), big("ff"));
    }

    #[test]
    fn divrem_small_divisor() {
        let a: BigUint = "123456789012345678901234567890".parse().unwrap();
        let (q, r) = a.divrem_u64(1_000_000_007);
        assert_eq!(&q.mul_u64(1_000_000_007) + &BigUint::from(r), a);
    }

    #[test]
    fn divrem_multi_limb() {
        let a = big("123456789abcdef0123456789abcdef0123456789abcdef");
        let d = big("fedcba9876543210fedcba98");
        let (q, r) = a.divrem(&d);
        assert!(r < d);
        assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn divrem_requires_add_back_case() {
        // Constructed to trigger the rare "add back" branch of Algorithm D:
        // u = 2^128 - 1, v = 2^64 + 3.
        let u = big("ffffffffffffffffffffffffffffffff");
        let v = big("10000000000000003");
        let (q, r) = u.divrem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().divrem(&BigUint::zero());
    }

    fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
        prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(BigUint::from_limbs)
    }

    proptest! {
        #[test]
        fn prop_add_sub_round_trip(a in arb_biguint(6), b in arb_biguint(6)) {
            let sum = &a + &b;
            prop_assert_eq!(&sum - &b, a.clone());
            prop_assert_eq!(&sum - &a, b);
        }

        #[test]
        fn prop_mul_commutative(a in arb_biguint(4), b in arb_biguint(4)) {
            prop_assert_eq!(&a * &b, &b * &a);
        }

        #[test]
        fn prop_karatsuba_matches_schoolbook(
            a in arb_biguint(80),
            b in arb_biguint(80),
        ) {
            prop_assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
        }

        #[test]
        fn prop_modpow_naive_matches_montgomery(
            a in arb_biguint(3),
            e in 0u64..500,
            mut m in arb_biguint(2),
        ) {
            m.limbs.push(7);
            if m.is_even() { m = &m + &BigUint::one(); }
            let e = BigUint::from(e);
            prop_assert_eq!(a.modpow_naive(&e, &m), a.modpow(&e, &m));
        }

        #[test]
        fn prop_divrem_invariant(a in arb_biguint(8), b in arb_biguint(4)) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.divrem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(&(&q * &b) + &r, a);
        }

        #[test]
        fn prop_distributive(a in arb_biguint(3), b in arb_biguint(3), c in arb_biguint(3)) {
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }

        #[test]
        fn prop_shift_is_mul_by_power_of_two(a in arb_biguint(4), n in 0usize..200) {
            let shifted = a.shl_bits(n);
            let pow = BigUint::one().shl_bits(n);
            prop_assert_eq!(shifted, &a * &pow);
        }

        #[test]
        fn prop_bytes_round_trip(a in arb_biguint(6)) {
            prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
        }

        #[test]
        fn prop_decimal_round_trip(a in arb_biguint(4)) {
            prop_assert_eq!(a.to_string().parse::<BigUint>().unwrap(), a);
        }
    }
}
