//! The [`BigUint`] type: representation, construction, conversion, and
//! formatting. Arithmetic lives in [`crate::arith`] and [`crate::modular`].

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with no trailing zero limbs
/// (canonical form); zero is the empty limb vector. All public operations
/// preserve canonical form.
///
/// # Example
///
/// ```
/// use drbac_bignum::BigUint;
///
/// let a = BigUint::from(10u64);
/// let b = BigUint::from(32u64);
/// assert_eq!((&a * &b).to_string(), "320");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

/// Error returned when parsing a [`BigUint`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    pub(crate) offending: char,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid digit {:?} in big integer literal",
            self.offending
        )
    }
}

impl std::error::Error for ParseBigUintError {}

impl BigUint {
    /// The value 0.
    ///
    /// ```
    /// # use drbac_bignum::BigUint;
    /// assert!(BigUint::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even. Zero is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for the value 0).
    ///
    /// ```
    /// # use drbac_bignum::BigUint;
    /// assert_eq!(BigUint::from(255u64).bits(), 8);
    /// assert_eq!(BigUint::from(256u64).bits(), 9);
    /// ```
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        match self.limbs.get(limb) {
            None => false,
            Some(&l) => (l >> (i % 64)) & 1 == 1,
        }
    }

    /// Number of limbs in the canonical representation.
    pub(crate) fn len(&self) -> usize {
        self.limbs.len()
    }

    /// Constructs from little-endian limbs, dropping trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrow the little-endian limbs (no trailing zeros).
    pub fn as_limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Constructs from big-endian bytes.
    ///
    /// ```
    /// # use drbac_bignum::BigUint;
    /// assert_eq!(BigUint::from_bytes_be(&[0x01, 0x00]), BigUint::from(256u64));
    /// ```
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Big-endian byte representation with no leading zero bytes
    /// (empty for the value 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = bytes.iter().take_while(|&&b| b == 0).count();
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        if out == [0] {
            out.clear();
        }
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if any character is not a hex digit.
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        let mut limbs: Vec<u64> = Vec::with_capacity(s.len() / 16 + 1);
        let digits: Vec<u8> = s
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '_')
            .map(|c| {
                c.to_digit(16)
                    .map(|d| d as u8)
                    .ok_or(ParseBigUintError { offending: c })
            })
            .collect::<Result<_, _>>()?;
        for chunk in digits.rchunks(16) {
            let mut limb = 0u64;
            for &d in chunk {
                limb = (limb << 4) | d as u64;
            }
            limbs.push(limb);
        }
        Ok(Self::from_limbs(limbs))
    }

    /// Lowercase hexadecimal representation, `"0"` for zero.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Overwrites the limbs with zeros and truncates (best-effort
    /// scrubbing of secret material; note that `Clone` copies and moves
    /// may leave other instances in memory).
    pub fn scrub(&mut self) {
        for limb in &mut self.limbs {
            // Volatile write so the zeroing is not optimized away.
            unsafe { std::ptr::write_volatile(limb, 0) };
        }
        self.limbs.clear();
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_limbs(vec![v])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        Self::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    /// Decimal representation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits: Vec<String> = Vec::new();
        let mut n = self.clone();
        while !n.is_zero() {
            let (q, r) = n.divrem_u64(CHUNK);
            digits.push(r.to_string());
            n = q;
        }
        let mut out = String::new();
        for (i, d) in digits.iter().rev().enumerate() {
            if i == 0 {
                out.push_str(d);
            } else {
                out.push_str(&format!("{:0>19}", d));
            }
        }
        f.write_str(&out)
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    /// Parses a decimal string.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut acc = BigUint::zero();
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or(ParseBigUintError { offending: c })?;
            acc = acc.mul_u64(10);
            acc = &acc + &BigUint::from(d as u64);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_canonical_empty() {
        assert_eq!(BigUint::zero().as_limbs(), &[] as &[u64]);
        assert_eq!(BigUint::from(0u64).as_limbs(), &[] as &[u64]);
        assert_eq!(BigUint::from_limbs(vec![0, 0, 0]), BigUint::zero());
    }

    #[test]
    fn bits_and_bit_access() {
        let n = BigUint::from_hex("8000000000000000").unwrap();
        assert_eq!(n.bits(), 64);
        assert!(n.bit(63));
        assert!(!n.bit(62));
        assert!(!n.bit(64));
        assert_eq!(BigUint::zero().bits(), 0);
    }

    #[test]
    fn hex_round_trip() {
        let cases = [
            "0",
            "1",
            "ff",
            "deadbeefcafebabe",
            "123456789abcdef0123456789abcdef",
        ];
        for c in cases {
            let n = BigUint::from_hex(c).unwrap();
            assert_eq!(n.to_hex(), c);
        }
        // Leading zeros normalize away.
        assert_eq!(BigUint::from_hex("000ff").unwrap().to_hex(), "ff");
        assert_eq!(BigUint::from_hex("0000").unwrap().to_hex(), "0");
    }

    #[test]
    fn hex_rejects_bad_digit() {
        let err = BigUint::from_hex("12g4").unwrap_err();
        assert_eq!(err.offending, 'g');
    }

    #[test]
    fn bytes_round_trip() {
        let n = BigUint::from_hex("0102030405060708090a0b").unwrap();
        let bytes = n.to_bytes_be();
        assert_eq!(bytes, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        assert_eq!(BigUint::from_bytes_be(&bytes), n);
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 5]), BigUint::from(5u64));
    }

    #[test]
    fn decimal_display_and_parse() {
        let n: BigUint = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
        assert_eq!(
            n,
            BigUint::from_hex("100000000000000000000000000000000").unwrap()
        );
        assert_eq!(n.to_string(), "340282366920938463463374607431768211456");
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!("12345".parse::<BigUint>().unwrap().to_u64(), Some(12345));
    }

    #[test]
    fn ordering() {
        let a = BigUint::from(5u64);
        let b = BigUint::from_hex("10000000000000000").unwrap(); // 2^64
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn u128_conversion() {
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        let n = BigUint::from(v);
        assert_eq!(n.to_hex(), format!("{v:x}"));
    }
}
