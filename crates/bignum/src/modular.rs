//! Modular arithmetic: Montgomery multiplication, modular exponentiation,
//! and modular inverse.
//!
//! Schnorr key generation, signing, and verification in `drbac-crypto` all
//! reduce to [`BigUint::modpow`], so this module is the performance-critical
//! core of the whole PKI substrate. Exponentiation over an odd modulus uses
//! a [`MontgomeryCtx`] with a 4-bit fixed window; even moduli fall back to
//! square-and-multiply with explicit division.

use crate::BigUint;

/// Precomputed state for Montgomery arithmetic modulo an odd modulus.
///
/// Construct once per modulus and reuse across many multiplications or
/// exponentiations (as signature verification does).
///
/// # Example
///
/// ```
/// use drbac_bignum::{BigUint, MontgomeryCtx};
///
/// let p = BigUint::from(101u64);
/// let ctx = MontgomeryCtx::new(&p).unwrap();
/// let a = BigUint::from(77u64);
/// let b = BigUint::from(55u64);
/// assert_eq!(ctx.mul(&a, &b), BigUint::from(77u64 * 55 % 101));
/// ```
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    n: BigUint,
    /// Number of limbs in the modulus; R = 2^(64 * k).
    k: usize,
    /// -n^{-1} mod 2^64.
    n0inv: u64,
    /// R mod n (the Montgomery form of 1).
    r_mod_n: BigUint,
    /// R^2 mod n, used to convert into Montgomery form.
    r2_mod_n: BigUint,
}

impl MontgomeryCtx {
    /// Creates a context for the given modulus.
    ///
    /// Returns `None` if the modulus is zero or even (Montgomery reduction
    /// requires an odd modulus).
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_zero() || modulus.is_even() {
            return None;
        }
        let k = modulus.as_limbs().len();
        let n0 = modulus.as_limbs()[0];
        // Newton iteration: inv = inv * (2 - n0 * inv), doubling precision.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();

        let r = BigUint::one().shl_bits(64 * k);
        let r_mod_n = r.rem_ref(modulus);
        let r2_mod_n = (&r_mod_n * &r_mod_n).rem_ref(modulus);
        Some(MontgomeryCtx {
            n: modulus.clone(),
            k,
            n0inv,
            r_mod_n,
            r2_mod_n,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Montgomery multiplication: computes `a * b * R^-1 mod n` on
    /// Montgomery-form inputs (CIOS method).
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k;
        let n = self.n.as_limbs();
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = if i < a.len() { a[i] } else { 0 };
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let bj = if j < b.len() { b[j] } else { 0 };
                let sum = t[j] as u128 + ai as u128 * bj as u128 + carry;
                t[j] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[k] as u128 + carry;
            t[k] = sum as u64;
            t[k + 1] = (sum >> 64) as u64;

            // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0inv);
            let sum = t[0] as u128 + m as u128 * n[0] as u128;
            let mut carry = sum >> 64;
            for j in 1..k {
                let sum = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j - 1] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[k] as u128 + carry;
            t[k - 1] = sum as u64;
            t[k] = t[k + 1] + (sum >> 64) as u64;
            t[k + 1] = 0;
        }
        t.truncate(k + 1);
        let mut result = BigUint::from_limbs(t);
        if result >= self.n {
            result = &result - &self.n;
        }
        let mut limbs = result.limbs;
        limbs.resize(k, 0);
        limbs
    }

    /// Converts `a` (reduced mod n) into Montgomery form.
    fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        self.mont_mul(a.as_limbs(), self.r2_mod_n.as_limbs())
    }

    /// Converts out of Montgomery form.
    fn mont_reduce_out(&self, a: &[u64]) -> BigUint {
        BigUint::from_limbs(self.mont_mul(a, &[1]))
    }

    /// Modular multiplication `a * b mod n` for ordinary (non-Montgomery)
    /// inputs. Inputs need not be reduced.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let a = a.rem_ref(&self.n);
        let b = b.rem_ref(&self.n);
        let am = self.to_mont(&a);
        let bm = self.to_mont(&b);
        self.mont_reduce_out(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` with a 4-bit fixed window.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem_ref(&self.n);
        }
        let base = base.rem_ref(&self.n);
        let base_m = self.to_mont(&base);

        // Precompute base^0 .. base^15 in Montgomery form.
        let mut one_m = self.r_mod_n.as_limbs().to_vec();
        one_m.resize(self.k, 0);
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(16);
        table.push(one_m);
        for i in 1..16 {
            table.push(self.mont_mul(&table[i - 1], &base_m));
        }

        let bits = exp.bits();
        let windows = bits.div_ceil(4);
        let mut acc: Option<Vec<u64>> = None;
        for w in (0..windows).rev() {
            if let Some(a) = acc.take() {
                let mut sq = a;
                for _ in 0..4 {
                    sq = self.mont_mul(&sq, &sq);
                }
                acc = Some(sq);
            }
            let mut digit = 0usize;
            for b in 0..4 {
                if exp.bit(w * 4 + b) {
                    digit |= 1 << b;
                }
            }
            match acc.take() {
                None => acc = Some(table[digit].clone()),
                Some(a) => acc = Some(self.mont_mul(&a, &table[digit])),
            }
        }
        self.mont_reduce_out(&acc.expect("exp is nonzero"))
    }
}

impl BigUint {
    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Uses Montgomery arithmetic for odd moduli and binary
    /// square-and-multiply with explicit reduction otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    ///
    /// ```
    /// # use drbac_bignum::BigUint;
    /// let m = BigUint::from(1000u64);
    /// assert_eq!(BigUint::from(7u64).modpow(&BigUint::from(3u64), &m), BigUint::from(343u64));
    /// ```
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if let Some(ctx) = MontgomeryCtx::new(modulus) {
            return ctx.modpow(self, exp);
        }
        self.modpow_naive(exp, modulus)
    }

    /// Binary square-and-multiply with explicit division-based reduction:
    /// the fallback for even moduli, exposed for the ablation benchmarks
    /// (Montgomery vs naive).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow_naive(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem_ref(modulus);
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = (&result * &base).rem_ref(modulus);
            }
            base = (&base * &base).rem_ref(modulus);
        }
        result
    }

    /// Multiplicative inverse of `self` modulo `modulus`, if it exists
    /// (i.e. `gcd(self, modulus) == 1`).
    ///
    /// ```
    /// # use drbac_bignum::BigUint;
    /// let p = BigUint::from(101u64);
    /// let inv = BigUint::from(7u64).modinv(&p).unwrap();
    /// assert_eq!((&inv * &BigUint::from(7u64)) % &p, BigUint::one());
    /// ```
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Extended Euclid tracking only the coefficient of `self`,
        // with (sign, magnitude) bookkeeping to stay unsigned.
        let mut r0 = modulus.clone();
        let mut r1 = self.rem_ref(modulus);
        let mut t0 = (false, BigUint::zero()); // coefficient of modulus
        let mut t1 = (true, BigUint::one()); // coefficient of self
        while !r1.is_zero() {
            let (q, r2) = r0.divrem(&r1);
            // t2 = t0 - q * t1
            let qt1 = &q * &t1.1;
            let t2 = match (t0.0, t1.0) {
                (s0, s1) if s0 == s1 => {
                    if t0.1 >= qt1 {
                        (s0, &t0.1 - &qt1)
                    } else {
                        (!s0, &qt1 - &t0.1)
                    }
                }
                (s0, _) => (s0, &t0.1 + &qt1),
            };
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None; // not coprime
        }
        let (positive, mag) = t0;
        let mag = mag.rem_ref(modulus);
        Some(if positive || mag.is_zero() {
            mag
        } else {
            modulus - &mag
        })
    }

    /// Greatest common divisor.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem_ref(&b);
            a = b;
            b = r;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn mont_ctx_rejects_even_and_zero() {
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::from(10u64)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::from(9u64)).is_some());
    }

    #[test]
    fn mont_mul_matches_naive() {
        let p = big("ffffffffffffffffffffffffffffff61"); // odd 128-bit
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let a = big("123456789abcdef0fedcba9876543210");
        let b = big("0f0e0d0c0b0a09080706050403020100");
        assert_eq!(ctx.mul(&a, &b), (&a * &b).rem_ref(&p));
    }

    #[test]
    fn modpow_fermat_little_theorem() {
        // p = 2^61 - 1 (Mersenne prime): a^(p-1) = 1 mod p.
        let p = BigUint::from((1u64 << 61) - 1);
        let a = BigUint::from(123456789u64);
        let exp = &p - &BigUint::one();
        assert_eq!(a.modpow(&exp, &p), BigUint::one());
    }

    #[test]
    fn modpow_edge_cases() {
        let m = BigUint::from(13u64);
        assert_eq!(
            BigUint::from(5u64).modpow(&BigUint::zero(), &m),
            BigUint::one()
        );
        assert_eq!(
            BigUint::zero().modpow(&BigUint::from(5u64), &m),
            BigUint::zero()
        );
        assert_eq!(
            BigUint::from(5u64).modpow(&BigUint::one(), &m),
            BigUint::from(5u64)
        );
        assert_eq!(
            BigUint::from(5u64).modpow(&BigUint::from(3u64), &BigUint::one()),
            BigUint::zero()
        );
    }

    #[test]
    fn modpow_even_modulus() {
        let m = BigUint::from(1000u64);
        assert_eq!(
            BigUint::from(7u64).modpow(&BigUint::from(13u64), &m),
            BigUint::from(7u64.pow(13) % 1000)
        );
    }

    #[test]
    fn modpow_large_known_vector() {
        // Computed independently: 3^(2^64) mod (2^127 - 1).
        let p = big("7fffffffffffffffffffffffffffffff");
        let e = big("10000000000000000");
        let got = BigUint::from(3u64).modpow(&e, &p);
        // Verify via Fermat: 3^(p-1) = 1, so 3^(2^64) has order dividing p-1.
        // Cross-check with square-and-multiply on the even-modulus path by
        // multiplying p by 2 and reducing.
        let doubled = BigUint::from(3u64).modpow(&e, &(&p * &BigUint::from(2u64)));
        assert_eq!(doubled.rem_ref(&p), got);
    }

    #[test]
    fn modinv_known_and_missing() {
        let p = BigUint::from(97u64);
        for a in 1u64..97 {
            let inv = BigUint::from(a).modinv(&p).unwrap();
            assert_eq!(
                (&inv * &BigUint::from(a)).rem_ref(&p),
                BigUint::one(),
                "a={a}"
            );
        }
        // 6 has no inverse mod 9.
        assert!(BigUint::from(6u64).modinv(&BigUint::from(9u64)).is_none());
        assert!(BigUint::from(3u64).modinv(&BigUint::one()).is_none());
    }

    #[test]
    fn gcd_known() {
        assert_eq!(
            BigUint::from(48u64).gcd(&BigUint::from(18u64)),
            BigUint::from(6u64)
        );
        assert_eq!(
            BigUint::from(17u64).gcd(&BigUint::from(31u64)),
            BigUint::one()
        );
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from(5u64)),
            BigUint::from(5u64)
        );
    }

    fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
        prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(BigUint::from_limbs)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_mont_mul_matches_naive(a in arb_biguint(4), b in arb_biguint(4), mut m in arb_biguint(3)) {
            m.limbs.push(1); // ensure nonzero and multi-limb-ish
            if m.is_even() { m = &m + &BigUint::one(); }
            let ctx = MontgomeryCtx::new(&m).unwrap();
            prop_assert_eq!(ctx.mul(&a, &b), (&a * &b).rem_ref(&m));
        }

        #[test]
        fn prop_modpow_multiplicative(a in arb_biguint(2), e1 in 0u64..64, e2 in 0u64..64, mut m in arb_biguint(2)) {
            m.limbs.push(3);
            if m.is_even() { m = &m + &BigUint::one(); }
            let pow1 = a.modpow(&BigUint::from(e1), &m);
            let pow2 = a.modpow(&BigUint::from(e2), &m);
            let sum = a.modpow(&BigUint::from(e1 + e2), &m);
            prop_assert_eq!((&pow1 * &pow2).rem_ref(&m), sum);
        }

        #[test]
        fn prop_modinv_is_inverse(a in arb_biguint(3), mut m in arb_biguint(2)) {
            m.limbs.push(5);
            if let Some(inv) = a.modinv(&m) {
                prop_assert_eq!((&inv * &a).rem_ref(&m), BigUint::one().rem_ref(&m));
                prop_assert!(inv < m);
            } else {
                prop_assert!(!a.gcd(&m).is_one() || m.is_one() || m.is_zero());
            }
        }
    }
}
