#![warn(missing_docs)]

//! The dRBAC delegation model (ICDCS 2002).
//!
//! This crate implements the paper's core constructs:
//!
//! * **Entities** ([`Entity`], [`EntityId`]) — PKI identities whose public
//!   keys define namespaces,
//! * **Roles** ([`Role`], [`RoleName`]) — names in an entity's namespace,
//!   including *right-of-assignment* roles (`R'`, [`Node::RoleAdmin`]) and
//!   *attribute-assignment* roles ([`Node::AttrAdmin`]),
//! * **Delegations** ([`Delegation`], [`SignedDelegation`]) — signed
//!   certificates `[Subject → Object] Issuer` in self-certified,
//!   third-party, and assignment forms, optionally carrying valued
//!   attribute clauses, discovery tags, and expiry,
//! * **Valued attributes** ([`AttrClause`], [`AttrOp`],
//!   [`AttrAccumulator`]) — monotone modulation of access levels along
//!   delegation chains,
//! * **Proofs** ([`Proof`], [`ProofStep`]) — DAGs of delegations with
//!   recursive support proofs, validated cryptographically and
//!   structurally,
//! * **Clocks** ([`SimClock`], [`Timestamp`]) — logical time for expiry,
//!   TTLs, and deterministic distributed tests.
//!
//! # Quickstart
//!
//! ```
//! use drbac_core::{LocalEntity, Node, SimClock};
//! use drbac_crypto::SchnorrGroup;
//! # use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let group = SchnorrGroup::test_256();
//! let big_isp = LocalEntity::generate("BigISP", group.clone(), &mut rng);
//! let maria = LocalEntity::generate("Maria", group, &mut rng);
//!
//! // Self-certified: [Maria -> BigISP.member] BigISP
//! let member = big_isp.role("member");
//! let cert = big_isp
//!     .delegate(Node::entity(&maria), Node::role(member))
//!     .sign(&big_isp)?;
//!
//! let clock = SimClock::new();
//! assert!(cert.verify(clock.now()).is_ok());
//! # Ok::<(), drbac_core::ValidationError>(())
//! ```

mod attr;
mod cert;
mod clock;
mod delegation;
mod entity;
mod error;
mod proof;
mod revocation;
mod role;
pub mod syntax;
mod tag;
mod wire;

pub use attr::{
    AttrAccumulator, AttrClause, AttrConstraint, AttrDeclaration, AttrName, AttrOp, AttrRef,
    AttrSummary, DeclarationSet, SignedAttrDeclaration,
};
pub use cert::{DelegationId, SignedDelegation};
pub use clock::{SimClock, Ticks, Timestamp};
pub use delegation::{Delegation, DelegationBuilder, DelegationKind};
pub use entity::{Entity, EntityId, LocalEntity};
pub use error::{ModelError, ValidationError};
pub use proof::{Proof, ProofStep, ProofValidator, ValidationContext};
pub use revocation::{RevocationNotice, SignedRevocation};
pub use role::{Role, RoleName};
pub use tag::{DiscoveryTag, ObjectFlag, SubjectFlag, WalletAddr};
pub use wire::{Decode, DecodeError, Encode, Reader, Writer};

/// Graph node / delegation endpoint: an entity, a role, a role's
/// right-of-assignment (`R'`), or an attribute's right-of-assignment.
///
/// The paper treats rights-of-assignment "as if they were just another
/// role"; modelling all four as one node type lets the delegation graph,
/// discovery, and proofs handle them uniformly.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Node {
    /// A principal or resource identified by its key fingerprint.
    Entity(EntityId),
    /// A plain role `E.name`.
    Role(Role),
    /// The right of assignment `E.name'` over a role.
    RoleAdmin(Role),
    /// The right to set a valued attribute (`[S → E.attr op=']`).
    AttrAdmin(AttrRef),
}

impl Node {
    /// Convenience constructor from anything entity-like.
    pub fn entity(e: impl AsEntityId) -> Node {
        Node::Entity(e.as_entity_id())
    }

    /// Convenience constructor for a plain role node.
    pub fn role(r: Role) -> Node {
        Node::Role(r)
    }

    /// Convenience constructor for a right-of-assignment node (`R'`).
    pub fn role_admin(r: Role) -> Node {
        Node::RoleAdmin(r)
    }

    /// Convenience constructor for an attribute-assignment node.
    pub fn attr_admin(a: AttrRef) -> Node {
        Node::AttrAdmin(a)
    }

    /// The entity whose namespace controls this node (the entity itself
    /// for [`Node::Entity`]).
    pub fn namespace(&self) -> EntityId {
        match self {
            Node::Entity(e) => *e,
            Node::Role(r) | Node::RoleAdmin(r) => r.entity(),
            Node::AttrAdmin(a) => a.entity(),
        }
    }

    /// `true` for the role-like nodes that may appear as a delegation
    /// object (everything but a bare entity).
    pub fn is_role_like(&self) -> bool {
        !matches!(self, Node::Entity(_))
    }

    /// `true` if this node is a right-of-assignment (role or attribute).
    pub fn is_admin(&self) -> bool {
        matches!(self, Node::RoleAdmin(_) | Node::AttrAdmin(_))
    }

    /// The `R'` node corresponding to a plain role node, if any.
    pub fn admin_of(&self) -> Option<Node> {
        match self {
            Node::Role(r) => Some(Node::RoleAdmin(r.clone())),
            _ => None,
        }
    }
}

impl std::fmt::Display for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Entity(e) => write!(f, "{e}"),
            Node::Role(r) => write!(f, "{r}"),
            Node::RoleAdmin(r) => write!(f, "{r}'"),
            Node::AttrAdmin(a) => write!(f, "{a}'"),
        }
    }
}

/// Types that can stand in for an entity identity.
pub trait AsEntityId {
    /// The canonical identity.
    fn as_entity_id(&self) -> EntityId;
}

impl AsEntityId for EntityId {
    fn as_entity_id(&self) -> EntityId {
        *self
    }
}

impl AsEntityId for &EntityId {
    fn as_entity_id(&self) -> EntityId {
        **self
    }
}

impl AsEntityId for &Entity {
    fn as_entity_id(&self) -> EntityId {
        self.id()
    }
}

impl AsEntityId for &LocalEntity {
    fn as_entity_id(&self) -> EntityId {
        self.id()
    }
}

#[cfg(test)]
mod node_tests {
    use super::*;
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn local(name: &str, seed: u64) -> LocalEntity {
        LocalEntity::generate(
            name,
            SchnorrGroup::test_256(),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn node_namespace_and_kind() {
        let a = local("A", 1);
        let role = a.role("admin");
        assert_eq!(Node::role(role.clone()).namespace(), a.id());
        assert_eq!(Node::entity(&a).namespace(), a.id());
        assert!(Node::role(role.clone()).is_role_like());
        assert!(!Node::entity(&a).is_role_like());
        assert!(Node::role_admin(role.clone()).is_admin());
        assert!(!Node::role(role.clone()).is_admin());
        assert_eq!(
            Node::role(role.clone()).admin_of(),
            Some(Node::role_admin(role))
        );
        assert_eq!(Node::entity(&a).admin_of(), None);
    }

    #[test]
    fn node_display_forms() {
        let a = local("A", 1);
        let role = a.role("ops");
        assert!(Node::role(role.clone()).to_string().ends_with(".ops"));
        assert!(Node::role_admin(role).to_string().ends_with(".ops'"));
    }
}
