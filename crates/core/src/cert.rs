//! Signed delegation certificates.

use std::fmt;
use std::sync::OnceLock;

use drbac_crypto::{sha256, PublicKey, Signature};
use serde::{Deserialize, Serialize};

use crate::clock::Timestamp;
use crate::delegation::Delegation;
use crate::entity::{EntityId, LocalEntity};
use crate::error::ValidationError;

/// Content-addressed identity of a delegation: the SHA-256 of its
/// canonical wire bytes. Two structurally identical delegations share an
/// id; reissues are distinguished by the serial field inside the body.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DelegationId(pub [u8; 32]);

impl DelegationId {
    /// Computes the id of a delegation body.
    pub fn of(delegation: &Delegation) -> Self {
        DelegationId(sha256(&delegation.wire_bytes()))
    }
}

impl fmt::Display for DelegationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for DelegationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DelegationId({self})")
    }
}

/// A delegation signed by its issuer: the credential that circulates
/// between wallets.
///
/// # Example
///
/// ```
/// use drbac_core::{LocalEntity, Node, Timestamp};
/// use drbac_crypto::SchnorrGroup;
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let a = LocalEntity::generate("A", SchnorrGroup::test_256(), &mut rng);
/// let b = LocalEntity::generate("B", SchnorrGroup::test_256(), &mut rng);
/// let cert = a.delegate(Node::entity(&b), Node::role(a.role("r"))).sign(&a)?;
/// assert!(cert.verify(Timestamp(0)).is_ok());
/// # Ok::<(), drbac_core::ValidationError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignedDelegation {
    delegation: Delegation,
    issuer_key: PublicKey,
    signature: Signature,
    /// Memoized content-addressed id. Computing a [`DelegationId`] means
    /// re-serializing the body and hashing it, and the graph search asks
    /// for the id of every edge it touches (revocation filtering), so the
    /// first computation is cached here. Not part of the wire form or of
    /// equality.
    #[serde(skip)]
    cached_id: OnceLock<DelegationId>,
    /// Digest of the full credential (body, key, signature) at the time a
    /// signature check last *succeeded*. Signature validity is immutable —
    /// only expiry is a function of `now` — so once a credential instance
    /// has verified, revalidating it (every cold proof query re-walks the
    /// same admitted certs) only needs to re-hash and compare. The digest
    /// keying means any mutation of body, key, or signature misses the
    /// memo and takes the full check; clones of a verified instance keep
    /// it. Not part of the wire form or of equality.
    #[serde(skip)]
    sig_ok_digest: OnceLock<[u8; 32]>,
}

impl PartialEq for SignedDelegation {
    fn eq(&self, other: &Self) -> bool {
        self.delegation == other.delegation
            && self.issuer_key == other.issuer_key
            && self.signature == other.signature
    }
}

impl SignedDelegation {
    /// Signs `delegation` with `issuer`'s key.
    ///
    /// # Errors
    ///
    /// [`ValidationError::WrongSigner`] if `issuer` is not the delegation's
    /// named issuer.
    pub fn sign(delegation: Delegation, issuer: &LocalEntity) -> Result<Self, ValidationError> {
        if issuer.id() != delegation.issuer() {
            return Err(ValidationError::WrongSigner {
                expected: delegation.issuer(),
                got: issuer.id(),
            });
        }
        let signature = issuer.sign_bytes(&delegation.wire_bytes());
        Ok(SignedDelegation {
            delegation,
            issuer_key: issuer.public_key().clone(),
            signature,
            cached_id: OnceLock::new(),
            sig_ok_digest: OnceLock::new(),
        })
    }

    /// The delegation body.
    pub fn delegation(&self) -> &Delegation {
        &self.delegation
    }

    /// The issuer's public key as attached to the credential.
    pub fn issuer_key(&self) -> &PublicKey {
        &self.issuer_key
    }

    /// The content-addressed id (memoized after the first call).
    pub fn id(&self) -> DelegationId {
        *self
            .cached_id
            .get_or_init(|| DelegationId::of(&self.delegation))
    }

    /// Serializes the full credential (body, issuer key, signature) into
    /// its canonical wire form, suitable for transmission or storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::wire::{Encode, Writer};
        let mut w = Writer::tagged(b"drbac-cert-v1");
        self.encode(&mut w);
        w.finish()
    }

    /// Deserializes a credential produced by [`SignedDelegation::to_bytes`].
    /// The result is structurally valid but **not yet verified** — call
    /// [`SignedDelegation::verify`] before trusting it.
    ///
    /// # Errors
    ///
    /// [`crate::wire::DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::wire::DecodeError> {
        use crate::wire::{Decode, Reader};
        let mut r = Reader::tagged(bytes, b"drbac-cert-v1")?;
        let cert = SignedDelegation::decode(&mut r)?;
        r.finish()?;
        Ok(cert)
    }

    /// Verifies the credential in isolation: the attached key matches the
    /// named issuer, the signature covers the canonical bytes, and the
    /// delegation has not expired at `now`. (Third-party *authority* is a
    /// proof-level property; see [`crate::ProofValidator`].)
    ///
    /// The signature check — the expensive part — is memoized per
    /// instance: once it has succeeded, later calls re-hash the
    /// credential and compare against the digest recorded at that
    /// success, falling back to the full group-exponentiation check on
    /// any mismatch. Expiry is re-evaluated against `now` on every call.
    ///
    /// # Errors
    ///
    /// [`ValidationError`] for the first failed check.
    pub fn verify(&self, now: Timestamp) -> Result<(), ValidationError> {
        let signer = EntityId(self.issuer_key.fingerprint());
        if signer != self.delegation.issuer() {
            return Err(ValidationError::WrongSigner {
                expected: self.delegation.issuer(),
                got: signer,
            });
        }
        let digest = sha256(&self.to_bytes());
        if self.sig_ok_digest.get() != Some(&digest) {
            if !self
                .issuer_key
                .verify(&self.delegation.wire_bytes(), &self.signature)
            {
                return Err(ValidationError::BadSignature);
            }
            let _ = self.sig_ok_digest.set(digest);
        }
        if let Some(at) = self.delegation.expires() {
            if now > at {
                return Err(ValidationError::Expired { at, now });
            }
        }
        Ok(())
    }
}

impl crate::wire::Encode for SignedDelegation {
    fn encode(&self, w: &mut crate::wire::Writer) {
        self.delegation.encode(w);
        self.issuer_key.encode(w);
        self.signature.encode(w);
    }
}

impl crate::wire::Decode for SignedDelegation {
    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::DecodeError> {
        let delegation = Delegation::decode(r)?;
        let issuer_key = PublicKey::decode(r)?;
        let signature = Signature::decode(r)?;
        Ok(SignedDelegation {
            delegation,
            issuer_key,
            signature,
            cached_id: OnceLock::new(),
            sig_ok_digest: OnceLock::new(),
        })
    }
}

impl fmt::Display for SignedDelegation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} #{}", self.delegation, self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Node;
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn local(name: &str, seed: u64) -> LocalEntity {
        LocalEntity::generate(
            name,
            SchnorrGroup::test_256(),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn sign_requires_matching_issuer() {
        let a = local("A", 1);
        let b = local("B", 2);
        let d = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .build();
        assert!(matches!(
            SignedDelegation::sign(d.clone(), &b),
            Err(ValidationError::WrongSigner { .. })
        ));
        assert!(SignedDelegation::sign(d, &a).is_ok());
    }

    #[test]
    fn verify_detects_tampering() {
        let a = local("A", 1);
        let b = local("B", 2);
        let cert = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        assert!(cert.verify(Timestamp(0)).is_ok());

        // Tamper with the body: signature no longer matches.
        let mut tampered = cert.clone();
        tampered.delegation.serial = 99;
        assert_eq!(
            tampered.verify(Timestamp(0)),
            Err(ValidationError::BadSignature)
        );

        // Swap in a different (valid) key: signer mismatch is caught first.
        let mut swapped = cert.clone();
        swapped.issuer_key = b.public_key().clone();
        assert!(matches!(
            swapped.verify(Timestamp(0)),
            Err(ValidationError::WrongSigner { .. })
        ));
    }

    #[test]
    fn verify_enforces_expiry() {
        let a = local("A", 1);
        let b = local("B", 2);
        let cert = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .expires(Timestamp(100))
            .sign(&a)
            .unwrap();
        assert!(cert.verify(Timestamp(100)).is_ok());
        assert!(matches!(
            cert.verify(Timestamp(101)),
            Err(ValidationError::Expired { .. })
        ));
    }

    #[test]
    fn verify_memoizes_signature_success_across_clones() {
        let a = local("A", 1);
        let b = local("B", 2);
        let cert = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        assert!(cert.sig_ok_digest.get().is_none());
        assert!(cert.verify(Timestamp(0)).is_ok());
        assert!(cert.sig_ok_digest.get().is_some());

        // A clone of a verified instance keeps the memo and still verifies.
        let cloned = cert.clone();
        assert!(cloned.sig_ok_digest.get().is_some());
        assert!(cloned.verify(Timestamp(0)).is_ok());

        // Tampering with a *verified* clone misses the digest and is
        // caught by the full signature check.
        let mut tampered = cert.clone();
        tampered.delegation.serial = 7;
        assert_eq!(
            tampered.verify(Timestamp(0)),
            Err(ValidationError::BadSignature)
        );

        // The wire round-trip drops the memo: a deserialized credential
        // is unverified until checked here.
        let rt = SignedDelegation::from_bytes(&cert.to_bytes()).unwrap();
        assert!(rt.sig_ok_digest.get().is_none());
        assert!(rt.verify(Timestamp(0)).is_ok());
    }

    #[test]
    fn id_is_content_addressed() {
        let a = local("A", 1);
        let b = local("B", 2);
        let c1 = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        let c2 = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        assert_eq!(c1.id(), c2.id());
        let c3 = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .serial(1)
            .sign(&a)
            .unwrap();
        assert_ne!(c1.id(), c3.id());
    }

    #[test]
    fn display_contains_id() {
        let a = local("A", 1);
        let b = local("B", 2);
        let cert = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        assert!(cert.to_string().contains('#'));
    }
}
