//! Entities: the PKI identities that own namespaces.

use std::fmt;
use std::sync::Arc;

use drbac_crypto::{KeyFingerprint, KeyPair, PublicKey, SchnorrGroup, Signature};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::role::{Role, RoleName};
use crate::{AttrName, AttrOp, AttrRef};

/// The identity of a dRBAC entity: the fingerprint of its public key.
///
/// dRBAC "does not distinguish between owners of resources ... and
/// principals attempting to access them. Both are termed entities and
/// represented by a unique PKI public identity."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub KeyFingerprint);

impl EntityId {
    /// The underlying fingerprint.
    pub fn fingerprint(&self) -> KeyFingerprint {
        self.0
    }
}

impl fmt::Display for EntityId {
    /// Short hex prefix of the fingerprint.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An entity as others see it: a human-readable name plus a public key.
///
/// The name is advisory (display only); the key fingerprint is the
/// authoritative identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    name: String,
    public_key: PublicKey,
}

impl Entity {
    /// Creates an entity descriptor.
    pub fn new(name: impl Into<String>, public_key: PublicKey) -> Self {
        Entity {
            name: name.into(),
            public_key,
        }
    }

    /// The advisory display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.public_key
    }

    /// The authoritative identity.
    pub fn id(&self) -> EntityId {
        EntityId(self.public_key.fingerprint())
    }

    /// A role in this entity's namespace.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid [`RoleName`].
    pub fn role(&self, name: &str) -> Role {
        Role::new(self.id(), RoleName::new(name).expect("valid role name"))
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<{}>", self.name, self.id())
    }
}

/// An entity *we* control: descriptor plus signing key.
///
/// This is the handle used by issuers in tests, examples, and
/// applications. Cheap to clone (shared key material).
///
/// # Example
///
/// ```
/// use drbac_core::LocalEntity;
/// use drbac_crypto::SchnorrGroup;
/// # use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let isp = LocalEntity::generate("BigISP", SchnorrGroup::test_256(), &mut rng);
/// let member = isp.role("member");
/// assert_eq!(member.entity(), isp.id());
/// ```
#[derive(Debug, Clone)]
pub struct LocalEntity {
    entity: Entity,
    keys: Arc<KeyPair>,
}

impl LocalEntity {
    /// Generates a fresh entity with a new key pair.
    pub fn generate<R: Rng + ?Sized>(
        name: impl Into<String>,
        group: SchnorrGroup,
        rng: &mut R,
    ) -> Self {
        let keys = KeyPair::generate(group, rng);
        LocalEntity {
            entity: Entity::new(name, keys.public_key().clone()),
            keys: Arc::new(keys),
        }
    }

    /// Builds a local entity from an existing key pair (reproducible
    /// fixtures).
    pub fn from_keypair(name: impl Into<String>, keys: KeyPair) -> Self {
        LocalEntity {
            entity: Entity::new(name, keys.public_key().clone()),
            keys: Arc::new(keys),
        }
    }

    /// The public descriptor.
    pub fn entity(&self) -> &Entity {
        &self.entity
    }

    /// The advisory display name.
    pub fn name(&self) -> &str {
        self.entity.name()
    }

    /// The authoritative identity.
    pub fn id(&self) -> EntityId {
        self.entity.id()
    }

    /// The public key.
    pub fn public_key(&self) -> &PublicKey {
        self.entity.public_key()
    }

    /// A role in this entity's namespace.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid [`RoleName`].
    pub fn role(&self, name: &str) -> Role {
        self.entity.role(name)
    }

    /// An attribute reference in this entity's namespace.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid [`AttrName`].
    pub fn attr(&self, name: &str, op: AttrOp) -> AttrRef {
        AttrRef::new(
            self.id(),
            AttrName::new(name).expect("valid attribute name"),
            op,
        )
    }

    /// Signs arbitrary bytes with this entity's key.
    pub fn sign_bytes(&self, msg: &[u8]) -> Signature {
        self.keys.sign(msg)
    }

    /// Diffie–Hellman shared secret with a peer (see
    /// [`KeyPair::shared_secret`]).
    pub fn shared_secret(&self, peer: &PublicKey) -> Option<[u8; 32]> {
        self.keys.shared_secret(peer)
    }
}

impl fmt::Display for LocalEntity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.entity.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn local(name: &str, seed: u64) -> LocalEntity {
        LocalEntity::generate(
            name,
            SchnorrGroup::test_256(),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn identity_is_key_fingerprint() {
        let e = local("A", 1);
        assert_eq!(e.id().fingerprint(), e.public_key().fingerprint());
        assert_eq!(e.entity().id(), e.id());
    }

    #[test]
    fn same_name_different_keys_are_different_entities() {
        let a = local("Corp", 1);
        let b = local("Corp", 2);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn signed_bytes_verify_with_public_key() {
        let e = local("A", 1);
        let sig = e.sign_bytes(b"hello");
        assert!(e.public_key().verify(b"hello", &sig));
    }

    #[test]
    fn display_contains_name_and_fingerprint() {
        let e = local("AirNet", 3);
        let s = e.to_string();
        assert!(s.starts_with("AirNet<"));
        assert!(s.ends_with('>'));
    }
}
