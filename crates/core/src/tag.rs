//! Discovery tags (paper §4.2.1): annotations that direct cross-wallet
//! credential discovery.
//!
//! Every subject, object, and issuer of a delegation may carry a tag
//! naming the entity's (or role's) *home wallet*, the dRBAC role that
//! authorizes that wallet, a TTL for cached validity, and two ternary
//! search flags:
//!
//! * subject flag `-` / `s` (*store with subject*) / `S` (*search from
//!   subject*): `s` and `S` require delegations with this subject to be
//!   stored in its home wallet; `S` additionally requires every object
//!   role this subject can be granted to be of type `S` as well, which is
//!   what makes forward (subject→object) search complete.
//! * object flag `-` / `o` / `O`, symmetrically, for reverse search.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::clock::Ticks;
use crate::role::Role;

/// Logical address of a wallet host (e.g. `wallet.bigISP.com`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WalletAddr(String);

impl WalletAddr {
    /// Wraps an address string.
    pub fn new(addr: impl Into<String>) -> Self {
        WalletAddr(addr.into())
    }

    /// The address string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for WalletAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for WalletAddr {
    fn from(s: &str) -> Self {
        WalletAddr::new(s)
    }
}

/// Ternary subject-discovery flag (`-`, `s`, `S`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SubjectFlag {
    /// No storage requirement.
    #[default]
    None,
    /// *store with subject*: delegations with this subject are stored in
    /// its home wallet.
    Store,
    /// *search from subject*: as `Store`, and every object role this
    /// subject can be granted must also be `Search`.
    Search,
}

/// Ternary object-discovery flag (`-`, `o`, `O`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ObjectFlag {
    /// No storage requirement.
    #[default]
    None,
    /// *store with object*: delegations naming this object are stored in
    /// the object's home wallet.
    Store,
    /// *search from object*: as `Store`, and every subject this object can
    /// be granted to must also be `Search`.
    Search,
}

impl fmt::Display for SubjectFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SubjectFlag::None => "-",
            SubjectFlag::Store => "s",
            SubjectFlag::Search => "S",
        })
    }
}

impl fmt::Display for ObjectFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ObjectFlag::None => "-",
            ObjectFlag::Store => "o",
            ObjectFlag::Search => "O",
        })
    }
}

/// A discovery tag, e.g.
/// `bigISP.member<wallet.bigISP.com:bigISP.wallet:30:So>`.
///
/// # Example
///
/// ```
/// use drbac_core::{DiscoveryTag, ObjectFlag, SubjectFlag, Ticks};
///
/// let tag = DiscoveryTag::new("wallet.bigisp.example")
///     .with_ttl(Ticks(30))
///     .with_subject_flag(SubjectFlag::Search)
///     .with_object_flag(ObjectFlag::Store);
/// assert_eq!(tag.ttl(), Ticks(30));
/// assert!(tag.to_string().contains(":So"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DiscoveryTag {
    home: WalletAddr,
    auth_role: Option<Role>,
    ttl: Ticks,
    subject_flag: SubjectFlag,
    object_flag: ObjectFlag,
}

impl DiscoveryTag {
    /// A tag pointing at `home` with zero TTL and no search flags.
    pub fn new(home: impl Into<WalletAddr>) -> Self {
        DiscoveryTag {
            home: home.into(),
            auth_role: None,
            ttl: Ticks(0),
            subject_flag: SubjectFlag::None,
            object_flag: ObjectFlag::None,
        }
    }

    /// Sets the role that authorizes the home wallet (and its proxies).
    pub fn with_auth_role(mut self, role: Role) -> Self {
        self.auth_role = Some(role);
        self
    }

    /// Sets the cached-validity TTL. Zero means "does not require
    /// monitoring".
    pub fn with_ttl(mut self, ttl: Ticks) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the subject search flag.
    pub fn with_subject_flag(mut self, flag: SubjectFlag) -> Self {
        self.subject_flag = flag;
        self
    }

    /// Sets the object search flag.
    pub fn with_object_flag(mut self, flag: ObjectFlag) -> Self {
        self.object_flag = flag;
        self
    }

    /// The home wallet address.
    pub fn home(&self) -> &WalletAddr {
        &self.home
    }

    /// The wallet-authorizing role, if any.
    pub fn auth_role(&self) -> Option<&Role> {
        self.auth_role.as_ref()
    }

    /// The cached-validity TTL.
    pub fn ttl(&self) -> Ticks {
        self.ttl
    }

    /// The subject search flag.
    pub fn subject_flag(&self) -> SubjectFlag {
        self.subject_flag
    }

    /// The object search flag.
    pub fn object_flag(&self) -> ObjectFlag {
        self.object_flag
    }

    /// `true` if forward (subject→object) search from a node tagged like
    /// this is complete.
    pub fn searchable_from_subject(&self) -> bool {
        self.subject_flag == SubjectFlag::Search
    }

    /// `true` if reverse (object→subject) search is complete.
    pub fn searchable_from_object(&self) -> bool {
        self.object_flag == ObjectFlag::Search
    }
}

impl fmt::Display for DiscoveryTag {
    /// The paper's `<home:role:ttl:flags>` rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}:", self.home)?;
        match &self.auth_role {
            Some(r) => write!(f, "{r}")?,
            None => f.write_str("-")?,
        }
        write!(
            f,
            ":{}:{}{}>",
            self.ttl.0, self.subject_flag, self.object_flag
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntityId, RoleName};
    use drbac_crypto::KeyFingerprint;

    #[test]
    fn builder_sets_all_fields() {
        let role = Role::new(
            EntityId(KeyFingerprint([1; 32])),
            RoleName::new("wallet").unwrap(),
        );
        let tag = DiscoveryTag::new("w.example")
            .with_auth_role(role.clone())
            .with_ttl(Ticks(30))
            .with_subject_flag(SubjectFlag::Search)
            .with_object_flag(ObjectFlag::Store);
        assert_eq!(tag.home().as_str(), "w.example");
        assert_eq!(tag.auth_role(), Some(&role));
        assert_eq!(tag.ttl(), Ticks(30));
        assert!(tag.searchable_from_subject());
        assert!(!tag.searchable_from_object());
    }

    #[test]
    fn display_matches_paper_syntax() {
        let tag = DiscoveryTag::new("wallet.bigISP.com")
            .with_ttl(Ticks(30))
            .with_subject_flag(SubjectFlag::Search)
            .with_object_flag(ObjectFlag::Store);
        let s = tag.to_string();
        assert!(s.starts_with("<wallet.bigISP.com:"));
        assert!(s.ends_with(":30:So>"), "{s}");
    }

    #[test]
    fn wallet_addr_conversions_and_display() {
        let a: WalletAddr = "wallet.example".into();
        assert_eq!(a.as_str(), "wallet.example");
        assert_eq!(a.to_string(), "wallet.example");
        assert_eq!(WalletAddr::new(String::from("x")), WalletAddr::new("x"));
    }

    #[test]
    fn flag_displays_match_paper_glyphs() {
        assert_eq!(SubjectFlag::None.to_string(), "-");
        assert_eq!(SubjectFlag::Store.to_string(), "s");
        assert_eq!(SubjectFlag::Search.to_string(), "S");
        assert_eq!(ObjectFlag::None.to_string(), "-");
        assert_eq!(ObjectFlag::Store.to_string(), "o");
        assert_eq!(ObjectFlag::Search.to_string(), "O");
    }

    #[test]
    fn default_flags_are_none() {
        let tag = DiscoveryTag::new("w");
        assert_eq!(tag.subject_flag(), SubjectFlag::None);
        assert_eq!(tag.object_flag(), ObjectFlag::None);
        assert!(!tag.searchable_from_subject());
        assert!(!tag.searchable_from_object());
        assert!(tag.to_string().contains(":-:0:--"));
    }
}
