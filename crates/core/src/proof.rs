//! Proofs: delegation DAGs demonstrating `Subject ⇒ Object` (paper §2, §3).
//!
//! A [`Proof`] is a chain of [`ProofStep`]s from a subject node to an
//! object node. Every *third-party* step carries **support proofs**
//! demonstrating that its issuer holds the object's right-of-assignment
//! (and, for foreign attribute clauses, the attribute-assignment right).
//! Support proofs may themselves contain third-party delegations, so
//! validation is recursive with cycle detection and a depth limit.
//!
//! Validation is performed by a [`ProofValidator`] against a
//! [`ValidationContext`] (logical time, attribute declarations, revocation
//! set), and yields the [`AttrSummary`] of effective attribute values —
//! exactly what the AirNet server computes in the paper's §5 walkthrough.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::attr::{AttrAccumulator, AttrConstraint, AttrSummary, DeclarationSet};
use crate::cert::{DelegationId, SignedDelegation};
use crate::clock::Timestamp;
use crate::error::ValidationError;
use crate::Node;

/// One link in a proof chain: a credential plus the support proofs that
/// authorize it when it is third-party.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProofStep {
    cert: Arc<SignedDelegation>,
    supports: Vec<Proof>,
}

impl ProofStep {
    /// Wraps a credential with no supports.
    pub fn new(cert: impl Into<Arc<SignedDelegation>>) -> Self {
        ProofStep {
            cert: cert.into(),
            supports: Vec::new(),
        }
    }

    /// Attaches a support proof.
    pub fn with_support(mut self, support: Proof) -> Self {
        self.supports.push(support);
        self
    }

    /// The credential.
    pub fn cert(&self) -> &SignedDelegation {
        &self.cert
    }

    /// Shared handle to the credential.
    pub fn cert_arc(&self) -> Arc<SignedDelegation> {
        Arc::clone(&self.cert)
    }

    /// The attached support proofs.
    pub fn supports(&self) -> &[Proof] {
        &self.supports
    }
}

/// A proof that `subject ⇒ object`.
///
/// Construct with [`Proof::from_steps`] (which checks chain linkage) or
/// [`Proof::trivial`] for the reflexive `S ⇒ S` proof.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Proof {
    subject: Node,
    object: Node,
    steps: Vec<ProofStep>,
}

impl Proof {
    /// The reflexive proof `node ⇒ node` (no credentials needed).
    pub fn trivial(node: Node) -> Proof {
        Proof {
            subject: node.clone(),
            object: node,
            steps: Vec::new(),
        }
    }

    /// Builds a proof from a linked chain of steps.
    ///
    /// # Errors
    ///
    /// * [`ValidationError::EmptyProof`] for an empty step list,
    /// * [`ValidationError::BrokenChain`] if step `i`'s object is not step
    ///   `i + 1`'s subject.
    pub fn from_steps(steps: Vec<ProofStep>) -> Result<Proof, ValidationError> {
        let first = steps.first().ok_or(ValidationError::EmptyProof)?;
        let subject = first.cert().delegation().subject().clone();
        for (i, pair) in steps.windows(2).enumerate() {
            if pair[0].cert().delegation().object() != pair[1].cert().delegation().subject() {
                return Err(ValidationError::BrokenChain { position: i });
            }
        }
        let object = steps
            .last()
            .expect("nonempty")
            .cert()
            .delegation()
            .object()
            .clone();
        Ok(Proof {
            subject,
            object,
            steps,
        })
    }

    /// The proof's subject (chain start).
    pub fn subject(&self) -> &Node {
        &self.subject
    }

    /// The proof's object (chain end).
    pub fn object(&self) -> &Node {
        &self.object
    }

    /// The chain, subject first.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Number of delegations on the primary chain.
    pub fn chain_len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for the reflexive proof.
    pub fn is_trivial(&self) -> bool {
        self.steps.is_empty()
    }

    /// Concatenates `self` (`S ⇒ M`) with `next` (`M ⇒ O`) into `S ⇒ O`.
    ///
    /// # Errors
    ///
    /// [`ValidationError::BrokenChain`] if the endpoints do not meet.
    pub fn concat(mut self, next: Proof) -> Result<Proof, ValidationError> {
        if self.object != next.subject {
            return Err(ValidationError::BrokenChain {
                position: self.steps.len().saturating_sub(1),
            });
        }
        if self.is_trivial() {
            return Ok(next);
        }
        if next.is_trivial() {
            return Ok(self);
        }
        self.steps.extend(next.steps);
        self.object = next.object;
        Ok(self)
    }

    /// Accumulates the primary chain's attribute clauses from the object
    /// end toward the subject. Support chains authorize but do not
    /// modulate.
    pub fn accumulate(&self) -> AttrAccumulator {
        let mut acc = AttrAccumulator::new();
        for step in self.steps.iter().rev() {
            for clause in step.cert().delegation().clauses() {
                acc.absorb_clause(clause);
            }
        }
        acc
    }

    /// Every delegation id referenced by the proof, including support
    /// proofs, deduplicated — the set a proof monitor subscribes to.
    pub fn delegation_ids(&self) -> BTreeSet<DelegationId> {
        let mut out = BTreeSet::new();
        self.collect_ids(&mut out);
        out
    }

    fn collect_ids(&self, out: &mut BTreeSet<DelegationId>) {
        for step in &self.steps {
            out.insert(step.cert().id());
            for s in step.supports() {
                s.collect_ids(out);
            }
        }
    }

    /// `true` if every step's transitive-trust limit (if any) is
    /// respected: a step at chain position `i` (counted from the subject)
    /// is extended by `i` delegations, which must not exceed its
    /// `max_extension_depth`. Searches use this to prune chains the
    /// validator would reject.
    pub fn respects_extension_depths(&self) -> bool {
        self.steps.iter().enumerate().all(|(i, step)| {
            step.cert()
                .delegation()
                .max_extension_depth()
                .is_none_or(|limit| (i as u64) <= limit)
        })
    }

    /// Iterates over every credential in the proof (chain and supports).
    pub fn all_certs(&self) -> Vec<Arc<SignedDelegation>> {
        let mut out = Vec::new();
        self.collect_certs(&mut out);
        out
    }

    fn collect_certs(&self, out: &mut Vec<Arc<SignedDelegation>>) {
        for step in &self.steps {
            out.push(step.cert_arc());
            for s in step.supports() {
                s.collect_certs(out);
            }
        }
    }
}

impl crate::wire::Encode for ProofStep {
    fn encode(&self, w: &mut crate::wire::Writer) {
        self.cert.as_ref().encode(w);
        w.list(&self.supports);
    }
}

impl crate::wire::Decode for ProofStep {
    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::DecodeError> {
        let cert = SignedDelegation::decode(r)?;
        let supports: Vec<Proof> = r.list()?;
        Ok(ProofStep {
            cert: Arc::new(cert),
            supports,
        })
    }
}

impl crate::wire::Encode for Proof {
    fn encode(&self, w: &mut crate::wire::Writer) {
        self.subject.encode(w);
        self.object.encode(w);
        w.list(&self.steps);
    }
}

impl crate::wire::Decode for Proof {
    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::DecodeError> {
        use crate::wire::DecodeError;
        let subject = Node::decode(r)?;
        let object = Node::decode(r)?;
        let steps: Vec<ProofStep> = r.list()?;
        if steps.is_empty() {
            if subject != object {
                return Err(DecodeError::Invalid(
                    "empty proof with distinct endpoints".into(),
                ));
            }
            return Ok(Proof::trivial(subject));
        }
        let proof = Proof::from_steps(steps).map_err(|e| DecodeError::Invalid(e.to_string()))?;
        if proof.subject() != &subject || proof.object() != &object {
            return Err(DecodeError::Invalid(
                "declared endpoints do not match chain".into(),
            ));
        }
        Ok(proof)
    }
}

impl Proof {
    /// Serializes the whole proof DAG (chain, supports, credentials) into
    /// its canonical wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::wire::{Encode, Writer};
        let mut w = Writer::tagged(b"drbac-proof-v1");
        self.encode(&mut w);
        w.finish()
    }

    /// Deserializes a proof produced by [`Proof::to_bytes`]. Chain
    /// linkage is re-checked; cryptographic validation still requires a
    /// [`ProofValidator`].
    ///
    /// # Errors
    ///
    /// [`crate::wire::DecodeError`] on malformed or unlinked input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::wire::DecodeError> {
        use crate::wire::{Decode, Reader};
        let mut r = Reader::tagged(bytes, b"drbac-proof-v1")?;
        let proof = Proof::decode(&mut r)?;
        r.finish()?;
        Ok(proof)
    }
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} => {} ({} steps)",
            self.subject,
            self.object,
            self.steps.len()
        )
    }
}

/// Everything a verifier knows when validating a proof.
#[derive(Debug, Clone, Default)]
pub struct ValidationContext {
    /// Logical time of validation (expiry checks).
    pub now: Timestamp,
    /// Verified attribute declarations (base values).
    pub declarations: DeclarationSet,
    /// Ids of delegations known to be revoked.
    pub revoked: BTreeSet<DelegationId>,
    /// Support-recursion depth limit (default 8).
    pub max_support_depth: usize,
}

impl ValidationContext {
    /// A context at logical time `now` with defaults elsewhere.
    pub fn at(now: Timestamp) -> Self {
        ValidationContext {
            now,
            declarations: DeclarationSet::new(),
            revoked: BTreeSet::new(),
            max_support_depth: 8,
        }
    }

    /// Replaces the declaration set.
    pub fn with_declarations(mut self, declarations: DeclarationSet) -> Self {
        self.declarations = declarations;
        self
    }

    /// Marks a delegation as revoked.
    pub fn with_revoked(mut self, id: DelegationId) -> Self {
        self.revoked.insert(id);
        self
    }

    /// Sets the support-recursion depth limit.
    pub fn with_max_support_depth(mut self, depth: usize) -> Self {
        self.max_support_depth = depth;
        self
    }
}

/// Validates proofs against a [`ValidationContext`].
///
/// # Example
///
/// The paper's Table 1 example — delegations (1)–(3) proving
/// `Maria ⇒ BigISP.member`:
///
/// ```
/// use drbac_core::{LocalEntity, Node, Proof, ProofStep, ProofValidator, ValidationContext, Timestamp};
/// use drbac_crypto::SchnorrGroup;
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// # let g = SchnorrGroup::test_256();
/// let big_isp = LocalEntity::generate("BigISP", g.clone(), &mut rng);
/// let mark = LocalEntity::generate("Mark", g.clone(), &mut rng);
/// let maria = LocalEntity::generate("Maria", g, &mut rng);
/// let member = big_isp.role("member");
/// let member_services = big_isp.role("memberServices");
///
/// // (1) [Mark -> BigISP.memberServices] BigISP
/// let d1 = big_isp.delegate(Node::entity(&mark), Node::role(member_services.clone())).sign(&big_isp)?;
/// // (2) [BigISP.memberServices -> BigISP.member'] BigISP
/// let d2 = big_isp.delegate(Node::role(member_services), Node::role_admin(member.clone())).sign(&big_isp)?;
/// // (3) [Maria -> BigISP.member] Mark  — third-party, supported by (1)+(2)
/// let support = Proof::from_steps(vec![ProofStep::new(d1), ProofStep::new(d2)])?;
/// let d3 = mark.delegate(Node::entity(&maria), Node::role(member)).sign(&mark)?;
/// let proof = Proof::from_steps(vec![ProofStep::new(d3).with_support(support)])?;
///
/// let validator = ProofValidator::new(ValidationContext::at(Timestamp(0)));
/// assert!(validator.validate(&proof).is_ok());
/// # Ok::<(), drbac_core::ValidationError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProofValidator {
    ctx: ValidationContext,
    /// Digests of proofs already validated by this validator (shared
    /// across clones). Feeds `drbac.core.proof.validate.revalidation.count`
    /// — each hit is work a validation cache would have saved.
    seen: Arc<std::sync::Mutex<std::collections::HashSet<u64>>>,
}

impl ProofValidator {
    /// Creates a validator.
    pub fn new(ctx: ValidationContext) -> Self {
        ProofValidator {
            ctx,
            seen: Arc::default(),
        }
    }

    /// Records `proof` as validated; true iff it was seen before (a
    /// cache-able revalidation).
    fn note_revalidation(&self, proof: &Proof) -> bool {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for id in proof.delegation_ids() {
            id.hash(&mut hasher);
        }
        proof.chain_len().hash(&mut hasher);
        let digest = hasher.finish();
        let mut seen = self.seen.lock().unwrap_or_else(|e| e.into_inner());
        if seen.len() >= 8192 {
            seen.clear();
        }
        !seen.insert(digest)
    }

    /// The context being validated against.
    pub fn context(&self) -> &ValidationContext {
        &self.ctx
    }

    /// Fully validates `proof` and returns the effective attribute
    /// summary.
    ///
    /// Checks, per step: chain linkage, signature, signer identity,
    /// expiry, revocation, and third-party authority (recursively through
    /// support proofs with cycle and depth protection).
    ///
    /// # Errors
    ///
    /// The first [`ValidationError`] encountered.
    pub fn validate(&self, proof: &Proof) -> Result<AttrSummary, ValidationError> {
        let _span = drbac_obs::span!(
            "drbac.core.proof.validate",
            "chain_len" => proof.chain_len(),
        );
        let _timer = drbac_obs::static_histogram!("drbac.core.proof.validate.ns").start_timer();
        drbac_obs::static_counter!("drbac.core.proof.validate.count").inc();
        if self.note_revalidation(proof) {
            drbac_obs::static_counter!("drbac.core.proof.validate.revalidation.count").inc();
        }
        let mut stack = Vec::new();
        if let Err(err) = self.validate_inner(proof, 0, &mut stack) {
            drbac_obs::static_counter!("drbac.core.proof.validate.error.count").inc();
            drbac_obs::event!(
                "drbac.core.proof.validate.rejected",
                "error" => err.to_string(),
            );
            return Err(err);
        }
        Ok(AttrSummary::build(
            &proof.accumulate(),
            &self.ctx.declarations,
        ))
    }

    /// Validates `proof` and additionally checks it answers the direct
    /// query `subject ⇒ object` under `constraints`.
    ///
    /// # Errors
    ///
    /// [`ValidationError::TargetMismatch`] if endpoints differ;
    /// [`ValidationError::ConstraintViolated`] if any constraint fails;
    /// otherwise as [`ProofValidator::validate`].
    pub fn validate_query(
        &self,
        proof: &Proof,
        subject: &Node,
        object: &Node,
        constraints: &[AttrConstraint],
    ) -> Result<AttrSummary, ValidationError> {
        if proof.subject() != subject || proof.object() != object {
            return Err(ValidationError::TargetMismatch {
                expected: format!("{subject} => {object}"),
                got: format!("{} => {}", proof.subject(), proof.object()),
            });
        }
        let summary = self.validate(proof)?;
        let acc = proof.accumulate();
        for c in constraints {
            if !acc.satisfies(std::slice::from_ref(c), &self.ctx.declarations) {
                return Err(ValidationError::ConstraintViolated(c.to_string()));
            }
        }
        Ok(summary)
    }

    fn validate_inner(
        &self,
        proof: &Proof,
        depth: usize,
        stack: &mut Vec<DelegationId>,
    ) -> Result<(), ValidationError> {
        if depth > self.ctx.max_support_depth {
            return Err(ValidationError::SupportDepthExceeded);
        }
        if proof.is_trivial() {
            if proof.subject() != proof.object() {
                return Err(ValidationError::EmptyProof);
            }
            return Ok(());
        }
        // Re-check linkage (proofs may arrive deserialized).
        if proof.steps[0].cert().delegation().subject() != proof.subject() {
            return Err(ValidationError::BrokenChain { position: 0 });
        }
        for (i, pair) in proof.steps.windows(2).enumerate() {
            if pair[0].cert().delegation().object() != pair[1].cert().delegation().subject() {
                return Err(ValidationError::BrokenChain { position: i });
            }
        }
        if proof
            .steps
            .last()
            .expect("nonempty")
            .cert()
            .delegation()
            .object()
            != proof.object()
        {
            return Err(ValidationError::BrokenChain {
                position: proof.steps.len() - 1,
            });
        }

        for (position, step) in proof.steps.iter().enumerate() {
            let cert = step.cert();
            let id = cert.id();
            // Transitive-trust limit: `position` delegations sit between
            // this proof's subject and the credential; each one extends
            // the grant one hop further.
            if let Some(limit) = cert.delegation().max_extension_depth() {
                if (position as u64) > limit {
                    return Err(ValidationError::DepthExceeded {
                        limit,
                        extensions: position as u64,
                    });
                }
            }
            if stack.contains(&id) {
                return Err(ValidationError::SupportCycle);
            }
            if self.ctx.revoked.contains(&id) {
                return Err(ValidationError::Revoked(id));
            }
            cert.verify(self.ctx.now)?;

            let delegation = cert.delegation();
            let issuer_node = Node::Entity(delegation.issuer());

            // Rights the issuer must prove: the object's assignment right
            // (for third-party delegations) plus the attribute-assignment
            // right for every foreign clause.
            let mut needed: Vec<Node> = Vec::new();
            if let Some(right) = delegation.required_support() {
                needed.push(right);
            }
            for clause in delegation.foreign_clauses() {
                let admin = Node::attr_admin(clause.attr().clone());
                if !needed.contains(&admin) {
                    needed.push(admin);
                }
            }

            if !needed.is_empty() {
                stack.push(id);
                let result = (|| {
                    for right in &needed {
                        let support = step
                            .supports()
                            .iter()
                            .find(|s| s.object() == right && s.subject() == &issuer_node);
                        match support {
                            Some(s) => {
                                let _span = drbac_obs::span!(
                                    "drbac.core.proof.support.validate",
                                    "depth" => depth + 1,
                                    "chain_len" => s.chain_len(),
                                );
                                drbac_obs::static_counter!(
                                    "drbac.core.proof.support.validate.count"
                                )
                                .inc();
                                self.validate_inner(s, depth + 1, stack)?
                            }
                            None => {
                                // Distinguish "no support at all" from
                                // "support proves something else".
                                if let Some(wrong) =
                                    step.supports().iter().find(|s| s.object() == right)
                                {
                                    return Err(ValidationError::WrongSupport {
                                        expected: format!("{issuer_node} => {right}"),
                                        got: format!("{} => {}", wrong.subject(), wrong.object()),
                                    });
                                }
                                return Err(ValidationError::MissingSupport {
                                    issuer: delegation.issuer(),
                                    needed: right.to_string(),
                                });
                            }
                        }
                    }
                    Ok(())
                })();
                stack.pop();
                result?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AttrDeclaration, AttrOp};
    use crate::entity::LocalEntity;
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        big_isp: LocalEntity,
        mark: LocalEntity,
        maria: LocalEntity,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(77);
        let g = SchnorrGroup::test_256();
        Fixture {
            big_isp: LocalEntity::generate("BigISP", g.clone(), &mut rng),
            mark: LocalEntity::generate("Mark", g.clone(), &mut rng),
            maria: LocalEntity::generate("Maria", g, &mut rng),
        }
    }

    /// Builds the Table 1 proof: (1)+(2) as support for (3).
    fn table1_proof(fx: &Fixture) -> Proof {
        let member = fx.big_isp.role("member");
        let services = fx.big_isp.role("memberServices");
        let d1 = fx
            .big_isp
            .delegate(Node::entity(&fx.mark), Node::role(services.clone()))
            .sign(&fx.big_isp)
            .unwrap();
        let d2 = fx
            .big_isp
            .delegate(Node::role(services), Node::role_admin(member.clone()))
            .sign(&fx.big_isp)
            .unwrap();
        let support = Proof::from_steps(vec![ProofStep::new(d1), ProofStep::new(d2)]).unwrap();
        let d3 = fx
            .mark
            .delegate(Node::entity(&fx.maria), Node::role(member))
            .sign(&fx.mark)
            .unwrap();
        Proof::from_steps(vec![ProofStep::new(d3).with_support(support)]).unwrap()
    }

    fn validator() -> ProofValidator {
        ProofValidator::new(ValidationContext::at(Timestamp(0)))
    }

    #[test]
    fn table1_proof_validates() {
        let fx = fixture();
        let proof = table1_proof(&fx);
        assert_eq!(proof.subject(), &Node::entity(&fx.maria));
        assert_eq!(proof.object(), &Node::role(fx.big_isp.role("member")));
        assert!(validator().validate(&proof).is_ok());
        // Three distinct delegations participate.
        assert_eq!(proof.delegation_ids().len(), 3);
    }

    #[test]
    fn third_party_without_support_rejected() {
        let fx = fixture();
        let d3 = fx
            .mark
            .delegate(
                Node::entity(&fx.maria),
                Node::role(fx.big_isp.role("member")),
            )
            .sign(&fx.mark)
            .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(d3)]).unwrap();
        assert!(matches!(
            validator().validate(&proof),
            Err(ValidationError::MissingSupport { .. })
        ));
    }

    #[test]
    fn support_for_wrong_role_rejected() {
        let fx = fixture();
        let member = fx.big_isp.role("member");
        let other = fx.big_isp.role("other");
        let services = fx.big_isp.role("memberServices");
        let d1 = fx
            .big_isp
            .delegate(Node::entity(&fx.mark), Node::role(services.clone()))
            .sign(&fx.big_isp)
            .unwrap();
        // Support grants assignment over *other*, not member.
        let d2 = fx
            .big_isp
            .delegate(Node::role(services), Node::role_admin(other))
            .sign(&fx.big_isp)
            .unwrap();
        let support = Proof::from_steps(vec![ProofStep::new(d1), ProofStep::new(d2)]).unwrap();
        let d3 = fx
            .mark
            .delegate(Node::entity(&fx.maria), Node::role(member))
            .sign(&fx.mark)
            .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(d3).with_support(support)]).unwrap();
        assert!(matches!(
            validator().validate(&proof),
            Err(ValidationError::MissingSupport { .. })
        ));
    }

    #[test]
    fn support_with_wrong_subject_reported() {
        let fx = fixture();
        let member = fx.big_isp.role("member");
        // Support proves Maria => member', but the issuer is Mark.
        let d_wrong = fx
            .big_isp
            .delegate(Node::entity(&fx.maria), Node::role_admin(member.clone()))
            .sign(&fx.big_isp)
            .unwrap();
        let support = Proof::from_steps(vec![ProofStep::new(d_wrong)]).unwrap();
        let d3 = fx
            .mark
            .delegate(Node::entity(&fx.maria), Node::role(member))
            .sign(&fx.mark)
            .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(d3).with_support(support)]).unwrap();
        assert!(matches!(
            validator().validate(&proof),
            Err(ValidationError::WrongSupport { .. })
        ));
    }

    #[test]
    fn broken_chain_detected_on_construction() {
        let fx = fixture();
        let r1 = fx.big_isp.role("r1");
        let r2 = fx.big_isp.role("r2");
        let d1 = fx
            .big_isp
            .delegate(Node::entity(&fx.maria), Node::role(r1))
            .sign(&fx.big_isp)
            .unwrap();
        let d2 = fx
            .big_isp
            .delegate(Node::role(r2), Node::role(fx.big_isp.role("r3")))
            .sign(&fx.big_isp)
            .unwrap();
        assert!(matches!(
            Proof::from_steps(vec![ProofStep::new(d1), ProofStep::new(d2)]),
            Err(ValidationError::BrokenChain { position: 0 })
        ));
        assert!(matches!(
            Proof::from_steps(vec![]),
            Err(ValidationError::EmptyProof)
        ));
    }

    #[test]
    fn revoked_delegation_fails_validation() {
        let fx = fixture();
        let proof = table1_proof(&fx);
        // Revoke the support's first delegation.
        let revoked_id = proof.steps()[0].supports()[0].steps()[0].cert().id();
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)).with_revoked(revoked_id));
        assert_eq!(
            v.validate(&proof),
            Err(ValidationError::Revoked(revoked_id))
        );
    }

    #[test]
    fn expired_support_fails_validation() {
        let fx = fixture();
        let member = fx.big_isp.role("member");
        let services = fx.big_isp.role("memberServices");
        let d1 = fx
            .big_isp
            .delegate(Node::entity(&fx.mark), Node::role(services.clone()))
            .expires(Timestamp(5))
            .sign(&fx.big_isp)
            .unwrap();
        let d2 = fx
            .big_isp
            .delegate(Node::role(services), Node::role_admin(member.clone()))
            .sign(&fx.big_isp)
            .unwrap();
        let support = Proof::from_steps(vec![ProofStep::new(d1), ProofStep::new(d2)]).unwrap();
        let d3 = fx
            .mark
            .delegate(Node::entity(&fx.maria), Node::role(member))
            .sign(&fx.mark)
            .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(d3).with_support(support)]).unwrap();
        assert!(ProofValidator::new(ValidationContext::at(Timestamp(5)))
            .validate(&proof)
            .is_ok());
        assert!(matches!(
            ProofValidator::new(ValidationContext::at(Timestamp(6))).validate(&proof),
            Err(ValidationError::Expired { .. })
        ));
    }

    #[test]
    fn trivial_proof_validates() {
        let fx = fixture();
        let node = Node::entity(&fx.maria);
        let proof = Proof::trivial(node.clone());
        assert!(proof.is_trivial());
        assert!(validator().validate(&proof).is_ok());
        assert_eq!(proof.subject(), proof.object());
    }

    #[test]
    fn concat_composes_chains() {
        let fx = fixture();
        let r1 = fx.big_isp.role("r1");
        let r2 = fx.big_isp.role("r2");
        let d1 = fx
            .big_isp
            .delegate(Node::entity(&fx.maria), Node::role(r1.clone()))
            .sign(&fx.big_isp)
            .unwrap();
        let d2 = fx
            .big_isp
            .delegate(Node::role(r1.clone()), Node::role(r2.clone()))
            .sign(&fx.big_isp)
            .unwrap();
        let p1 = Proof::from_steps(vec![ProofStep::new(d1)]).unwrap();
        let p2 = Proof::from_steps(vec![ProofStep::new(d2)]).unwrap();
        let joined = p1.clone().concat(p2.clone()).unwrap();
        assert_eq!(joined.subject(), &Node::entity(&fx.maria));
        assert_eq!(joined.object(), &Node::role(r2));
        assert!(validator().validate(&joined).is_ok());
        // Mismatched endpoints refuse to concat.
        assert!(p2.concat(p1).is_err());
        // Trivial proofs are identities for concat.
        let t = Proof::trivial(Node::entity(&fx.maria));
        let again = t.concat(joined.clone()).unwrap();
        assert_eq!(again, joined);
    }

    #[test]
    fn attribute_accumulation_and_constraints() {
        let fx = fixture();
        let bw = fx.big_isp.attr("BW", AttrOp::Min);
        let r1 = fx.big_isp.role("r1");
        let r2 = fx.big_isp.role("r2");
        let d1 = fx
            .big_isp
            .delegate(Node::entity(&fx.maria), Node::role(r1.clone()))
            .with_attr(bw.clone(), 100.0)
            .unwrap()
            .sign(&fx.big_isp)
            .unwrap();
        let d2 = fx
            .big_isp
            .delegate(Node::role(r1), Node::role(r2.clone()))
            .with_attr(bw.clone(), 150.0)
            .unwrap()
            .sign(&fx.big_isp)
            .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(d1), ProofStep::new(d2)]).unwrap();

        let mut decls = DeclarationSet::new();
        decls.insert(&AttrDeclaration::new(bw.clone(), 200.0).unwrap());
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)).with_declarations(decls));

        let summary = v
            .validate_query(
                &proof,
                &Node::entity(&fx.maria),
                &Node::role(r2.clone()),
                &[],
            )
            .unwrap();
        assert_eq!(summary.get(&bw), Some(100.0));

        let tight = crate::AttrConstraint::at_least(bw.clone(), 150.0);
        assert!(matches!(
            v.validate_query(
                &proof,
                &Node::entity(&fx.maria),
                &Node::role(r2.clone()),
                &[tight]
            ),
            Err(ValidationError::ConstraintViolated(_))
        ));
        let loose = crate::AttrConstraint::at_least(bw, 100.0);
        assert!(v
            .validate_query(&proof, &Node::entity(&fx.maria), &Node::role(r2), &[loose])
            .is_ok());
    }

    #[test]
    fn foreign_attr_clause_requires_attr_admin_support() {
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(5);
        let airnet = LocalEntity::generate("AirNet", SchnorrGroup::test_256(), &mut rng);
        let storage = airnet.attr("storage", AttrOp::Subtract);
        let member = airnet.role("member");

        // Sheila-like: BigISP issues a delegation to an AirNet role with an
        // AirNet attribute clause — needs both member' and storage'.
        let d = fx
            .big_isp
            .delegate(
                Node::role(fx.big_isp.role("member")),
                Node::role(member.clone()),
            )
            .with_attr(storage.clone(), 20.0)
            .unwrap()
            .sign(&fx.big_isp)
            .unwrap();

        let role_support = Proof::from_steps(vec![ProofStep::new(
            airnet
                .delegate(Node::entity(&fx.big_isp), Node::role_admin(member.clone()))
                .sign(&airnet)
                .unwrap(),
        )])
        .unwrap();
        let attr_support = Proof::from_steps(vec![ProofStep::new(
            airnet
                .delegate(Node::entity(&fx.big_isp), Node::attr_admin(storage.clone()))
                .sign(&airnet)
                .unwrap(),
        )])
        .unwrap();

        // Only role support: the storage clause is unauthorized.
        let partial = Proof::from_steps(vec![
            ProofStep::new(d.clone()).with_support(role_support.clone())
        ])
        .unwrap();
        assert!(matches!(
            validator().validate(&partial),
            Err(ValidationError::MissingSupport { .. })
        ));

        // Both supports: valid.
        let full = Proof::from_steps(vec![ProofStep::new(d)
            .with_support(role_support)
            .with_support(attr_support)])
        .unwrap();
        assert!(validator().validate(&full).is_ok());
    }

    #[test]
    fn nested_support_proofs_validate() {
        // BigISP delegates member' to Mark via an intermediary chain that
        // itself involves a third-party delegation.
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(9);
        let deputy = LocalEntity::generate("Deputy", SchnorrGroup::test_256(), &mut rng);
        let member = fx.big_isp.role("member");

        // BigISP gives Deputy member' (self-certified).
        let d_deputy = fx
            .big_isp
            .delegate(Node::entity(&deputy), Node::role_admin(member.clone()))
            .sign(&fx.big_isp)
            .unwrap();
        // Deputy (third-party!) gives Mark member'; support: deputy => member'.
        let deputy_support = Proof::from_steps(vec![ProofStep::new(d_deputy)]).unwrap();
        let d_mark = deputy
            .delegate(Node::entity(&fx.mark), Node::role_admin(member.clone()))
            .sign(&deputy)
            .unwrap();
        let mark_support =
            Proof::from_steps(vec![ProofStep::new(d_mark).with_support(deputy_support)]).unwrap();
        // Mark issues the member role to Maria.
        let d_final = fx
            .mark
            .delegate(Node::entity(&fx.maria), Node::role(member))
            .sign(&fx.mark)
            .unwrap();
        let proof =
            Proof::from_steps(vec![ProofStep::new(d_final).with_support(mark_support)]).unwrap();
        assert!(validator().validate(&proof).is_ok());

        // With a depth limit of 1 the nesting is rejected.
        let v = ProofValidator::new(ValidationContext::at(Timestamp(0)).with_max_support_depth(1));
        assert_eq!(
            v.validate(&proof),
            Err(ValidationError::SupportDepthExceeded)
        );
    }

    #[test]
    fn mutual_support_cycle_detected() {
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(13);
        let b = LocalEntity::generate("B", SchnorrGroup::test_256(), &mut rng);
        let c = LocalEntity::generate("C", SchnorrGroup::test_256(), &mut rng);
        let r = fx.big_isp.role("r");

        // D = [C => r'] B (third-party), D' = [B => r'] C (third-party).
        let d = b
            .delegate(Node::entity(&c), Node::role_admin(r.clone()))
            .sign(&b)
            .unwrap();
        let d_prime = c
            .delegate(Node::entity(&b), Node::role_admin(r.clone()))
            .sign(&c)
            .unwrap();

        // d's support: proof(d') whose step is supported by proof(d) again.
        let inner_d = Proof::from_steps(vec![ProofStep::new(d.clone())]).unwrap();
        let support_for_d =
            Proof::from_steps(vec![ProofStep::new(d_prime).with_support(inner_d)]).unwrap();
        let main = Proof::from_steps(vec![ProofStep::new(d).with_support(support_for_d)]).unwrap();
        assert_eq!(
            validator().validate(&main),
            Err(ValidationError::SupportCycle)
        );
    }

    #[test]
    fn extension_depth_limits_enforced() {
        let fx = fixture();
        let r1 = fx.big_isp.role("r1");
        let r2 = fx.big_isp.role("r2");
        let r3 = fx.big_isp.role("r3");

        // [Maria -> r1], [r1 -> r2 <depth:0>], [r2 -> r3].
        // The depth-0 grant sits at position 1: one delegation (Maria's)
        // extends it — violation.
        let d1 = fx
            .big_isp
            .delegate(Node::entity(&fx.maria), Node::role(r1.clone()))
            .sign(&fx.big_isp)
            .unwrap();
        let d2 = fx
            .big_isp
            .delegate(Node::role(r1), Node::role(r2.clone()))
            .max_extension_depth(0)
            .sign(&fx.big_isp)
            .unwrap();
        let d3 = fx
            .big_isp
            .delegate(Node::role(r2.clone()), Node::role(r3))
            .sign(&fx.big_isp)
            .unwrap();

        let strict = Proof::from_steps(vec![
            ProofStep::new(d1.clone()),
            ProofStep::new(d2.clone()),
            ProofStep::new(d3.clone()),
        ])
        .unwrap();
        assert!(!strict.respects_extension_depths());
        assert!(matches!(
            validator().validate(&strict),
            Err(ValidationError::DepthExceeded {
                limit: 0,
                extensions: 1
            })
        ));

        // With depth 1 the same chain is allowed (one extension).
        let d2_loose = fx
            .big_isp
            .delegate(
                d2.delegation().subject().clone(),
                d2.delegation().object().clone(),
            )
            .max_extension_depth(1)
            .sign(&fx.big_isp)
            .unwrap();
        let loose = Proof::from_steps(vec![
            ProofStep::new(d1),
            ProofStep::new(d2_loose),
            ProofStep::new(d3),
        ])
        .unwrap();
        assert!(loose.respects_extension_depths());
        assert!(validator().validate(&loose).is_ok());

        // A depth-0 grant used directly (position 0) is fine.
        let direct = fx
            .big_isp
            .delegate(
                Node::entity(&fx.maria),
                Node::role(fx.big_isp.role("direct")),
            )
            .max_extension_depth(0)
            .sign(&fx.big_isp)
            .unwrap();
        let direct_proof = Proof::from_steps(vec![ProofStep::new(direct)]).unwrap();
        assert!(validator().validate(&direct_proof).is_ok());
    }

    #[test]
    fn query_target_mismatch_rejected() {
        let fx = fixture();
        let proof = table1_proof(&fx);
        let v = validator();
        assert!(matches!(
            v.validate_query(&proof, &Node::entity(&fx.mark), proof.object(), &[]),
            Err(ValidationError::TargetMismatch { .. })
        ));
    }
}
