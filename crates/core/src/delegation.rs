//! Delegations: `[Subject → Object] Issuer` certificates (paper §3).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::attr::{AttrClause, AttrRef};
use crate::cert::SignedDelegation;
use crate::clock::Timestamp;
use crate::entity::{EntityId, LocalEntity};
use crate::error::{ModelError, ValidationError};
use crate::tag::DiscoveryTag;
use crate::wire::{Encode, Writer};
use crate::Node;

/// The paper's delegation taxonomy along the authorization axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DelegationKind {
    /// `OEntity == Issuer`: "no additional authorization is required
    /// because an entity is permitted to delegate the permissions
    /// associated with any role in its namespace." All valid proofs are
    /// rooted in these.
    SelfCertified,
    /// `OEntity != Issuer`: the issuer must hold the object's
    /// right-of-assignment, demonstrated by a *support proof*.
    ThirdParty,
}

impl fmt::Display for DelegationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DelegationKind::SelfCertified => "self-certified",
            DelegationKind::ThirdParty => "third-party",
        })
    }
}

/// An unsigned delegation body.
///
/// Build with [`DelegationBuilder`] (see [`LocalEntity::delegate`]); sign
/// into a [`SignedDelegation`] to make it a credential.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delegation {
    pub(crate) subject: Node,
    pub(crate) object: Node,
    pub(crate) issuer: EntityId,
    pub(crate) clauses: Vec<AttrClause>,
    pub(crate) expires: Option<Timestamp>,
    pub(crate) subject_tag: Option<DiscoveryTag>,
    pub(crate) object_tag: Option<DiscoveryTag>,
    pub(crate) issuer_tag: Option<DiscoveryTag>,
    /// "Acting as" clause: the assignment roles the issuer claims entitle
    /// it to issue this third-party delegation (discovery hint for
    /// locating support chains, paper §4.2.1).
    pub(crate) acting_as: Vec<Node>,
    /// Issuer-local serial, distinguishing otherwise-identical reissues.
    pub(crate) serial: u64,
    /// Transitive-trust limit (the §6 extension): if set, at most this
    /// many further delegations may sit between the proof's subject and
    /// this credential. `Some(0)` means the grant is direct-use only.
    pub(crate) max_extension_depth: Option<u64>,
}

impl Delegation {
    /// The subject receiving permissions.
    pub fn subject(&self) -> &Node {
        &self.subject
    }

    /// The role-like object whose permissions are granted.
    pub fn object(&self) -> &Node {
        &self.object
    }

    /// The issuing entity.
    pub fn issuer(&self) -> EntityId {
        self.issuer
    }

    /// Valued-attribute clauses carried by this delegation.
    pub fn clauses(&self) -> &[AttrClause] {
        &self.clauses
    }

    /// Expiration instant, if any.
    pub fn expires(&self) -> Option<Timestamp> {
        self.expires
    }

    /// Discovery tag for the subject, if any.
    pub fn subject_tag(&self) -> Option<&DiscoveryTag> {
        self.subject_tag.as_ref()
    }

    /// Discovery tag for the object, if any.
    pub fn object_tag(&self) -> Option<&DiscoveryTag> {
        self.object_tag.as_ref()
    }

    /// Discovery tag for the issuer, if any.
    pub fn issuer_tag(&self) -> Option<&DiscoveryTag> {
        self.issuer_tag.as_ref()
    }

    /// The issuer's "acting as" assignment roles.
    pub fn acting_as(&self) -> &[Node] {
        &self.acting_as
    }

    /// Issuer-local serial number.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// The transitive-trust limit, if any (see
    /// [`DelegationBuilder::max_extension_depth`]).
    pub fn max_extension_depth(&self) -> Option<u64> {
        self.max_extension_depth
    }

    /// Self-certified or third-party (see [`DelegationKind`]).
    pub fn kind(&self) -> DelegationKind {
        if self.object.namespace() == self.issuer {
            DelegationKind::SelfCertified
        } else {
            DelegationKind::ThirdParty
        }
    }

    /// `true` if the object is a right-of-assignment (`R'` or attribute
    /// assignment) — the paper's *assignment delegation* form.
    pub fn is_assignment(&self) -> bool {
        self.object.is_admin()
    }

    /// `true` if the delegation is expired at `now`.
    pub fn is_expired(&self, now: Timestamp) -> bool {
        self.expires.is_some_and(|at| now > at)
    }

    /// Attribute clauses whose namespace is *not* the issuer's, each of
    /// which needs attribute-assignment support in a proof.
    pub fn foreign_clauses(&self) -> impl Iterator<Item = &AttrClause> {
        self.clauses
            .iter()
            .filter(move |c| c.attr().entity() != self.issuer)
    }

    /// The right the issuer must hold to issue this delegation, or `None`
    /// when self-certified.
    ///
    /// For a plain role or `R'` object the needed right is `R'` (rights of
    /// assignment delegate themselves along with their role, letting them
    /// be "transitively delegated" like other roles); for an attribute
    /// assignment it is that same attribute-assignment node.
    pub fn required_support(&self) -> Option<Node> {
        if self.kind() == DelegationKind::SelfCertified {
            return None;
        }
        Some(match &self.object {
            Node::Role(r) | Node::RoleAdmin(r) => Node::RoleAdmin(r.clone()),
            Node::AttrAdmin(a) => Node::AttrAdmin(a.clone()),
            Node::Entity(_) => unreachable!("objects are role-like by construction"),
        })
    }

    /// Canonical signing bytes.
    pub fn wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::tagged(b"drbac-delegation-v1");
        self.encode(&mut w);
        w.finish()
    }
}

impl Encode for Delegation {
    fn encode(&self, w: &mut Writer) {
        self.subject.encode(w);
        self.object.encode(w);
        self.issuer.encode(w);
        w.list(&self.clauses);
        w.opt_u64(self.expires.map(|t| t.0));
        w.opt(self.subject_tag.as_ref());
        w.opt(self.object_tag.as_ref());
        w.opt(self.issuer_tag.as_ref());
        w.list(&self.acting_as);
        w.u64(self.serial);
        w.opt_u64(self.max_extension_depth);
    }
}

impl crate::wire::Decode for Delegation {
    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::DecodeError> {
        use crate::wire::DecodeError;
        let subject = Node::decode(r)?;
        let object = Node::decode(r)?;
        let issuer = EntityId::decode(r)?;
        let clauses: Vec<AttrClause> = r.list()?;
        let expires = r.opt_u64()?.map(Timestamp);
        let subject_tag: Option<DiscoveryTag> = r.opt()?;
        let object_tag: Option<DiscoveryTag> = r.opt()?;
        let issuer_tag: Option<DiscoveryTag> = r.opt()?;
        let acting_as: Vec<Node> = r.list()?;
        let serial = r.u64()?;
        let max_extension_depth = r.opt_u64()?;
        // Re-validate the construction invariants.
        if !object.is_role_like() {
            return Err(DecodeError::Invalid("object must be role-like".into()));
        }
        if subject == object {
            return Err(DecodeError::Invalid("self-loop delegation".into()));
        }
        Ok(Delegation {
            subject,
            object,
            issuer,
            clauses,
            expires,
            subject_tag,
            object_tag,
            issuer_tag,
            acting_as,
            serial,
            max_extension_depth,
        })
    }
}

impl fmt::Display for Delegation {
    /// The paper's bracket syntax: `[Subject → Object with ...] Issuer`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} -> {}", self.subject, self.object)?;
        for (i, clause) in self.clauses.iter().enumerate() {
            let kw = if i == 0 { "with" } else { "and" };
            write!(f, " {kw} {clause}")?;
        }
        if let Some(at) = self.expires {
            write!(f, " <expiry: {at}>")?;
        }
        if let Some(d) = self.max_extension_depth {
            write!(f, " <depth: {d}>")?;
        }
        write!(f, "] {}", self.issuer)
    }
}

/// Incremental builder for a [`Delegation`].
///
/// # Example
///
/// ```
/// use drbac_core::{AttrOp, LocalEntity, Node, Timestamp};
/// use drbac_crypto::SchnorrGroup;
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let airnet = LocalEntity::generate("AirNet", SchnorrGroup::test_256(), &mut rng);
/// let sheila = LocalEntity::generate("Sheila", SchnorrGroup::test_256(), &mut rng);
/// let bw = airnet.attr("BW", AttrOp::Min);
///
/// let cert = sheila
///     .delegate(Node::entity(&sheila), Node::role(airnet.role("member")))
///     .with_attr(bw, 100.0)?
///     .expires(Timestamp(1000))
///     .sign(&sheila)?;
/// assert_eq!(cert.delegation().clauses().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DelegationBuilder {
    delegation: Delegation,
}

impl DelegationBuilder {
    /// Starts a delegation `[subject → object] issuer`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ObjectNotRoleLike`] if `object` is a bare entity,
    /// * [`ModelError::SelfLoop`] if `subject == object`.
    pub fn new(subject: Node, object: Node, issuer: EntityId) -> Result<Self, ModelError> {
        if !object.is_role_like() {
            return Err(ModelError::ObjectNotRoleLike(object.to_string()));
        }
        if subject == object {
            return Err(ModelError::SelfLoop(subject.to_string()));
        }
        Ok(DelegationBuilder {
            delegation: Delegation {
                subject,
                object,
                issuer,
                clauses: Vec::new(),
                expires: None,
                subject_tag: None,
                object_tag: None,
                issuer_tag: None,
                acting_as: Vec::new(),
                serial: 0,
                max_extension_depth: None,
            },
        })
    }

    /// Adds a valued-attribute clause.
    ///
    /// # Errors
    ///
    /// See [`crate::AttrOp::check_operand`].
    pub fn with_attr(mut self, attr: AttrRef, operand: f64) -> Result<Self, ModelError> {
        self.delegation
            .clauses
            .push(AttrClause::new(attr, operand)?);
        Ok(self)
    }

    /// Adds an already-validated clause.
    pub fn with_clause(mut self, clause: AttrClause) -> Self {
        self.delegation.clauses.push(clause);
        self
    }

    /// Sets an expiration instant.
    pub fn expires(mut self, at: Timestamp) -> Self {
        self.delegation.expires = Some(at);
        self
    }

    /// Attaches the subject's discovery tag.
    pub fn subject_tag(mut self, tag: DiscoveryTag) -> Self {
        self.delegation.subject_tag = Some(tag);
        self
    }

    /// Attaches the object's discovery tag.
    pub fn object_tag(mut self, tag: DiscoveryTag) -> Self {
        self.delegation.object_tag = Some(tag);
        self
    }

    /// Attaches the issuer's discovery tag.
    pub fn issuer_tag(mut self, tag: DiscoveryTag) -> Self {
        self.delegation.issuer_tag = Some(tag);
        self
    }

    /// Adds an "acting as" assignment role (discovery hint for support
    /// chains).
    pub fn acting_as(mut self, role: Node) -> Self {
        self.delegation.acting_as.push(role);
        self
    }

    /// Sets the issuer-local serial.
    pub fn serial(mut self, serial: u64) -> Self {
        self.delegation.serial = serial;
        self
    }

    /// Limits transitive trust (the extension sketched in the paper's
    /// related-work discussion): at most `depth` further delegations may
    /// appear between a proof's subject and this credential. `0` makes
    /// the grant usable only by its direct subject.
    pub fn max_extension_depth(mut self, depth: u64) -> Self {
        self.delegation.max_extension_depth = Some(depth);
        self
    }

    /// The delegation built so far (unsigned).
    pub fn build(self) -> Delegation {
        self.delegation
    }

    /// Signs with `issuer`'s key, producing a credential.
    ///
    /// # Errors
    ///
    /// [`ValidationError::WrongSigner`] if `issuer` is not the entity
    /// named as this delegation's issuer.
    pub fn sign(self, issuer: &LocalEntity) -> Result<SignedDelegation, ValidationError> {
        SignedDelegation::sign(self.delegation, issuer)
    }
}

impl LocalEntity {
    /// Starts a delegation issued by this entity.
    ///
    /// # Panics
    ///
    /// Panics if the pair is invalid (bare-entity object or self-loop);
    /// use [`DelegationBuilder::new`] for fallible construction.
    pub fn delegate(&self, subject: Node, object: Node) -> DelegationBuilder {
        DelegationBuilder::new(subject, object, self.id()).expect("valid delegation endpoints")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrOp;
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn local(name: &str, seed: u64) -> LocalEntity {
        LocalEntity::generate(
            name,
            SchnorrGroup::test_256(),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn kind_classification() {
        let a = local("A", 1);
        let b = local("B", 2);
        // [B -> A.r] A : self-certified
        let d = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .build();
        assert_eq!(d.kind(), DelegationKind::SelfCertified);
        assert!(d.required_support().is_none());
        // [B -> A.r] B : third-party
        let d = b
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .build();
        assert_eq!(d.kind(), DelegationKind::ThirdParty);
        assert_eq!(d.required_support(), Some(Node::role_admin(a.role("r"))));
    }

    #[test]
    fn assignment_delegations() {
        let a = local("A", 1);
        let b = local("B", 2);
        let d = a
            .delegate(Node::entity(&b), Node::role_admin(a.role("r")))
            .build();
        assert!(d.is_assignment());
        assert_eq!(d.kind(), DelegationKind::SelfCertified);
        // Third-party assignment delegation needs R' support too.
        let d = b
            .delegate(Node::entity(&b), Node::role_admin(a.role("r")))
            .build();
        assert_eq!(d.required_support(), Some(Node::role_admin(a.role("r"))));
    }

    #[test]
    fn attr_admin_object() {
        let a = local("A", 1);
        let b = local("B", 2);
        let bw = a.attr("BW", AttrOp::Min);
        let d = a
            .delegate(Node::entity(&b), Node::attr_admin(bw.clone()))
            .build();
        assert!(d.is_assignment());
        let d = b
            .delegate(Node::entity(&b), Node::attr_admin(bw.clone()))
            .build();
        assert_eq!(d.required_support(), Some(Node::attr_admin(bw)));
    }

    #[test]
    fn builder_rejects_entity_object_and_self_loop() {
        let a = local("A", 1);
        let b = local("B", 2);
        assert!(matches!(
            DelegationBuilder::new(Node::entity(&b), Node::entity(&a), a.id()),
            Err(ModelError::ObjectNotRoleLike(_))
        ));
        let r = Node::role(a.role("r"));
        assert!(matches!(
            DelegationBuilder::new(r.clone(), r, a.id()),
            Err(ModelError::SelfLoop(_))
        ));
    }

    #[test]
    fn foreign_clauses_partition() {
        let a = local("A", 1);
        let b = local("B", 2);
        let own = b.attr("x", AttrOp::Min);
        let foreign = a.attr("y", AttrOp::Min);
        let d = b
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .with_attr(own, 1.0)
            .unwrap()
            .with_attr(foreign.clone(), 2.0)
            .unwrap()
            .build();
        let foreigns: Vec<_> = d.foreign_clauses().collect();
        assert_eq!(foreigns.len(), 1);
        assert_eq!(foreigns[0].attr(), &foreign);
    }

    #[test]
    fn expiry_semantics() {
        let a = local("A", 1);
        let b = local("B", 2);
        let d = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .expires(Timestamp(10))
            .build();
        assert!(!d.is_expired(Timestamp(10)));
        assert!(d.is_expired(Timestamp(11)));
        let open = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .build();
        assert!(!open.is_expired(Timestamp(u64::MAX)));
    }

    #[test]
    fn wire_bytes_distinguish_serial_and_fields() {
        let a = local("A", 1);
        let b = local("B", 2);
        let base = a.delegate(Node::entity(&b), Node::role(a.role("r")));
        let d1 = base.clone().serial(1).build();
        let d2 = base.clone().serial(2).build();
        assert_ne!(d1.wire_bytes(), d2.wire_bytes());
        let with_expiry = base.clone().expires(Timestamp(5)).build();
        assert_ne!(d1.wire_bytes(), with_expiry.wire_bytes());
    }

    #[test]
    fn kind_display_and_depth_rendering() {
        assert_eq!(DelegationKind::SelfCertified.to_string(), "self-certified");
        assert_eq!(DelegationKind::ThirdParty.to_string(), "third-party");
        let a = local("A", 1);
        let b = local("B", 2);
        let d = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .max_extension_depth(3)
            .build();
        assert!(d.to_string().contains("<depth: 3>"), "{d}");
        assert_eq!(d.max_extension_depth(), Some(3));
    }

    #[test]
    fn display_uses_paper_syntax() {
        let a = local("A", 1);
        let b = local("B", 2);
        let bw = a.attr("BW", AttrOp::Min);
        let d = a
            .delegate(Node::entity(&b), Node::role(a.role("member")))
            .with_attr(bw, 100.0)
            .unwrap()
            .build();
        let s = d.to_string();
        assert!(s.starts_with('['), "{s}");
        assert!(s.contains(" -> "), "{s}");
        assert!(s.contains("with"), "{s}");
        assert!(s.contains("<= 100"), "{s}");
    }
}
