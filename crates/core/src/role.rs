//! Roles: names within an entity's namespace.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::entity::EntityId;
use crate::error::ModelError;

/// A validated role name: 1–64 characters from `[A-Za-z0-9_-]`.
///
/// Validation keeps names unambiguous in the textual delegation syntax
/// (`Entity.LocalName`) and in wire encodings.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct RoleName(String);

impl RoleName {
    /// Maximum length in bytes.
    pub const MAX_LEN: usize = 64;

    /// Validates and wraps a role name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidName`] if the name is empty, too long,
    /// or contains characters outside `[A-Za-z0-9_-]`.
    pub fn new(name: impl Into<String>) -> Result<Self, ModelError> {
        let name = name.into();
        if name.is_empty() || name.len() > Self::MAX_LEN {
            return Err(ModelError::InvalidName(name));
        }
        if !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            return Err(ModelError::InvalidName(name));
        }
        Ok(RoleName(name))
    }

    /// The validated string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RoleName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl TryFrom<String> for RoleName {
    type Error = ModelError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        RoleName::new(s)
    }
}

impl From<RoleName> for String {
    fn from(r: RoleName) -> String {
        r.0
    }
}

/// A role: a [`RoleName`] in an entity's namespace, e.g. `BigISP.member`.
///
/// "dRBAC roles represent classes of permissions controlled by their
/// namespace."
///
/// # Example
///
/// ```
/// use drbac_core::{Role, RoleName, EntityId};
/// use drbac_crypto::KeyFingerprint;
///
/// let ns = EntityId(KeyFingerprint([7u8; 32]));
/// let role = Role::new(ns, RoleName::new("member")?);
/// assert_eq!(role.name().as_str(), "member");
/// # Ok::<(), drbac_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Role {
    entity: EntityId,
    name: RoleName,
}

impl Role {
    /// Creates a role in `entity`'s namespace.
    pub fn new(entity: EntityId, name: RoleName) -> Self {
        Role { entity, name }
    }

    /// The namespace-owning entity.
    pub fn entity(&self) -> EntityId {
        self.entity
    }

    /// The local name.
    pub fn name(&self) -> &RoleName {
        &self.name
    }
}

impl fmt::Display for Role {
    /// `entity.name` with the short fingerprint form of the entity.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.entity, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_crypto::KeyFingerprint;

    fn ns(b: u8) -> EntityId {
        EntityId(KeyFingerprint([b; 32]))
    }

    #[test]
    fn valid_names() {
        for ok in [
            "member",
            "member-services",
            "wallet_1",
            "X",
            "a".repeat(64).as_str(),
        ] {
            assert!(RoleName::new(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn invalid_names() {
        for bad in [
            "",
            "has space",
            "dot.name",
            "tick'",
            "a".repeat(65).as_str(),
            "ünïcode",
        ] {
            assert!(RoleName::new(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn role_identity_includes_namespace() {
        let member = RoleName::new("member").unwrap();
        let r1 = Role::new(ns(1), member.clone());
        let r2 = Role::new(ns(2), member);
        assert_ne!(r1, r2);
        assert_eq!(r1, Role::new(ns(1), RoleName::new("member").unwrap()));
    }

    #[test]
    fn display_is_dotted() {
        let r = Role::new(ns(1), RoleName::new("ops").unwrap());
        assert!(r.to_string().ends_with(".ops"));
    }
}
