//! Error types for the dRBAC model.

use std::fmt;

use crate::attr::AttrOp;
use crate::cert::DelegationId;
use crate::clock::Timestamp;
use crate::entity::EntityId;

/// Errors constructing model values (names, operands, delegations).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A role or attribute name failed validation.
    InvalidName(String),
    /// An attribute operand was outside its operator's monotone range.
    InvalidOperand {
        /// The operator the operand was checked against.
        op: AttrOp,
        /// The offending operand.
        operand: f64,
    },
    /// A delegation object must be a role-like node, not a bare entity.
    ObjectNotRoleLike(String),
    /// A delegation subject and object were identical (vacuous).
    SelfLoop(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidName(n) => {
                write!(f, "invalid name {n:?} (want 1-64 chars of [A-Za-z0-9_-])")
            }
            ModelError::InvalidOperand { op, operand } => {
                write!(f, "operand {operand} out of range for operator {op}")
            }
            ModelError::ObjectNotRoleLike(n) => {
                write!(f, "delegation object {n} must be a role, not a bare entity")
            }
            ModelError::SelfLoop(n) => write!(f, "delegation from {n} to itself is vacuous"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Errors validating certificates and proofs.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// The signing key does not belong to the entity that must authorize
    /// this credential.
    WrongSigner {
        /// Entity whose signature was required.
        expected: EntityId,
        /// Entity that actually signed.
        got: EntityId,
    },
    /// The cryptographic signature failed verification.
    BadSignature,
    /// The credential expired before the validation time.
    Expired {
        /// Expiration instant.
        at: Timestamp,
        /// Validation instant.
        now: Timestamp,
    },
    /// A proof chain's adjacent steps do not connect.
    BrokenChain {
        /// Index of the step whose object does not match the next subject.
        position: usize,
    },
    /// A proof with no steps for distinct subject and object.
    EmptyProof,
    /// A third-party delegation (or foreign attribute clause) lacks a
    /// support proof granting the issuer the needed right.
    MissingSupport {
        /// Issuer needing authorization.
        issuer: EntityId,
        /// Description of the right that was not proven.
        needed: String,
    },
    /// A support proof proves the wrong statement.
    WrongSupport {
        /// What the support proof was expected to prove.
        expected: String,
        /// What it actually proves.
        got: String,
    },
    /// Support-proof recursion exceeded the configured depth limit.
    SupportDepthExceeded,
    /// A delegation's transitive-trust limit was exceeded: more
    /// delegations extend the grant than its issuer allowed.
    DepthExceeded {
        /// The issuer-set extension limit.
        limit: u64,
        /// How many delegations actually extend the grant in this proof.
        extensions: u64,
    },
    /// Support proofs refer back to a delegation already being validated.
    SupportCycle,
    /// A delegation in the proof has been revoked.
    Revoked(DelegationId),
    /// The accumulated attributes violate a query constraint.
    ConstraintViolated(String),
    /// The proof does not connect the requested subject/object pair.
    TargetMismatch {
        /// Requested endpoint rendering.
        expected: String,
        /// Endpoint the proof actually has.
        got: String,
    },
    /// A model-level invariant was violated inside a credential.
    Model(ModelError),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WrongSigner { expected, got } => {
                write!(
                    f,
                    "credential must be signed by {expected}, was signed by {got}"
                )
            }
            ValidationError::BadSignature => f.write_str("signature verification failed"),
            ValidationError::Expired { at, now } => {
                write!(f, "credential expired at {at}, now {now}")
            }
            ValidationError::BrokenChain { position } => {
                write!(
                    f,
                    "proof chain broken between steps {position} and {}",
                    position + 1
                )
            }
            ValidationError::EmptyProof => f.write_str("proof has no delegations"),
            ValidationError::MissingSupport { issuer, needed } => {
                write!(f, "issuer {issuer} lacks a support proof for {needed}")
            }
            ValidationError::WrongSupport { expected, got } => {
                write!(f, "support proof proves {got}, expected {expected}")
            }
            ValidationError::SupportDepthExceeded => f.write_str("support proof nesting too deep"),
            ValidationError::DepthExceeded { limit, extensions } => write!(
                f,
                "delegation allows {limit} further extensions but {extensions} were used"
            ),
            ValidationError::SupportCycle => f.write_str("support proofs form a cycle"),
            ValidationError::Revoked(id) => write!(f, "delegation {id} has been revoked"),
            ValidationError::ConstraintViolated(c) => {
                write!(f, "attribute constraint violated: {c}")
            }
            ValidationError::TargetMismatch { expected, got } => {
                write!(f, "proof connects {got}, query asked for {expected}")
            }
            ValidationError::Model(e) => write!(f, "invalid credential contents: {e}"),
        }
    }
}

impl std::error::Error for ValidationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValidationError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ValidationError {
    fn from(e: ModelError) -> Self {
        ValidationError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_crypto::KeyFingerprint;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::InvalidName("bad name".into());
        assert!(e.to_string().starts_with("invalid name"));
        let v = ValidationError::Expired {
            at: Timestamp(5),
            now: Timestamp(9),
        };
        assert!(v.to_string().contains("t5"));
        let w = ValidationError::WrongSigner {
            expected: EntityId(KeyFingerprint([0; 32])),
            got: EntityId(KeyFingerprint([1; 32])),
        };
        assert!(w.to_string().contains("signed"));
    }

    #[test]
    fn model_error_converts_and_sources() {
        use std::error::Error;
        let v: ValidationError = ModelError::SelfLoop("x".into()).into();
        assert!(v.source().is_some());
        assert!(ValidationError::BadSignature.source().is_none());
    }
}
