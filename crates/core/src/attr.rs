//! Valued attributes: scalar modulation of access levels along delegation
//! chains (paper §3.2.1).
//!
//! Each attribute lives in an entity's namespace (disjoint from roles) and
//! is bound to a **single monotone operator** so that "no entity is able to
//! delegate greater permissions than they have themselves":
//!
//! * [`AttrOp::Subtract`] — subtract a positive quantity (operand default 0),
//! * [`AttrOp::Scale`] — multiply by a factor in `[0, 1]` (default 1),
//! * [`AttrOp::Min`] — running minimum along the chain (default `+∞`).
//!
//! A delegation carries zero or more [`AttrClause`]s. Accumulating clauses
//! from the *object end of a chain toward the subject* yields an
//! [`AttrAccumulator`]; applying that to the attribute's declared base
//! value (a [`AttrDeclaration`] signed by the namespace owner) yields the
//! effective access level. Monotonicity makes search pruning sound
//! (paper §4.2.3): extending a chain can never raise an effective value.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::entity::{EntityId, LocalEntity};
use crate::error::{ModelError, ValidationError};
use crate::wire::Encode;
use crate::Timestamp;
use drbac_crypto::{PublicKey, Signature};

/// A validated attribute name (same rules as role names: 1–64 chars of
/// `[A-Za-z0-9_-]`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct AttrName(String);

impl AttrName {
    /// Validates and wraps an attribute name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidName`] for empty, overlong, or
    /// non-`[A-Za-z0-9_-]` names.
    pub fn new(name: impl Into<String>) -> Result<Self, ModelError> {
        let name = name.into();
        if name.is_empty()
            || name.len() > 64
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            return Err(ModelError::InvalidName(name));
        }
        Ok(AttrName(name))
    }

    /// The validated string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl TryFrom<String> for AttrName {
    type Error = ModelError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        AttrName::new(s)
    }
}

impl From<AttrName> for String {
    fn from(a: AttrName) -> String {
        a.0
    }
}

/// The monotone operator bound to a valued attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttrOp {
    /// `-=`: subtract a positive quantity. Identity operand: 0.
    Subtract,
    /// `*=`: scale by a factor in `[0, 1]`. Identity operand: 1.
    Scale,
    /// `<=`: running minimum. Identity operand: `+∞`.
    Min,
}

impl AttrOp {
    /// The operand that leaves the accumulated value unchanged.
    pub fn identity(self) -> f64 {
        match self {
            AttrOp::Subtract => 0.0,
            AttrOp::Scale => 1.0,
            AttrOp::Min => f64::INFINITY,
        }
    }

    /// Validates an operand for this operator.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidOperand`] if the operand is outside the
    /// operator's monotone range (`Subtract`: `>= 0` finite; `Scale`:
    /// `[0, 1]`; `Min`: non-NaN).
    pub fn check_operand(self, operand: f64) -> Result<(), ModelError> {
        let ok = match self {
            AttrOp::Subtract => operand.is_finite() && operand >= 0.0,
            AttrOp::Scale => operand.is_finite() && (0.0..=1.0).contains(&operand),
            AttrOp::Min => !operand.is_nan(),
        };
        if ok {
            Ok(())
        } else {
            Err(ModelError::InvalidOperand { op: self, operand })
        }
    }

    /// Combines two accumulated aggregates of this operator.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            AttrOp::Subtract => a + b,
            AttrOp::Scale => a * b,
            AttrOp::Min => a.min(b),
        }
    }

    /// Applies an accumulated aggregate to a base value, yielding the
    /// effective access level (clamped at zero for `Subtract`).
    pub fn apply_to_base(self, base: f64, aggregate: f64) -> f64 {
        match self {
            AttrOp::Subtract => (base - aggregate).max(0.0),
            AttrOp::Scale => base * aggregate,
            AttrOp::Min => base.min(aggregate),
        }
    }

    /// The textual operator as written in the paper (`-=`, `*=`, `<=`).
    pub fn symbol(self) -> &'static str {
        match self {
            AttrOp::Subtract => "-=",
            AttrOp::Scale => "*=",
            AttrOp::Min => "<=",
        }
    }
}

impl fmt::Display for AttrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A reference to a valued attribute: namespace, name, and its bound
/// operator, e.g. `AirNet.BW <=`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrRef {
    entity: EntityId,
    name: AttrName,
    op: AttrOp,
}

impl AttrRef {
    /// Creates an attribute reference.
    pub fn new(entity: EntityId, name: AttrName, op: AttrOp) -> Self {
        AttrRef { entity, name, op }
    }

    /// The namespace-owning entity.
    pub fn entity(&self) -> EntityId {
        self.entity
    }

    /// The local name.
    pub fn name(&self) -> &AttrName {
        &self.name
    }

    /// The bound operator.
    pub fn op(&self) -> AttrOp {
        self.op
    }

    /// A clause setting this attribute with `operand`.
    ///
    /// # Errors
    ///
    /// See [`AttrOp::check_operand`].
    pub fn clause(&self, operand: f64) -> Result<AttrClause, ModelError> {
        AttrClause::new(self.clone(), operand)
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.entity, self.name)
    }
}

/// One `with A.attr <op>= <value>` clause on a delegation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrClause {
    attr: AttrRef,
    operand: f64,
}

impl AttrClause {
    /// Creates a validated clause.
    ///
    /// # Errors
    ///
    /// See [`AttrOp::check_operand`].
    pub fn new(attr: AttrRef, operand: f64) -> Result<Self, ModelError> {
        attr.op().check_operand(operand)?;
        Ok(AttrClause { attr, operand })
    }

    /// The attribute being set.
    pub fn attr(&self) -> &AttrRef {
        &self.attr
    }

    /// The operand value.
    pub fn operand(&self) -> f64 {
        self.operand
    }
}

impl fmt::Display for AttrClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.attr.op(), self.operand)
    }
}

/// Accumulated attribute modulation along a delegation chain.
///
/// Fold clauses in from the object end toward the subject with
/// [`AttrAccumulator::absorb_clause`]; combine chain segments with
/// [`AttrAccumulator::absorb`]. Both are commutative and associative per
/// attribute, which is what makes bidirectional search segments
/// composable.
///
/// # Example
///
/// ```
/// use drbac_core::{AttrAccumulator, AttrName, AttrOp, AttrRef, EntityId};
/// use drbac_crypto::KeyFingerprint;
///
/// let airnet = EntityId(KeyFingerprint([1; 32]));
/// let bw = AttrRef::new(airnet, AttrName::new("BW")?, AttrOp::Min);
/// let mut acc = AttrAccumulator::new();
/// acc.absorb_clause(&bw.clause(200.0)?);
/// acc.absorb_clause(&bw.clause(100.0)?);
/// assert_eq!(acc.aggregate(&bw), Some(100.0));
/// # Ok::<(), drbac_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AttrAccumulator {
    aggregates: BTreeMap<AttrRef, f64>,
}

impl AttrAccumulator {
    /// An empty accumulator (all attributes at their identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one clause.
    pub fn absorb_clause(&mut self, clause: &AttrClause) {
        let op = clause.attr().op();
        self.aggregates
            .entry(clause.attr().clone())
            .and_modify(|agg| *agg = op.combine(*agg, clause.operand()))
            .or_insert(clause.operand());
    }

    /// Absorbs every clause of another accumulator (chain composition).
    pub fn absorb(&mut self, other: &AttrAccumulator) {
        for (attr, agg) in &other.aggregates {
            let op = attr.op();
            self.aggregates
                .entry(attr.clone())
                .and_modify(|mine| *mine = op.combine(*mine, *agg))
                .or_insert(*agg);
        }
    }

    /// The aggregate for `attr`, if any clause touched it.
    pub fn aggregate(&self, attr: &AttrRef) -> Option<f64> {
        self.aggregates.get(attr).copied()
    }

    /// Effective value of `attr` given its declared `base`.
    pub fn effective(&self, attr: &AttrRef, base: f64) -> f64 {
        let agg = self.aggregate(attr).unwrap_or_else(|| attr.op().identity());
        attr.op().apply_to_base(base, agg)
    }

    /// Iterates over `(attribute, aggregate)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrRef, f64)> {
        self.aggregates.iter().map(|(a, v)| (a, *v))
    }

    /// `true` if no clause has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.aggregates.is_empty()
    }

    /// Checks every constraint, using `declarations` for base values.
    /// Attributes without a declaration use the operator's natural base
    /// (`Subtract`: 0, `Scale`: 1, `Min`: `+∞`).
    pub fn satisfies(&self, constraints: &[AttrConstraint], declarations: &DeclarationSet) -> bool {
        constraints.iter().all(|c| {
            let base = declarations
                .base(&c.attr)
                .unwrap_or_else(|| natural_base(c.attr.op()));
            self.effective(&c.attr, base) >= c.at_least
        })
    }
}

/// The base value assumed for an undeclared attribute.
fn natural_base(op: AttrOp) -> f64 {
    match op {
        AttrOp::Subtract => 0.0,
        AttrOp::Scale => 1.0,
        AttrOp::Min => f64::INFINITY,
    }
}

/// A lower-bound requirement on an attribute's effective value, used in
/// authorization queries ("at least 50 units of bandwidth").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrConstraint {
    /// The constrained attribute.
    pub attr: AttrRef,
    /// Minimum acceptable effective value.
    pub at_least: f64,
}

impl AttrConstraint {
    /// Requires `attr`'s effective value to be at least `at_least`.
    pub fn at_least(attr: AttrRef, at_least: f64) -> Self {
        AttrConstraint { attr, at_least }
    }
}

impl fmt::Display for AttrConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} >= {}", self.attr, self.at_least)
    }
}

/// A namespace owner's declaration of an attribute's base value
/// (e.g. "AirNet.storage starts at 50 units").
///
/// The paper's case study applies modifiers to base quantities (storage
/// `50 − 20`, hours `60 × 0.3`); declarations are where those bases come
/// from. They are signed by the namespace owner like any credential.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrDeclaration {
    /// The declared attribute (namespace, name, operator binding).
    pub attr: AttrRef,
    /// Base value modifiers apply to.
    pub base: f64,
    /// Optional expiry.
    pub expires: Option<Timestamp>,
}

impl AttrDeclaration {
    /// Creates a declaration.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidOperand`] if `base` is not finite.
    pub fn new(attr: AttrRef, base: f64) -> Result<Self, ModelError> {
        if !base.is_finite() {
            return Err(ModelError::InvalidOperand {
                op: attr.op(),
                operand: base,
            });
        }
        Ok(AttrDeclaration {
            attr,
            base,
            expires: None,
        })
    }

    /// Canonical signing bytes.
    pub fn wire_bytes(&self) -> Vec<u8> {
        let mut w = crate::wire::Writer::tagged(b"drbac-attrdecl-v1");
        self.attr.encode(&mut w);
        w.f64(self.base);
        w.opt_u64(self.expires.map(|t| t.0));
        w.finish()
    }
}

/// An [`AttrDeclaration`] signed by its namespace owner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignedAttrDeclaration {
    declaration: AttrDeclaration,
    issuer_key: PublicKey,
    signature: Signature,
}

impl SignedAttrDeclaration {
    /// Signs `declaration` with `issuer`, which must own the attribute's
    /// namespace.
    ///
    /// # Errors
    ///
    /// [`ValidationError::WrongSigner`] if `issuer` is not the namespace
    /// owner.
    pub fn sign(
        declaration: AttrDeclaration,
        issuer: &LocalEntity,
    ) -> Result<Self, ValidationError> {
        if issuer.id() != declaration.attr.entity() {
            return Err(ValidationError::WrongSigner {
                expected: declaration.attr.entity(),
                got: issuer.id(),
            });
        }
        let signature = issuer.sign_bytes(&declaration.wire_bytes());
        Ok(SignedAttrDeclaration {
            declaration,
            issuer_key: issuer.public_key().clone(),
            signature,
        })
    }

    /// The declaration body.
    pub fn declaration(&self) -> &AttrDeclaration {
        &self.declaration
    }

    /// Verifies signature, signer identity, and expiry at time `now`.
    ///
    /// # Errors
    ///
    /// [`ValidationError`] describing the first failed check.
    pub fn verify(&self, now: Timestamp) -> Result<(), ValidationError> {
        let owner = self.declaration.attr.entity();
        if EntityId(self.issuer_key.fingerprint()) != owner {
            return Err(ValidationError::WrongSigner {
                expected: owner,
                got: EntityId(self.issuer_key.fingerprint()),
            });
        }
        if !self
            .issuer_key
            .verify(&self.declaration.wire_bytes(), &self.signature)
        {
            return Err(ValidationError::BadSignature);
        }
        if let Some(exp) = self.declaration.expires {
            if now > exp {
                return Err(ValidationError::Expired { at: exp, now });
            }
        }
        Ok(())
    }
}

impl SignedAttrDeclaration {
    /// Serializes the signed declaration into its canonical wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::wire::Writer;
        let mut w = Writer::tagged(b"drbac-signed-attrdecl-v1");
        self.declaration.attr.encode(&mut w);
        w.f64(self.declaration.base);
        w.opt_u64(self.declaration.expires.map(|t| t.0));
        crate::wire::Encode::encode(&self.issuer_key, &mut w);
        crate::wire::Encode::encode(&self.signature, &mut w);
        w.finish()
    }

    /// Deserializes a declaration produced by
    /// [`SignedAttrDeclaration::to_bytes`]; call
    /// [`SignedAttrDeclaration::verify`] before trusting it.
    ///
    /// # Errors
    ///
    /// [`crate::wire::DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::wire::DecodeError> {
        use crate::wire::{Decode, DecodeError, Reader};
        let mut r = Reader::tagged(bytes, b"drbac-signed-attrdecl-v1")?;
        let attr = AttrRef::decode(&mut r)?;
        let base = r.f64()?;
        let expires = r.opt_u64()?.map(Timestamp);
        let issuer_key = PublicKey::decode(&mut r)?;
        let signature = Signature::decode(&mut r)?;
        r.finish()?;
        let mut declaration =
            AttrDeclaration::new(attr, base).map_err(|e| DecodeError::Invalid(e.to_string()))?;
        declaration.expires = expires;
        Ok(SignedAttrDeclaration {
            declaration,
            issuer_key,
            signature,
        })
    }
}

/// A set of verified attribute declarations, keyed by attribute.
#[derive(Debug, Clone, Default)]
pub struct DeclarationSet {
    bases: BTreeMap<AttrRef, f64>,
}

impl DeclarationSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a declaration (caller is responsible for having verified
    /// it; wallets do this on publication).
    pub fn insert(&mut self, decl: &AttrDeclaration) {
        self.bases.insert(decl.attr.clone(), decl.base);
    }

    /// The declared base for `attr`, if any.
    pub fn base(&self, attr: &AttrRef) -> Option<f64> {
        self.bases.get(attr).copied()
    }

    /// Number of declarations.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// `true` if no declarations are present.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }
}

/// A human-readable summary of effective attribute values for a proof
/// (what the AirNet server computes in paper §5, step 5).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AttrSummary {
    /// `(attribute, effective value)` pairs in deterministic order.
    pub values: Vec<(AttrRef, f64)>,
}

impl AttrSummary {
    /// Builds a summary from an accumulator and declarations: every
    /// attribute that is either declared or modulated appears.
    pub fn build(acc: &AttrAccumulator, decls: &DeclarationSet) -> Self {
        let mut values = BTreeMap::new();
        for (attr, base) in &decls.bases {
            values.insert(attr.clone(), acc.effective(attr, *base));
        }
        for (attr, _) in acc.iter() {
            values
                .entry(attr.clone())
                .or_insert_with(|| acc.effective(attr, natural_base(attr.op())));
        }
        AttrSummary {
            values: values.into_iter().collect(),
        }
    }

    /// The effective value for `attr`, if present.
    pub fn get(&self, attr: &AttrRef) -> Option<f64> {
        self.values.iter().find(|(a, _)| a == attr).map(|(_, v)| *v)
    }
}

impl fmt::Display for AttrSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (attr, v) in &self.values {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{attr}={v}")?;
            first = false;
        }
        if first {
            f.write_str("(no attributes)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_crypto::{KeyFingerprint, SchnorrGroup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ns(b: u8) -> EntityId {
        EntityId(KeyFingerprint([b; 32]))
    }

    fn attr(b: u8, name: &str, op: AttrOp) -> AttrRef {
        AttrRef::new(ns(b), AttrName::new(name).unwrap(), op)
    }

    #[test]
    fn operand_validation_per_op() {
        assert!(AttrOp::Subtract.check_operand(5.0).is_ok());
        assert!(AttrOp::Subtract.check_operand(-1.0).is_err());
        assert!(AttrOp::Subtract.check_operand(f64::INFINITY).is_err());
        assert!(AttrOp::Scale.check_operand(0.3).is_ok());
        assert!(AttrOp::Scale.check_operand(1.5).is_err());
        assert!(AttrOp::Scale.check_operand(-0.1).is_err());
        assert!(AttrOp::Min.check_operand(100.0).is_ok());
        assert!(AttrOp::Min.check_operand(f64::INFINITY).is_ok());
        assert!(AttrOp::Min.check_operand(f64::NAN).is_err());
    }

    #[test]
    fn case_study_arithmetic() {
        // Paper §5 step 5: BW = min(200, 100); storage = 50 − 20; hours = 60 × 0.3.
        let bw = attr(1, "BW", AttrOp::Min);
        let storage = attr(1, "storage", AttrOp::Subtract);
        let hours = attr(1, "hours", AttrOp::Scale);

        let mut acc = AttrAccumulator::new();
        acc.absorb_clause(&bw.clause(100.0).unwrap());
        acc.absorb_clause(&storage.clause(20.0).unwrap());
        acc.absorb_clause(&hours.clause(0.3).unwrap());

        assert_eq!(acc.effective(&bw, 200.0), 100.0);
        assert_eq!(acc.effective(&storage, 50.0), 30.0);
        assert!((acc.effective(&hours, 60.0) - 18.0).abs() < 1e-9);
    }

    #[test]
    fn subtract_clamps_at_zero() {
        let s = attr(1, "storage", AttrOp::Subtract);
        let mut acc = AttrAccumulator::new();
        acc.absorb_clause(&s.clause(80.0).unwrap());
        assert_eq!(acc.effective(&s, 50.0), 0.0);
    }

    #[test]
    fn accumulator_composition_matches_sequential() {
        let bw = attr(1, "BW", AttrOp::Min);
        let st = attr(1, "st", AttrOp::Subtract);
        let mut left = AttrAccumulator::new();
        left.absorb_clause(&bw.clause(150.0).unwrap());
        left.absorb_clause(&st.clause(5.0).unwrap());
        let mut right = AttrAccumulator::new();
        right.absorb_clause(&bw.clause(120.0).unwrap());
        right.absorb_clause(&st.clause(7.0).unwrap());

        let mut composed = left.clone();
        composed.absorb(&right);

        let mut sequential = AttrAccumulator::new();
        for c in [
            bw.clause(150.0),
            st.clause(5.0),
            bw.clause(120.0),
            st.clause(7.0),
        ] {
            sequential.absorb_clause(&c.unwrap());
        }
        assert_eq!(composed, sequential);
        assert_eq!(composed.aggregate(&bw), Some(120.0));
        assert_eq!(composed.aggregate(&st), Some(12.0));
    }

    #[test]
    fn untouched_attr_uses_identity() {
        let bw = attr(1, "BW", AttrOp::Min);
        let acc = AttrAccumulator::new();
        assert_eq!(acc.aggregate(&bw), None);
        assert_eq!(acc.effective(&bw, 200.0), 200.0);
        assert!(acc.is_empty());
    }

    #[test]
    fn constraints_with_declarations() {
        let bw = attr(1, "BW", AttrOp::Min);
        let mut decls = DeclarationSet::new();
        decls.insert(&AttrDeclaration::new(bw.clone(), 200.0).unwrap());

        let mut acc = AttrAccumulator::new();
        acc.absorb_clause(&bw.clause(100.0).unwrap());

        assert!(acc.satisfies(&[AttrConstraint::at_least(bw.clone(), 100.0)], &decls));
        assert!(!acc.satisfies(&[AttrConstraint::at_least(bw.clone(), 101.0)], &decls));
        assert!(acc.satisfies(&[], &decls));
    }

    #[test]
    fn undeclared_attrs_use_natural_base() {
        let bw = attr(1, "BW", AttrOp::Min);
        let st = attr(1, "st", AttrOp::Subtract);
        let decls = DeclarationSet::new();
        let mut acc = AttrAccumulator::new();
        acc.absorb_clause(&bw.clause(100.0).unwrap());
        // Min with no declaration: effective = aggregate itself.
        assert!(acc.satisfies(&[AttrConstraint::at_least(bw, 100.0)], &decls));
        // Subtract with no declaration: base 0, can't satisfy a positive bound.
        assert!(!acc.satisfies(&[AttrConstraint::at_least(st, 1.0)], &decls));
    }

    #[test]
    fn signed_declaration_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let airnet = LocalEntity::generate("AirNet", SchnorrGroup::test_256(), &mut rng);
        let stranger = LocalEntity::generate("Other", SchnorrGroup::test_256(), &mut rng);
        let bw = airnet.attr("BW", AttrOp::Min);
        let decl = AttrDeclaration::new(bw, 200.0).unwrap();
        // Only the namespace owner may sign.
        assert!(SignedAttrDeclaration::sign(decl.clone(), &stranger).is_err());
        let signed = SignedAttrDeclaration::sign(decl, &airnet).unwrap();
        assert!(signed.verify(Timestamp(0)).is_ok());
    }

    #[test]
    fn expired_declaration_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let airnet = LocalEntity::generate("AirNet", SchnorrGroup::test_256(), &mut rng);
        let mut decl = AttrDeclaration::new(airnet.attr("BW", AttrOp::Min), 200.0).unwrap();
        decl.expires = Some(Timestamp(10));
        let signed = SignedAttrDeclaration::sign(decl, &airnet).unwrap();
        assert!(signed.verify(Timestamp(10)).is_ok());
        assert!(matches!(
            signed.verify(Timestamp(11)),
            Err(ValidationError::Expired { .. })
        ));
    }

    #[test]
    fn summary_includes_declared_and_modulated() {
        let bw = attr(1, "BW", AttrOp::Min);
        let st = attr(1, "st", AttrOp::Subtract);
        let mut decls = DeclarationSet::new();
        decls.insert(&AttrDeclaration::new(bw.clone(), 200.0).unwrap());
        let mut acc = AttrAccumulator::new();
        acc.absorb_clause(&st.clause(5.0).unwrap());
        let summary = AttrSummary::build(&acc, &decls);
        assert_eq!(summary.get(&bw), Some(200.0));
        assert_eq!(summary.get(&st), Some(0.0)); // natural base 0, minus 5, clamped
        assert!(summary.to_string().contains("BW"));
    }

    #[test]
    fn invalid_clause_rejected() {
        let bw = attr(1, "BW", AttrOp::Scale);
        assert!(bw.clause(2.0).is_err());
        assert!(AttrDeclaration::new(bw, f64::NAN).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_op() -> impl Strategy<Value = AttrOp> {
            prop_oneof![
                Just(AttrOp::Subtract),
                Just(AttrOp::Scale),
                Just(AttrOp::Min)
            ]
        }

        fn arb_operand(op: AttrOp) -> BoxedStrategy<f64> {
            match op {
                AttrOp::Subtract => (0.0..1000.0f64).boxed(),
                AttrOp::Scale => (0.0..=1.0f64).boxed(),
                AttrOp::Min => (0.0..1000.0f64).boxed(),
            }
        }

        proptest! {
            /// Monotonicity (paper §3.2.1): absorbing another clause can
            /// never increase an effective value.
            #[test]
            fn absorbing_never_increases(
                op in arb_op(),
                base in 0.0..1000.0f64,
                operands in prop::collection::vec(0.0..1000.0f64, 1..8),
            ) {
                let a = attr(1, "x", op);
                let mut acc = AttrAccumulator::new();
                let mut last = acc.effective(&a, base);
                for raw in operands {
                    let operand = match op {
                        AttrOp::Scale => raw / 1000.0, // into [0,1]
                        _ => raw,
                    };
                    acc.absorb_clause(&a.clause(operand).unwrap());
                    let now = acc.effective(&a, base);
                    prop_assert!(now <= last + 1e-9, "effective value rose: {last} -> {now}");
                    last = now;
                }
            }

            /// Segment composition is order-insensitive per attribute.
            #[test]
            fn absorb_is_commutative(
                op in arb_op(),
                xs in prop::collection::vec(0.0..100.0f64, 1..5),
                ys in prop::collection::vec(0.0..100.0f64, 1..5),
            ) {
                let a = attr(1, "x", op);
                let build = |vals: &[f64]| {
                    let mut acc = AttrAccumulator::new();
                    for &v in vals {
                        let v = if op == AttrOp::Scale { v / 100.0 } else { v };
                        acc.absorb_clause(&a.clause(v).unwrap());
                    }
                    acc
                };
                let (l, r) = (build(&xs), build(&ys));
                let mut lr = l.clone();
                lr.absorb(&r);
                let mut rl = r.clone();
                rl.absorb(&l);
                let (va, vb) = (lr.aggregate(&a).unwrap(), rl.aggregate(&a).unwrap());
                prop_assert!((va - vb).abs() < 1e-6);
            }

            #[test]
            fn operand_validation_total(op in arb_op(), v in arb_operand(AttrOp::Min)) {
                // check_operand never panics for any finite input
                let _ = op.check_operand(v);
            }
        }
    }
}
