//! Textual syntax for delegations: the paper's bracket notation, parsed
//! and rendered with human-readable entity names.
//!
//! The paper writes delegations as
//!
//! ```text
//! [Maria -> BigISP.member] Mark
//! [BigISP.memberServices -> BigISP.member'] BigISP
//! [BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20] Sheila
//! [AirNet.mktg -> AirNet.storage -= '] AirNet
//! ```
//!
//! [`parse_delegation`] turns that notation (plus optional
//! `<expiry: N>` / `<depth: N>` annotations) into a [`Delegation`] body,
//! resolving names through a [`SyntaxContext`]; [`render_delegation`]
//! does the reverse. The arrow may be written `->` or `→`.
//!
//! # Example
//!
//! ```
//! use drbac_core::syntax::{parse_delegation, SyntaxContext};
//! use drbac_core::{DelegationKind, LocalEntity};
//! use drbac_crypto::SchnorrGroup;
//! # use rand::SeedableRng;
//! # let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! # let g = SchnorrGroup::test_256();
//! let big_isp = LocalEntity::generate("BigISP", g.clone(), &mut rng);
//! let mark = LocalEntity::generate("Mark", g.clone(), &mut rng);
//! let maria = LocalEntity::generate("Maria", g, &mut rng);
//!
//! let mut ctx = SyntaxContext::new();
//! for e in [&big_isp, &mark, &maria] {
//!     ctx.register_local(e);
//! }
//! let d = parse_delegation("[Maria -> BigISP.member] Mark", &ctx)?;
//! assert_eq!(d.kind(), DelegationKind::ThirdParty);
//! let cert = drbac_core::SignedDelegation::sign(d, &mark)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::attr::{AttrName, AttrOp, AttrRef};
use crate::delegation::{Delegation, DelegationBuilder};
use crate::entity::{EntityId, LocalEntity};
use crate::role::RoleName;
use crate::{Node, Timestamp};

/// Error parsing the textual delegation syntax.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntaxError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the problem was noticed.
    pub at: usize,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for SyntaxError {}

/// Name-resolution context: maps display names to entity identities and
/// remembers each attribute's operator binding.
#[derive(Debug, Clone, Default)]
pub struct SyntaxContext {
    entities: HashMap<String, EntityId>,
    reverse: HashMap<EntityId, String>,
    attr_ops: HashMap<(EntityId, String), AttrOp>,
}

impl SyntaxContext {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entity under a display name.
    pub fn register(&mut self, name: impl Into<String>, entity: EntityId) {
        let name = name.into();
        self.reverse.insert(entity, name.clone());
        self.entities.insert(name, entity);
    }

    /// Registers a [`LocalEntity`] under its own display name.
    pub fn register_local(&mut self, entity: &LocalEntity) {
        self.register(entity.name().to_string(), entity.id());
    }

    /// Resolves a display name.
    pub fn entity(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name).copied()
    }

    /// The display name for an entity, if registered.
    pub fn name_of(&self, entity: EntityId) -> Option<&str> {
        self.reverse.get(&entity).map(String::as_str)
    }

    /// Records an attribute's operator binding so clauses may omit
    /// explicit context. (Clauses carry the operator inline, so this is
    /// consistency-checked rather than required.)
    pub fn register_attr(&mut self, entity: EntityId, attr: impl Into<String>, op: AttrOp) {
        self.attr_ops.insert((entity, attr.into()), op);
    }
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> SyntaxError {
        SyntaxError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), SyntaxError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected {token:?}")))
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }

    /// A name token: `[A-Za-z0-9_-]+`.
    fn name(&mut self) -> Result<&'a str, SyntaxError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.error("expected a name"));
        }
        // `-` also begins the `-=` operator and `->` arrow: stop a name
        // before those.
        let mut end = end;
        if let Some(dash) = rest[..end].find("-=") {
            end = dash;
        }
        if let Some(dash) = rest[..end].find("->") {
            end = dash;
        }
        if end == 0 {
            return Err(self.error("expected a name"));
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    fn number(&mut self) -> Result<f64, SyntaxError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_digit() || *c == '.' || *c == '-' || *c == '+'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let slice = &rest[..end];
        let value: f64 = slice.parse().map_err(|_| self.error("expected a number"))?;
        self.pos += end;
        Ok(value)
    }

    fn arrow(&mut self) -> Result<(), SyntaxError> {
        if self.eat("->") || self.eat("→") || self.eat("=>") {
            Ok(())
        } else {
            Err(self.error("expected '->'"))
        }
    }

    fn attr_op(&mut self) -> Option<AttrOp> {
        if self.eat("-=") {
            Some(AttrOp::Subtract)
        } else if self.eat("*=") {
            Some(AttrOp::Scale)
        } else if self.eat("<=") {
            Some(AttrOp::Min)
        } else {
            None
        }
    }
}

/// Parses a node: `Entity`, `Entity.role`, `Entity.role'`, or the
/// attribute-assignment form `Entity.attr <op>= '`.
pub fn parse_node(input: &str, ctx: &SyntaxContext) -> Result<Node, SyntaxError> {
    let mut c = Cursor::new(input);
    let node = node(&mut c, ctx)?;
    if !c.at_end() {
        return Err(c.error("unexpected trailing input"));
    }
    Ok(node)
}

fn node(c: &mut Cursor<'_>, ctx: &SyntaxContext) -> Result<Node, SyntaxError> {
    let entity_name = c.name()?;
    let entity = ctx
        .entity(entity_name)
        .ok_or_else(|| c.error(format!("unknown entity {entity_name:?}")))?;
    if !c.eat(".") {
        return Ok(Node::Entity(entity));
    }
    let local = c.name()?;
    // Attribute-assignment object: `E.attr <op>= '`.
    let save = c.pos;
    if let Some(op) = c.attr_op() {
        if c.eat("'") {
            let attr_name = AttrName::new(local).map_err(|e| c.error(e.to_string()))?;
            return Ok(Node::AttrAdmin(AttrRef::new(entity, attr_name, op)));
        }
        c.pos = save; // it was a clause operator, not an admin node
    }
    let role_name = RoleName::new(local).map_err(|e| c.error(e.to_string()))?;
    let role = crate::Role::new(entity, role_name);
    if c.eat("'") {
        Ok(Node::RoleAdmin(role))
    } else {
        Ok(Node::Role(role))
    }
}

/// Parses a full delegation in the paper's syntax (see module docs).
///
/// # Errors
///
/// [`SyntaxError`] with a byte offset for malformed input, unknown
/// names, out-of-range operands, or invalid structure (entity object,
/// self-loop).
pub fn parse_delegation(input: &str, ctx: &SyntaxContext) -> Result<Delegation, SyntaxError> {
    let mut c = Cursor::new(input);
    c.expect("[")?;
    let subject = node(&mut c, ctx)?;
    c.arrow()?;
    let object = node(&mut c, ctx)?;

    let mut clauses: Vec<(AttrRef, f64)> = Vec::new();
    if c.eat("with") {
        loop {
            let entity_name = c.name()?;
            let entity = ctx
                .entity(entity_name)
                .ok_or_else(|| c.error(format!("unknown entity {entity_name:?}")))?;
            c.expect(".")?;
            let attr_name = c.name()?;
            let op = c
                .attr_op()
                .ok_or_else(|| c.error("expected '-=', '*=' or '<='"))?;
            let value = c.number()?;
            let attr_name = AttrName::new(attr_name).map_err(|e| c.error(e.to_string()))?;
            if let Some(&declared) = ctx.attr_ops.get(&(entity, attr_name.as_str().to_string())) {
                if declared != op {
                    return Err(c.error(format!(
                        "attribute {attr_name} is bound to operator {declared}, not {op}"
                    )));
                }
            }
            clauses.push((AttrRef::new(entity, attr_name, op), value));
            if !c.eat("and") {
                break;
            }
        }
    }

    let mut expires: Option<Timestamp> = None;
    let mut depth: Option<u64> = None;
    while c.eat("<") {
        if c.eat("expiry:") {
            expires = Some(Timestamp(c.number()? as u64));
        } else if c.eat("depth:") {
            depth = Some(c.number()? as u64);
        } else {
            return Err(c.error("expected 'expiry:' or 'depth:' annotation"));
        }
        c.expect(">")?;
    }

    c.expect("]")?;
    let issuer_name = c.name()?;
    let issuer = ctx
        .entity(issuer_name)
        .ok_or_else(|| c.error(format!("unknown entity {issuer_name:?}")))?;
    if !c.at_end() {
        return Err(c.error("unexpected trailing input"));
    }

    let mut builder = DelegationBuilder::new(subject, object, issuer).map_err(|e| SyntaxError {
        message: e.to_string(),
        at: 0,
    })?;
    for (attr, value) in clauses {
        builder = builder.with_attr(attr, value).map_err(|e| SyntaxError {
            message: e.to_string(),
            at: 0,
        })?;
    }
    if let Some(at) = expires {
        builder = builder.expires(at);
    }
    if let Some(d) = depth {
        builder = builder.max_extension_depth(d);
    }
    Ok(builder.build())
}

fn render_node(node: &Node, ctx: &SyntaxContext) -> String {
    let name = |e: EntityId| {
        ctx.name_of(e)
            .map(str::to_string)
            .unwrap_or_else(|| e.to_string())
    };
    match node {
        Node::Entity(e) => name(*e),
        Node::Role(r) => format!("{}.{}", name(r.entity()), r.name()),
        Node::RoleAdmin(r) => format!("{}.{}'", name(r.entity()), r.name()),
        Node::AttrAdmin(a) => format!("{}.{} {} '", name(a.entity()), a.name(), a.op()),
    }
}

/// Renders a delegation in the paper's syntax with display names from
/// `ctx` (falling back to fingerprints for unregistered entities).
/// `parse_delegation` ∘ `render_delegation` is the identity for
/// registered names (see the round-trip tests).
pub fn render_delegation(d: &Delegation, ctx: &SyntaxContext) -> String {
    let name = |e: EntityId| {
        ctx.name_of(e)
            .map(str::to_string)
            .unwrap_or_else(|| e.to_string())
    };
    let mut out = format!(
        "[{} -> {}",
        render_node(d.subject(), ctx),
        render_node(d.object(), ctx)
    );
    for (i, clause) in d.clauses().iter().enumerate() {
        let kw = if i == 0 { "with" } else { "and" };
        out.push_str(&format!(
            " {kw} {}.{} {} {}",
            name(clause.attr().entity()),
            clause.attr().name(),
            clause.attr().op(),
            clause.operand()
        ));
    }
    if let Some(at) = d.expires() {
        out.push_str(&format!(" <expiry: {}>", at.0));
    }
    if let Some(depth) = d.max_extension_depth() {
        out.push_str(&format!(" <depth: {depth}>"));
    }
    out.push_str(&format!("] {}", name(d.issuer())));
    out
}

/// Renders a proof as an indented tree: the primary chain step by step,
/// with each step's support proofs nested beneath it.
///
/// ```text
/// Maria => AirNet.access
/// ├─ [Maria -> BigISP.member] Mark
/// │    support: Mark => BigISP.member'
/// │    ├─ [Mark -> BigISP.memberServices] BigISP
/// │    └─ [BigISP.memberServices -> BigISP.member'] BigISP
/// └─ ...
/// ```
pub fn render_proof(proof: &crate::Proof, ctx: &SyntaxContext) -> String {
    let mut out = format!(
        "{} => {}\n",
        render_node(proof.subject(), ctx),
        render_node(proof.object(), ctx)
    );
    render_steps(proof, ctx, "", &mut out);
    out
}

fn render_steps(proof: &crate::Proof, ctx: &SyntaxContext, indent: &str, out: &mut String) {
    let steps = proof.steps();
    for (i, step) in steps.iter().enumerate() {
        let last = i + 1 == steps.len();
        let branch = if last { "└─" } else { "├─" };
        let cont = if last { "   " } else { "│  " };
        out.push_str(indent);
        out.push_str(branch);
        out.push(' ');
        out.push_str(&render_delegation(step.cert().delegation(), ctx));
        out.push('\n');
        for support in step.supports() {
            out.push_str(indent);
            out.push_str(cont);
            out.push_str(&format!(
                " support: {} => {}\n",
                render_node(support.subject(), ctx),
                render_node(support.object(), ctx)
            ));
            let nested = format!("{indent}{cont} ");
            render_steps(support, ctx, &nested, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelegationKind;
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fx {
        big_isp: LocalEntity,
        air_net: LocalEntity,
        mark: LocalEntity,
        maria: LocalEntity,
        sheila: LocalEntity,
        ctx: SyntaxContext,
    }

    fn fx() -> Fx {
        let mut rng = StdRng::seed_from_u64(1);
        let g = SchnorrGroup::test_256();
        let big_isp = LocalEntity::generate("BigISP", g.clone(), &mut rng);
        let air_net = LocalEntity::generate("AirNet", g.clone(), &mut rng);
        let mark = LocalEntity::generate("Mark", g.clone(), &mut rng);
        let maria = LocalEntity::generate("Maria", g.clone(), &mut rng);
        let sheila = LocalEntity::generate("Sheila", g, &mut rng);
        let mut ctx = SyntaxContext::new();
        for e in [&big_isp, &air_net, &mark, &maria, &sheila] {
            ctx.register_local(e);
        }
        Fx {
            big_isp,
            air_net,
            mark,
            maria,
            sheila,
            ctx,
        }
    }

    #[test]
    fn parses_the_papers_table1_examples() {
        let f = fx();
        // (1) [Mark -> BigISP.memberServices] BigISP
        let d = parse_delegation("[Mark -> BigISP.memberServices] BigISP", &f.ctx).unwrap();
        assert_eq!(d.subject(), &Node::entity(&f.mark));
        assert_eq!(d.kind(), DelegationKind::SelfCertified);
        // (2) [BigISP.memberServices -> BigISP.member'] BigISP
        let d =
            parse_delegation("[BigISP.memberServices -> BigISP.member'] BigISP", &f.ctx).unwrap();
        assert!(d.is_assignment());
        assert_eq!(d.object(), &Node::role_admin(f.big_isp.role("member")));
        // (3) [Maria -> BigISP.member] Mark
        let d = parse_delegation("[Maria -> BigISP.member] Mark", &f.ctx).unwrap();
        assert_eq!(d.kind(), DelegationKind::ThirdParty);
        assert_eq!(d.issuer(), f.mark.id());
    }

    #[test]
    fn parses_the_papers_table2_examples() {
        let f = fx();
        // (4) with valued attributes.
        let d = parse_delegation(
            "[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20] Sheila",
            &f.ctx,
        )
        .unwrap();
        assert_eq!(d.clauses().len(), 2);
        assert_eq!(d.clauses()[0].attr().op(), AttrOp::Min);
        assert_eq!(d.clauses()[0].operand(), 100.0);
        assert_eq!(d.clauses()[1].attr().op(), AttrOp::Subtract);
        assert_eq!(d.issuer(), f.sheila.id());

        // (5) attribute-assignment: [AirNet.mktg -> AirNet.storage -= '] AirNet
        let d = parse_delegation("[AirNet.mktg -> AirNet.storage -= '] AirNet", &f.ctx).unwrap();
        assert!(matches!(d.object(), Node::AttrAdmin(a) if a.op() == AttrOp::Subtract));
        assert_eq!(d.kind(), DelegationKind::SelfCertified);
    }

    #[test]
    fn parses_scale_and_unicode_arrow_and_annotations() {
        let f = fx();
        let d = parse_delegation(
            "[BigISP.member → AirNet.member with AirNet.hours *= 0.3 <expiry: 500> <depth: 2>] Sheila",
            &f.ctx,
        )
        .unwrap();
        assert_eq!(d.clauses()[0].attr().op(), AttrOp::Scale);
        assert_eq!(d.expires(), Some(Timestamp(500)));
        assert_eq!(d.max_extension_depth(), Some(2));
    }

    #[test]
    fn render_parse_round_trip() {
        let f = fx();
        let inputs = [
            "[Maria -> BigISP.member] Mark",
            "[BigISP.memberServices -> BigISP.member'] BigISP",
            "[AirNet.mktg -> AirNet.storage -= '] AirNet",
            "[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20] Sheila",
            "[Maria -> BigISP.member <expiry: 99> <depth: 1>] Mark",
        ];
        for input in inputs {
            let d = parse_delegation(input, &f.ctx).unwrap();
            let rendered = render_delegation(&d, &f.ctx);
            let reparsed = parse_delegation(&rendered, &f.ctx).unwrap();
            assert_eq!(
                d, reparsed,
                "round trip failed for {input:?} -> {rendered:?}"
            );
        }
    }

    #[test]
    fn render_proof_shows_nested_supports() {
        let f = fx();
        let member = f.big_isp.role("member");
        let services = f.big_isp.role("memberServices");
        let d1 = crate::SignedDelegation::sign(
            parse_delegation("[Mark -> BigISP.memberServices] BigISP", &f.ctx).unwrap(),
            &f.big_isp,
        )
        .unwrap();
        let d2 = crate::SignedDelegation::sign(
            parse_delegation("[BigISP.memberServices -> BigISP.member'] BigISP", &f.ctx).unwrap(),
            &f.big_isp,
        )
        .unwrap();
        let support =
            crate::Proof::from_steps(vec![crate::ProofStep::new(d1), crate::ProofStep::new(d2)])
                .unwrap();
        let d3 = crate::SignedDelegation::sign(
            parse_delegation("[Maria -> BigISP.member] Mark", &f.ctx).unwrap(),
            &f.mark,
        )
        .unwrap();
        let proof = crate::Proof::from_steps(vec![crate::ProofStep::new(d3).with_support(support)])
            .unwrap();

        let rendered = render_proof(&proof, &f.ctx);
        assert!(
            rendered.starts_with("Maria => BigISP.member\n"),
            "{rendered}"
        );
        assert!(
            rendered.contains("└─ [Maria -> BigISP.member] Mark"),
            "{rendered}"
        );
        assert!(
            rendered.contains("support: Mark => BigISP.member'"),
            "{rendered}"
        );
        assert!(
            rendered.contains("├─ [Mark -> BigISP.memberServices] BigISP"),
            "{rendered}"
        );
        let _ = (member, services);
    }

    #[test]
    fn parsed_delegations_sign_and_validate() {
        let f = fx();
        let d = parse_delegation("[Maria -> BigISP.member] BigISP", &f.ctx).unwrap();
        let cert = crate::SignedDelegation::sign(d, &f.big_isp).unwrap();
        assert!(cert.verify(Timestamp(0)).is_ok());
    }

    #[test]
    fn error_positions_and_messages() {
        let f = fx();
        let err = parse_delegation("[Nobody -> BigISP.member] BigISP", &f.ctx).unwrap_err();
        assert!(err.message.contains("unknown entity"), "{err}");
        let err = parse_delegation("[Maria BigISP.member] BigISP", &f.ctx).unwrap_err();
        assert!(err.message.contains("->"), "{err}");
        let err = parse_delegation("[Maria -> Maria] BigISP", &f.ctx).unwrap_err();
        assert!(err.message.contains("role"), "{err}");
        let err = parse_delegation("[Maria -> BigISP.member] BigISP trailing", &f.ctx).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
        let err = parse_delegation(
            "[Maria -> AirNet.member with AirNet.hours *= 1.5] Sheila",
            &f.ctx,
        )
        .unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn attr_op_binding_consistency_checked() {
        let mut f = fx();
        f.ctx.register_attr(f.air_net.id(), "BW", AttrOp::Min);
        // Using the declared operator parses…
        assert!(parse_delegation(
            "[BigISP.member -> AirNet.member with AirNet.BW <= 50] Sheila",
            &f.ctx
        )
        .is_ok());
        // …a different operator is rejected (single-operator rule).
        let err = parse_delegation(
            "[BigISP.member -> AirNet.member with AirNet.BW -= 50] Sheila",
            &f.ctx,
        )
        .unwrap_err();
        assert!(err.message.contains("bound to operator"), "{err}");
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Arbitrary input never panics the parser.
            #[test]
            fn parser_never_panics(input in ".{0,120}") {
                let f = fx();
                let _ = parse_delegation(&input, &f.ctx);
                let _ = parse_node(&input, &f.ctx);
            }

            /// Bracket-soup near-miss inputs never panic either.
            #[test]
            fn bracket_soup_never_panics(
                parts in prop::collection::vec(
                    prop::sample::select(vec![
                        "[", "]", "->", "→", "with", "and", "Maria", "BigISP",
                        ".", "'", "member", "<=", "-=", "*=", "100", "<expiry:",
                        "<depth:", ">", " ",
                    ]),
                    0..20,
                )
            ) {
                let f = fx();
                let input = parts.concat();
                let _ = parse_delegation(&input, &f.ctx);
            }
        }
    }

    #[test]
    fn parse_node_forms() {
        let f = fx();
        assert_eq!(parse_node("Maria", &f.ctx).unwrap(), Node::entity(&f.maria));
        assert_eq!(
            parse_node("BigISP.member", &f.ctx).unwrap(),
            Node::role(f.big_isp.role("member"))
        );
        assert_eq!(
            parse_node("BigISP.member'", &f.ctx).unwrap(),
            Node::role_admin(f.big_isp.role("member"))
        );
        assert!(matches!(
            parse_node("AirNet.BW <= '", &f.ctx).unwrap(),
            Node::AttrAdmin(_)
        ));
        assert!(parse_node("Maria junk", &f.ctx).is_err());
    }
}
