//! Logical time.
//!
//! The paper's infrastructure depends on time in three places: credential
//! *expiration dates*, discovery-tag *TTLs* for cached copies, and the
//! ordering of events in the distributed walkthrough of Figure 2. A shared
//! logical clock keeps all three deterministic in tests and simulations;
//! nothing in the workspace reads the wall clock.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A point in logical time, in ticks since the epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A duration in logical ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ticks(pub u64);

impl Timestamp {
    /// The epoch (tick 0).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// This timestamp advanced by `d` ticks (saturating).
    pub fn after(self, d: Ticks) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Ticks elapsed from `earlier` to `self` (saturating at zero).
    pub fn since(self, earlier: Timestamp) -> Ticks {
        Ticks(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

/// A shared, monotonically advancing logical clock.
///
/// Cloning shares the underlying counter, so a simulation hands one clock
/// to every wallet and host.
///
/// # Example
///
/// ```
/// use drbac_core::{SimClock, Ticks};
///
/// let clock = SimClock::new();
/// let observer = clock.clone();
/// clock.advance(Ticks(30));
/// assert_eq!(observer.now().0, 30);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    ticks: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at `t`.
    pub fn starting_at(t: Timestamp) -> Self {
        SimClock {
            ticks: Arc::new(AtomicU64::new(t.0)),
        }
    }

    /// The current logical time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.ticks.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: Ticks) -> Timestamp {
        Timestamp(self.ticks.fetch_add(d.0, Ordering::SeqCst) + d.0)
    }

    /// Moves the clock forward to `t` if `t` is in the future; returns the
    /// current time either way. The clock never moves backwards.
    pub fn advance_to(&self, t: Timestamp) -> Timestamp {
        self.ticks.fetch_max(t.0, Ordering::SeqCst);
        self.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let c1 = SimClock::new();
        let c2 = c1.clone();
        c1.advance(Ticks(5));
        c2.advance(Ticks(7));
        assert_eq!(c1.now(), Timestamp(12));
        assert_eq!(c2.now(), Timestamp(12));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::starting_at(Timestamp(100));
        assert_eq!(c.advance_to(Timestamp(50)), Timestamp(100));
        assert_eq!(c.advance_to(Timestamp(150)), Timestamp(150));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(10);
        assert_eq!(t.after(Ticks(5)), Timestamp(15));
        assert_eq!(Timestamp(15).since(t), Ticks(5));
        assert_eq!(t.since(Timestamp(15)), Ticks(0)); // saturates
        assert_eq!(Timestamp(u64::MAX).after(Ticks(10)), Timestamp(u64::MAX));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Timestamp(42).to_string(), "t42");
        assert_eq!(Ticks(30).to_string(), "30 ticks");
    }
}
