//! Canonical wire encoding for signed credentials.
//!
//! Signatures must bind to a byte representation that is identical on
//! every host, so credentials are encoded with this deterministic,
//! length-prefixed binary format rather than serde (whose output varies by
//! format). Serde derives on model types exist separately for storage and
//! interchange; *signing bytes always come from here*.

use std::fmt;

use drbac_crypto::KeyFingerprint;

use crate::attr::{AttrClause, AttrConstraint, AttrName, AttrOp, AttrRef};
use crate::entity::EntityId;
use crate::role::{Role, RoleName};
use crate::tag::{DiscoveryTag, ObjectFlag, SubjectFlag, WalletAddr};
use crate::Node;

/// Deterministic encoder. Create with [`Writer::tagged`], append fields in
/// a fixed order, and [`Writer::finish`].
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts a buffer with a domain-separation tag.
    pub fn tagged(tag: &[u8]) -> Writer {
        let mut w = Writer::default();
        w.bytes(tag);
        w
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an IEEE-754 bit pattern (big-endian).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// Appends an optional u64 as presence byte + value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Appends a length-prefixed list of encodable items.
    pub fn list<T: Encode>(&mut self, items: &[T]) {
        self.u64(items.len() as u64);
        for item in items {
            item.encode(self);
        }
    }

    /// Appends an optional encodable item.
    pub fn opt<T: Encode>(&mut self, item: Option<&T>) {
        match item {
            None => self.u8(0),
            Some(item) => {
                self.u8(1);
                item.encode(self);
            }
        }
    }

    /// Finishes and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Types with a canonical wire encoding.
pub trait Encode {
    /// Appends this value's canonical encoding to `w`.
    fn encode(&self, w: &mut Writer);
}

impl Encode for EntityId {
    fn encode(&self, w: &mut Writer) {
        w.bytes(self.0.as_bytes());
    }
}

impl Encode for RoleName {
    fn encode(&self, w: &mut Writer) {
        w.str(self.as_str());
    }
}

impl Encode for Role {
    fn encode(&self, w: &mut Writer) {
        self.entity().encode(w);
        self.name().encode(w);
    }
}

impl Encode for AttrName {
    fn encode(&self, w: &mut Writer) {
        w.str(self.as_str());
    }
}

impl Encode for AttrOp {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            AttrOp::Subtract => 1,
            AttrOp::Scale => 2,
            AttrOp::Min => 3,
        });
    }
}

impl Encode for AttrRef {
    fn encode(&self, w: &mut Writer) {
        self.entity().encode(w);
        self.name().encode(w);
        self.op().encode(w);
    }
}

impl Encode for AttrClause {
    fn encode(&self, w: &mut Writer) {
        self.attr().encode(w);
        w.f64(self.operand());
    }
}

impl Encode for AttrConstraint {
    fn encode(&self, w: &mut Writer) {
        self.attr.encode(w);
        w.f64(self.at_least);
    }
}

impl Encode for Node {
    fn encode(&self, w: &mut Writer) {
        match self {
            Node::Entity(e) => {
                w.u8(1);
                e.encode(w);
            }
            Node::Role(r) => {
                w.u8(2);
                r.encode(w);
            }
            Node::RoleAdmin(r) => {
                w.u8(3);
                r.encode(w);
            }
            Node::AttrAdmin(a) => {
                w.u8(4);
                a.encode(w);
            }
        }
    }
}

impl Encode for SubjectFlag {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            SubjectFlag::None => 0,
            SubjectFlag::Store => 1,
            SubjectFlag::Search => 2,
        });
    }
}

impl Encode for ObjectFlag {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            ObjectFlag::None => 0,
            ObjectFlag::Store => 1,
            ObjectFlag::Search => 2,
        });
    }
}

impl Encode for DiscoveryTag {
    fn encode(&self, w: &mut Writer) {
        w.str(self.home().as_str());
        w.opt(self.auth_role());
        w.u64(self.ttl().0);
        self.subject_flag().encode(w);
        self.object_flag().encode(w);
    }
}

/// Error decoding a canonical wire encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A discriminant byte had no meaning at this position.
    InvalidTag(u8),
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A decoded value violated a model invariant (bad name, operand out
    /// of the operator's range, …).
    Invalid(String),
    /// Bytes remained after the value was fully decoded.
    TrailingBytes(usize),
    /// The buffer's leading domain tag did not match.
    WrongDomainTag,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => f.write_str("unexpected end of input"),
            DecodeError::InvalidTag(t) => write!(f, "invalid discriminant byte {t:#04x}"),
            DecodeError::BadUtf8 => f.write_str("string field is not valid utf-8"),
            DecodeError::Invalid(m) => write!(f, "decoded value violates an invariant: {m}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::WrongDomainTag => f.write_str("domain tag mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over a canonical wire encoding; mirror of [`Writer`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Starts reading after checking the leading domain tag written by
    /// [`Writer::tagged`].
    ///
    /// # Errors
    ///
    /// [`DecodeError::WrongDomainTag`] on mismatch.
    pub fn tagged(buf: &'a [u8], tag: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let found = r.bytes()?;
        if found != tag {
            return Err(DecodeError::WrongDomainTag);
        }
        Ok(r)
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the input is fully consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TrailingBytes`] if anything remains.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("slice of 8")))
    }

    /// Reads an IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an optional u64 (presence byte + value).
    pub fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| DecodeError::UnexpectedEof)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads an optional decodable value.
    pub fn opt<T: Decode>(&mut self) -> Result<Option<T>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(self)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }

    /// Reads a length-prefixed list.
    pub fn list<T: Decode>(&mut self) -> Result<Vec<T>, DecodeError> {
        let len = self.u64()?;
        // Cap preallocation: each element costs at least one byte.
        let len = usize::try_from(len).map_err(|_| DecodeError::UnexpectedEof)?;
        if len > self.remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }
}

/// Types decodable from the canonical wire encoding; inverse of
/// [`Encode`].
pub trait Decode: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed or invariant-violating input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

impl Decode for EntityId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bytes = r.bytes()?;
        let arr: [u8; 32] = bytes
            .try_into()
            .map_err(|_| DecodeError::Invalid("fingerprint must be 32 bytes".into()))?;
        Ok(EntityId(KeyFingerprint(arr)))
    }
}

impl Decode for RoleName {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        RoleName::new(r.str()?).map_err(|e| DecodeError::Invalid(e.to_string()))
    }
}

impl Decode for Role {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Role::new(EntityId::decode(r)?, RoleName::decode(r)?))
    }
}

impl Decode for AttrName {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        AttrName::new(r.str()?).map_err(|e| DecodeError::Invalid(e.to_string()))
    }
}

impl Decode for AttrOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            1 => Ok(AttrOp::Subtract),
            2 => Ok(AttrOp::Scale),
            3 => Ok(AttrOp::Min),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Decode for AttrRef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AttrRef::new(
            EntityId::decode(r)?,
            AttrName::decode(r)?,
            AttrOp::decode(r)?,
        ))
    }
}

impl Decode for AttrClause {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let attr = AttrRef::decode(r)?;
        let operand = r.f64()?;
        AttrClause::new(attr, operand).map_err(|e| DecodeError::Invalid(e.to_string()))
    }
}

impl Decode for AttrConstraint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let attr = AttrRef::decode(r)?;
        let at_least = r.f64()?;
        Ok(AttrConstraint { attr, at_least })
    }
}

impl Decode for Node {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            1 => Ok(Node::Entity(EntityId::decode(r)?)),
            2 => Ok(Node::Role(Role::decode(r)?)),
            3 => Ok(Node::RoleAdmin(Role::decode(r)?)),
            4 => Ok(Node::AttrAdmin(AttrRef::decode(r)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Decode for SubjectFlag {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(SubjectFlag::None),
            1 => Ok(SubjectFlag::Store),
            2 => Ok(SubjectFlag::Search),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Decode for ObjectFlag {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(ObjectFlag::None),
            1 => Ok(ObjectFlag::Store),
            2 => Ok(ObjectFlag::Search),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Encode for drbac_bignum::BigUint {
    fn encode(&self, w: &mut Writer) {
        w.bytes(&self.to_bytes_be());
    }
}

impl Decode for drbac_bignum::BigUint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(drbac_bignum::BigUint::from_bytes_be(r.bytes()?))
    }
}

impl Encode for drbac_crypto::GroupId {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            drbac_crypto::GroupId::Test256 => 1,
            drbac_crypto::GroupId::Modp2048 => 2,
            drbac_crypto::GroupId::Custom => 3,
        });
    }
}

impl Decode for drbac_crypto::GroupId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            1 => Ok(drbac_crypto::GroupId::Test256),
            2 => Ok(drbac_crypto::GroupId::Modp2048),
            3 => Ok(drbac_crypto::GroupId::Custom),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Encode for drbac_crypto::Signature {
    fn encode(&self, w: &mut Writer) {
        self.group_id().encode(w);
        self.e().encode(w);
        self.s().encode(w);
    }
}

impl Decode for drbac_crypto::Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let group = drbac_crypto::GroupId::decode(r)?;
        let e = drbac_bignum::BigUint::decode(r)?;
        let s = drbac_bignum::BigUint::decode(r)?;
        Ok(drbac_crypto::Signature::from_parts(group, e, s))
    }
}

impl Encode for drbac_crypto::PublicKey {
    fn encode(&self, w: &mut Writer) {
        let id = self.group().id();
        id.encode(w);
        if id == drbac_crypto::GroupId::Custom {
            self.group().p().encode(w);
            self.group().q().encode(w);
            self.group().g().encode(w);
        }
        self.y().encode(w);
    }
}

impl Decode for drbac_crypto::PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let id = drbac_crypto::GroupId::decode(r)?;
        let group = match id {
            drbac_crypto::GroupId::Test256 => drbac_crypto::SchnorrGroup::test_256(),
            drbac_crypto::GroupId::Modp2048 => drbac_crypto::SchnorrGroup::modp_2048(),
            drbac_crypto::GroupId::Custom => {
                let p = drbac_bignum::BigUint::decode(r)?;
                let q = drbac_bignum::BigUint::decode(r)?;
                let g = drbac_bignum::BigUint::decode(r)?;
                if p.is_even() || p.is_zero() {
                    return Err(DecodeError::Invalid(
                        "custom group modulus must be odd".into(),
                    ));
                }
                drbac_crypto::SchnorrGroup::custom_from_parts(p, q, g)
            }
        };
        let y = drbac_bignum::BigUint::decode(r)?;
        let key = drbac_crypto::PublicKey::from_parts(group, y);
        if !key.is_valid() {
            return Err(DecodeError::Invalid(
                "public key is not a valid subgroup element".into(),
            ));
        }
        Ok(key)
    }
}

impl Decode for DiscoveryTag {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let home = WalletAddr::new(r.str()?);
        let auth_role: Option<Role> = r.opt()?;
        let ttl = crate::Ticks(r.u64()?);
        let subject_flag = SubjectFlag::decode(r)?;
        let object_flag = ObjectFlag::decode(r)?;
        let mut tag = DiscoveryTag::new(home)
            .with_ttl(ttl)
            .with_subject_flag(subject_flag)
            .with_object_flag(object_flag);
        if let Some(role) = auth_role {
            tag = tag.with_auth_role(role);
        }
        Ok(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_crypto::KeyFingerprint;

    fn ns(b: u8) -> EntityId {
        EntityId(KeyFingerprint([b; 32]))
    }

    #[test]
    fn encoding_is_deterministic() {
        let role = Role::new(ns(1), RoleName::new("member").unwrap());
        let enc = |r: &Role| {
            let mut w = Writer::tagged(b"t");
            r.encode(&mut w);
            w.finish()
        };
        assert_eq!(enc(&role), enc(&role.clone()));
    }

    #[test]
    fn distinct_values_encode_distinctly() {
        let r1 = Node::role(Role::new(ns(1), RoleName::new("a").unwrap()));
        let r2 = Node::role_admin(Role::new(ns(1), RoleName::new("a").unwrap()));
        let enc = |n: &Node| {
            let mut w = Writer::default();
            n.encode(&mut w);
            w.finish()
        };
        // Tick mark must be visible in the encoding (R vs R').
        assert_ne!(enc(&r1), enc(&r2));
    }

    #[test]
    fn length_prefixing_prevents_ambiguity() {
        // ("ab", "c") must encode differently from ("a", "bc").
        let mut w1 = Writer::default();
        w1.str("ab");
        w1.str("c");
        let mut w2 = Writer::default();
        w2.str("a");
        w2.str("bc");
        assert_ne!(w1.finish(), w2.finish());
    }

    #[test]
    fn optional_and_list_encoding() {
        let mut w = Writer::default();
        w.opt_u64(None);
        w.opt_u64(Some(7));
        let role = Role::new(ns(1), RoleName::new("r").unwrap());
        w.list(&[role.clone(), role]);
        let out = w.finish();
        assert_eq!(out[0], 0); // None
        assert_eq!(out[1], 1); // Some
        assert_eq!(&out[2..10], &7u64.to_be_bytes());
    }

    #[test]
    fn reader_primitives_round_trip() {
        let mut w = Writer::tagged(b"t");
        w.u8(7);
        w.u64(0xdead_beef);
        w.f64(1.5);
        w.opt_u64(Some(3));
        w.opt_u64(None);
        w.bytes(b"abc");
        w.str("hello");
        let buf = w.finish();

        let mut r = Reader::tagged(&buf, b"t").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), 0xdead_beef);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert_eq!(r.opt_u64().unwrap(), Some(3));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert_eq!(r.str().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_malformed_input() {
        // Wrong domain tag.
        let buf = Writer::tagged(b"right").finish();
        assert_eq!(
            Reader::tagged(&buf, b"wrong").unwrap_err(),
            DecodeError::WrongDomainTag
        );

        // EOF inside a length-prefixed field.
        let mut w = Writer::default();
        w.u64(100); // claims 100 bytes follow
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap_err(), DecodeError::UnexpectedEof);

        // Invalid option tag.
        let mut r = Reader::new(&[2u8]);
        assert_eq!(r.opt_u64().unwrap_err(), DecodeError::InvalidTag(2));

        // Bad UTF-8.
        let mut w = Writer::default();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.str().unwrap_err(), DecodeError::BadUtf8);

        // Trailing bytes detected by finish().
        let r = Reader::new(&[0u8; 3]);
        assert_eq!(r.finish().unwrap_err(), DecodeError::TrailingBytes(3));

        // List length larger than the remaining input.
        let mut w = Writer::default();
        w.u64(u64::MAX);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.list::<Role>().unwrap_err(), DecodeError::UnexpectedEof);
    }

    #[test]
    fn decode_validates_model_invariants() {
        // A role name with an illegal character fails at decode.
        let mut w = Writer::default();
        w.bytes(&[1u8; 32]); // entity fingerprint
        w.str("has space");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(Role::decode(&mut r), Err(DecodeError::Invalid(_))));

        // A fingerprint of the wrong width fails.
        let mut w = Writer::default();
        w.bytes(&[1u8; 16]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(
            EntityId::decode(&mut r),
            Err(DecodeError::Invalid(_))
        ));

        // An attribute clause with an out-of-range operand fails.
        let mut w = Writer::default();
        let attr = AttrRef::new(ns(1), AttrName::new("bw").unwrap(), AttrOp::Scale);
        attr.encode(&mut w);
        w.f64(7.5); // scale > 1
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(
            AttrClause::decode(&mut r),
            Err(DecodeError::Invalid(_))
        ));
    }

    #[test]
    fn decode_error_messages_are_informative() {
        assert!(DecodeError::UnexpectedEof
            .to_string()
            .contains("end of input"));
        assert!(DecodeError::InvalidTag(9).to_string().contains("0x09"));
        assert!(DecodeError::TrailingBytes(4).to_string().contains('4'));
    }

    #[test]
    fn f64_encoding_distinguishes_sign_and_nan_bits() {
        let mut w1 = Writer::default();
        w1.f64(0.0);
        let mut w2 = Writer::default();
        w2.f64(-0.0);
        assert_ne!(w1.finish(), w2.finish());
    }
}
