//! Revocation notices.
//!
//! The paper monitors "the status of revocable credentials" through
//! delegation subscriptions; the status change itself is communicated by a
//! signed revocation notice from the original issuer. Wallets verify the
//! notice, drop or mark the delegation, and push the update to
//! subscribers.

use std::fmt;

use drbac_crypto::{PublicKey, Signature};
use serde::{Deserialize, Serialize};

use crate::cert::{DelegationId, SignedDelegation};
use crate::clock::Timestamp;
use crate::entity::{EntityId, LocalEntity};
use crate::error::ValidationError;
use crate::wire::{Encode, Writer};

/// An unsigned revocation body naming the delegation being withdrawn.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevocationNotice {
    /// The delegation being revoked.
    pub delegation: DelegationId,
    /// The revoking entity (must equal the delegation's issuer).
    pub issuer: EntityId,
    /// When the revocation takes effect.
    pub at: Timestamp,
}

impl RevocationNotice {
    /// Canonical signing bytes.
    pub fn wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::tagged(b"drbac-revocation-v1");
        w.bytes(&self.delegation.0);
        self.issuer.encode(&mut w);
        w.u64(self.at.0);
        w.finish()
    }
}

/// A revocation notice signed by the delegation's issuer.
///
/// # Example
///
/// ```
/// use drbac_core::{LocalEntity, Node, SignedRevocation, Timestamp};
/// use drbac_crypto::SchnorrGroup;
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(8);
/// let a = LocalEntity::generate("A", SchnorrGroup::test_256(), &mut rng);
/// let b = LocalEntity::generate("B", SchnorrGroup::test_256(), &mut rng);
/// let cert = a.delegate(Node::entity(&b), Node::role(a.role("r"))).sign(&a)?;
/// let revocation = SignedRevocation::revoke(&cert, &a, Timestamp(5))?;
/// assert!(revocation.verify_against(&cert).is_ok());
/// # Ok::<(), drbac_core::ValidationError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignedRevocation {
    notice: RevocationNotice,
    issuer_key: PublicKey,
    signature: Signature,
}

impl SignedRevocation {
    /// Revokes `cert`, signing as `issuer`.
    ///
    /// # Errors
    ///
    /// [`ValidationError::WrongSigner`] if `issuer` did not issue `cert`.
    pub fn revoke(
        cert: &SignedDelegation,
        issuer: &LocalEntity,
        at: Timestamp,
    ) -> Result<Self, ValidationError> {
        if issuer.id() != cert.delegation().issuer() {
            return Err(ValidationError::WrongSigner {
                expected: cert.delegation().issuer(),
                got: issuer.id(),
            });
        }
        let notice = RevocationNotice {
            delegation: cert.id(),
            issuer: issuer.id(),
            at,
        };
        let signature = issuer.sign_bytes(&notice.wire_bytes());
        Ok(SignedRevocation {
            notice,
            issuer_key: issuer.public_key().clone(),
            signature,
        })
    }

    /// The revocation body.
    pub fn notice(&self) -> &RevocationNotice {
        &self.notice
    }

    /// The revoked delegation's id.
    pub fn delegation_id(&self) -> DelegationId {
        self.notice.delegation
    }

    /// Verifies the signature and signer identity in isolation.
    ///
    /// # Errors
    ///
    /// [`ValidationError::WrongSigner`] or [`ValidationError::BadSignature`].
    pub fn verify(&self) -> Result<(), ValidationError> {
        let signer = EntityId(self.issuer_key.fingerprint());
        if signer != self.notice.issuer {
            return Err(ValidationError::WrongSigner {
                expected: self.notice.issuer,
                got: signer,
            });
        }
        if !self
            .issuer_key
            .verify(&self.notice.wire_bytes(), &self.signature)
        {
            return Err(ValidationError::BadSignature);
        }
        Ok(())
    }

    /// Verifies the notice *and* that it actually targets `cert` and was
    /// issued by `cert`'s issuer — the check a wallet performs before
    /// honoring a revocation.
    ///
    /// # Errors
    ///
    /// [`ValidationError`] for the first failed check; `TargetMismatch` if
    /// the notice names a different delegation.
    pub fn verify_against(&self, cert: &SignedDelegation) -> Result<(), ValidationError> {
        self.verify()?;
        if self.notice.delegation != cert.id() {
            return Err(ValidationError::TargetMismatch {
                expected: cert.id().to_string(),
                got: self.notice.delegation.to_string(),
            });
        }
        if self.notice.issuer != cert.delegation().issuer() {
            return Err(ValidationError::WrongSigner {
                expected: cert.delegation().issuer(),
                got: self.notice.issuer,
            });
        }
        Ok(())
    }
}

impl SignedRevocation {
    /// Serializes the signed notice into its canonical wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::wire::{Encode, Writer};
        let mut w = Writer::tagged(b"drbac-signed-revocation-v1");
        w.bytes(&self.notice.delegation.0);
        self.notice.issuer.encode(&mut w);
        w.u64(self.notice.at.0);
        self.issuer_key.encode(&mut w);
        self.signature.encode(&mut w);
        w.finish()
    }

    /// Deserializes a notice produced by [`SignedRevocation::to_bytes`];
    /// call [`SignedRevocation::verify`] before trusting it.
    ///
    /// # Errors
    ///
    /// [`crate::wire::DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::wire::DecodeError> {
        use crate::wire::{Decode, DecodeError, Reader};
        let mut r = Reader::tagged(bytes, b"drbac-signed-revocation-v1")?;
        let id_bytes: [u8; 32] = r
            .bytes()?
            .try_into()
            .map_err(|_| DecodeError::Invalid("delegation id must be 32 bytes".into()))?;
        let issuer = EntityId::decode(&mut r)?;
        let at = Timestamp(r.u64()?);
        let issuer_key = PublicKey::decode(&mut r)?;
        let signature = Signature::decode(&mut r)?;
        r.finish()?;
        Ok(SignedRevocation {
            notice: RevocationNotice {
                delegation: DelegationId(id_bytes),
                issuer,
                at,
            },
            issuer_key,
            signature,
        })
    }
}

impl fmt::Display for SignedRevocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "revoke #{} by {} at {}",
            self.notice.delegation, self.notice.issuer, self.notice.at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Node;
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn local(name: &str, seed: u64) -> LocalEntity {
        LocalEntity::generate(
            name,
            SchnorrGroup::test_256(),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn only_issuer_may_revoke() {
        let a = local("A", 1);
        let b = local("B", 2);
        let cert = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        assert!(matches!(
            SignedRevocation::revoke(&cert, &b, Timestamp(1)),
            Err(ValidationError::WrongSigner { .. })
        ));
        let rev = SignedRevocation::revoke(&cert, &a, Timestamp(1)).unwrap();
        assert!(rev.verify().is_ok());
        assert!(rev.verify_against(&cert).is_ok());
    }

    #[test]
    fn revocation_targets_specific_delegation() {
        let a = local("A", 1);
        let b = local("B", 2);
        let c1 = a
            .delegate(Node::entity(&b), Node::role(a.role("r1")))
            .sign(&a)
            .unwrap();
        let c2 = a
            .delegate(Node::entity(&b), Node::role(a.role("r2")))
            .sign(&a)
            .unwrap();
        let rev = SignedRevocation::revoke(&c1, &a, Timestamp(1)).unwrap();
        assert!(rev.verify_against(&c1).is_ok());
        assert!(matches!(
            rev.verify_against(&c2),
            Err(ValidationError::TargetMismatch { .. })
        ));
    }

    #[test]
    fn forged_revocation_rejected() {
        let a = local("A", 1);
        let b = local("B", 2);
        let cert = a
            .delegate(Node::entity(&b), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        let mut rev = SignedRevocation::revoke(&cert, &a, Timestamp(1)).unwrap();
        // Forge: claim a different effect time without re-signing.
        rev.notice.at = Timestamp(999);
        assert_eq!(rev.verify(), Err(ValidationError::BadSignature));
    }
}
