//! The deterministic simulated network of wallet hosts.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use drbac_core::{DelegationId, SimClock, Ticks, Timestamp, WalletAddr};
use drbac_store::WalletStore;
use drbac_wallet::{DelegationEvent, RecoveryReport, Wallet};
use parking_lot::{Mutex, RwLock};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::proto::{OneWay, Reply, Request};

/// The durable store backing a simulated host's wallet. Crashing a host
/// hands this back to the caller; restarting recovers from it — the
/// bytes themselves never travel through the test code.
pub type StoreHandle = Arc<WalletStore>;

/// Errors from network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No host is registered at the address.
    UnknownHost(WalletAddr),
    /// The host is registered but currently unreachable (failure
    /// injection).
    HostDown(WalletAddr),
    /// The request was sent but no reply arrived within the timeout
    /// budget — lost in transit or stuck behind a partition. The caller
    /// cannot tell which, and may retry.
    Timeout(WalletAddr),
    /// The peer violated the wire protocol (bad frame, CRC mismatch,
    /// undecodable payload). Permanent for this conversation: retrying
    /// a malformed exchange does not repair it.
    Protocol(String),
}

impl NetError {
    /// `true` for transient failures a bounded retry may recover from
    /// (timeouts and downed-but-restartable hosts). [`NetError::UnknownHost`]
    /// is permanent: no amount of retrying materialises a wallet.
    /// [`NetError::Protocol`] is likewise permanent — the peer is
    /// speaking a different protocol, not suffering a transient fault.
    pub fn is_retryable(&self) -> bool {
        matches!(self, NetError::Timeout(_) | NetError::HostDown(_))
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownHost(a) => write!(f, "no wallet host at {a}"),
            NetError::HostDown(a) => write!(f, "wallet host at {a} is down"),
            NetError::Timeout(a) => write!(f, "request to {a} timed out"),
            NetError::Protocol(m) => write!(f, "wire protocol violation: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Deterministic fault-injection configuration for a [`SimNet`].
///
/// All randomness is drawn from a dedicated RNG seeded with
/// [`FaultPlan::seeded`], so a given seed always produces the same fault
/// schedule and chaos runs replay exactly. With no plan installed the
/// network behaves exactly as the fault-free simulator (no loss, no
/// jitter) — the knobs are strictly additive.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG.
    pub seed: u64,
    /// Probability in `[0, 1]` that a request is lost in transit; the
    /// caller burns [`FaultPlan::timeout_budget`] of simulated time and
    /// observes [`NetError::Timeout`].
    pub request_loss: f64,
    /// Maximum extra delivery latency: each request and push draws a
    /// uniform jitter in `0..=latency_jitter` ticks.
    pub latency_jitter: Ticks,
    /// Simulated time a caller waits before concluding a request is
    /// lost.
    pub timeout_budget: Ticks,
}

/// Timeout charged for requests into a partition when no [`FaultPlan`]
/// is installed.
const DEFAULT_TIMEOUT_BUDGET: Ticks = Ticks(4);

impl FaultPlan {
    /// A no-fault plan (loss 0, jitter 0) with the given RNG seed —
    /// compose with the `with_*` builders.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            request_loss: 0.0,
            latency_jitter: Ticks(0),
            timeout_budget: DEFAULT_TIMEOUT_BUDGET,
        }
    }

    /// Sets the request loss probability (clamped to `[0, 1]`).
    pub fn with_request_loss(mut self, p: f64) -> Self {
        self.request_loss = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the maximum per-message latency jitter.
    pub fn with_latency_jitter(mut self, jitter: Ticks) -> Self {
        self.latency_jitter = jitter;
        self
    }

    /// Sets the per-request timeout budget.
    pub fn with_timeout_budget(mut self, budget: Ticks) -> Self {
        self.timeout_budget = budget;
        self
    }
}

/// A [`FaultPlan`] plus the RNG that executes it.
struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultInjector {
    fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector { plan, rng }
    }
}

/// Message accounting for the efficiency experiments.
///
/// This is a *view* built from the network's metrics registry
/// ([`SimNet::registry`]) — the counters under `drbac.net.sim.*` are the
/// single source of truth; nothing is double-booked.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages on the wire (a request/reply pair counts as 2).
    pub total_messages: u64,
    /// One-way push messages (invalidations).
    pub push_messages: u64,
    /// Approximate payload bytes on the wire (canonical encodings).
    pub total_bytes: u64,
    /// Requests that timed out (lost in transit or partitioned).
    pub timeouts: u64,
    /// Request counts by kind tag.
    pub requests_by_kind: BTreeMap<String, u64>,
}

impl NetStats {
    /// Count of requests with the given kind tag.
    pub fn requests(&self, kind: &str) -> u64 {
        self.requests_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Registry counter names backing the [`NetStats`] view.
    pub const MESSAGES: &'static str = "drbac.net.sim.messages.count";
    /// See [`NetStats::MESSAGES`].
    pub const PUSHES: &'static str = "drbac.net.sim.push.count";
    /// See [`NetStats::MESSAGES`].
    pub const BYTES: &'static str = "drbac.net.sim.bytes.total";
    /// RPC timeouts from injected loss or partitions.
    pub const TIMEOUTS: &'static str = "drbac.net.rpc.timeout.count";
    /// Per-kind request counters live at `drbac.net.sim.request.<kind>.count`.
    pub const REQUEST_PREFIX: &'static str = "drbac.net.sim.request.";

    /// Builds the view from a registry snapshot (only `drbac.net.sim.*`
    /// counters are consulted).
    pub fn from_snapshot(snap: &drbac_obs::Snapshot) -> Self {
        let mut requests_by_kind = BTreeMap::new();
        for (name, v) in snap.counters_with_prefix(Self::REQUEST_PREFIX) {
            if v > 0 {
                if let Some(kind) = name
                    .strip_prefix(Self::REQUEST_PREFIX)
                    .and_then(|s| s.strip_suffix(".count"))
                {
                    requests_by_kind.insert(kind.to_string(), v);
                }
            }
        }
        NetStats {
            total_messages: snap.counters.get(Self::MESSAGES).copied().unwrap_or(0),
            push_messages: snap.counters.get(Self::PUSHES).copied().unwrap_or(0),
            total_bytes: snap.counters.get(Self::BYTES).copied().unwrap_or(0),
            timeouts: snap.counters.get(Self::TIMEOUTS).copied().unwrap_or(0),
            requests_by_kind,
        }
    }
}

/// A wallet attached to the network, with the remote-subscriber registry
/// that implements the push side of delegation subscriptions.
#[derive(Clone)]
pub struct WalletHost {
    addr: WalletAddr,
    wallet: Wallet,
    /// delegation id → remote wallets subscribed to its status.
    subscribers: Arc<Mutex<HashMap<DelegationId, BTreeSet<WalletAddr>>>>,
    /// Events already applied locally (loop guard for cascaded pushes).
    seen_events: Arc<Mutex<HashSet<DelegationEvent>>>,
    /// The write-ahead store journaling this wallet's mutations.
    store: Arc<Mutex<StoreHandle>>,
}

impl fmt::Debug for WalletHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalletHost")
            .field("addr", &self.addr)
            .field("wallet", &self.wallet)
            .finish()
    }
}

impl From<WalletHost> for Wallet {
    /// A host's wallet (shared state), e.g. for [`crate::DiscoveryAgent`].
    fn from(host: WalletHost) -> Wallet {
        host.wallet.clone()
    }
}

impl From<&WalletHost> for Wallet {
    fn from(host: &WalletHost) -> Wallet {
        host.wallet.clone()
    }
}

impl WalletHost {
    /// The host's address.
    pub fn addr(&self) -> &WalletAddr {
        &self.addr
    }

    /// The wallet served by this host.
    pub fn wallet(&self) -> &Wallet {
        &self.wallet
    }

    /// The write-ahead store currently journaling this host's wallet.
    pub fn store(&self) -> StoreHandle {
        self.store.lock().clone()
    }

    /// Remote wallets currently subscribed to `id`.
    pub fn subscribers_of(&self, id: DelegationId) -> BTreeSet<WalletAddr> {
        self.subscribers
            .lock()
            .get(&id)
            .cloned()
            .unwrap_or_default()
    }

    /// Handles a request, possibly enqueueing pushes onto `net`.
    fn handle(&self, net: &SimNet, req: Request) -> Reply {
        match req {
            Request::DirectQuery {
                subject,
                object,
                constraints,
            } => match self.wallet.find_proof(&subject, &object, &constraints) {
                Some(p) => Reply::Proofs(vec![p]),
                None => Reply::Proofs(vec![]),
            },
            Request::SubjectQuery {
                subject,
                constraints,
            } => Reply::Proofs(self.wallet.query_subject(&subject, &constraints)),
            Request::ObjectQuery {
                object,
                constraints,
            } => Reply::Proofs(self.wallet.query_object(&object, &constraints)),
            Request::Publish { cert, supports } => match self.wallet.publish(cert, supports) {
                Ok(id) => Reply::Published(id),
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::PublishDeclaration(decl) => match self.wallet.publish_declaration(&decl) {
                Ok(()) => Reply::DeclarationPublished,
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::Subscribe {
                delegation,
                subscriber,
            } => {
                self.subscribers
                    .lock()
                    .entry(delegation)
                    .or_default()
                    .insert(subscriber);
                Reply::Subscribed
            }
            Request::Unsubscribe {
                delegation,
                subscriber,
            } => {
                if let Some(set) = self.subscribers.lock().get_mut(&delegation) {
                    set.remove(&subscriber);
                }
                Reply::Subscribed
            }
            Request::Revoke(revocation) => match self.wallet.revoke(&revocation) {
                Ok(delivered) => {
                    let event = DelegationEvent {
                        delegation: revocation.delegation_id(),
                        reason: drbac_wallet::InvalidationReason::Revoked,
                    };
                    self.seen_events.lock().insert(event);
                    self.push_to_subscribers(net, event);
                    Reply::Revoked(delivered)
                }
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::FetchDeclarations => Reply::Declarations(self.wallet.signed_declarations()),
            Request::FetchDelegation(id) => {
                let now = self.wallet.now();
                let live = self.wallet.get(id).filter(|c| {
                    !self.wallet.is_revoked(id) && !c.delegation().is_expired(now)
                });
                Reply::Delegation(live)
            }
            // The simulator shares one process (and one global metrics
            // registry) across all hosts, so a per-host scrape would
            // mislead; only real daemons answer these.
            Request::Stats | Request::Health => {
                Reply::Error("stats/health are served by TCP daemons".into())
            }
        }
    }

    /// Revalidates every stale cached credential against its recorded
    /// source wallet (TTL refresh). Entries the source no longer vouches
    /// for are invalidated locally. Returns `(refreshed, dropped)`.
    pub fn refresh_stale(&self, net: &SimNet) -> (usize, usize) {
        let mut refreshed = 0;
        let mut dropped = 0;
        for id in self.wallet.stale_entries() {
            let Some(entry) = self.wallet.cache_entry(id) else {
                continue;
            };
            match net.request(&entry.source, Request::FetchDelegation(id)) {
                Ok(Reply::Delegation(Some(_))) => {
                    self.wallet.mark_refreshed(id);
                    refreshed += 1;
                }
                Ok(Reply::Delegation(None)) => {
                    // Source disowned it: invalidate locally and cascade.
                    let event = DelegationEvent {
                        delegation: id,
                        reason: drbac_wallet::InvalidationReason::Expired,
                    };
                    self.seen_events.lock().insert(event);
                    self.wallet.push_event(event);
                    self.push_to_subscribers(net, event);
                    dropped += 1;
                }
                _ => {} // unreachable source: keep the stale entry for now
            }
        }
        (refreshed, dropped)
    }

    /// Re-registers this host's push subscriptions for every cached
    /// remote credential at its recorded source wallet, then revalidates
    /// each entry — the recovery step after a peer wallet restart: the
    /// peer's subscriber registry is volatile, so its crash silently
    /// unsubscribed us and any invalidation issued before we re-register
    /// would be lost. Requests are retried with
    /// [`crate::RetryPolicy::standard`]; sources that stay unreachable
    /// leave the entry untouched (TTL refresh remains the backstop).
    /// Entries a source disowns are invalidated locally and cascaded.
    /// Returns `(resubscribed, dropped)`.
    pub fn resubscribe_cached(&self, net: &SimNet) -> (usize, usize) {
        let retry = crate::transport::RetryPolicy::standard();
        let mut resubscribed = 0;
        let mut dropped = 0;
        for (id, entry) in self.wallet.cache_entries() {
            let sub = retry.run(
                net,
                &entry.source,
                &Request::Subscribe {
                    delegation: id,
                    subscriber: self.addr.clone(),
                },
            );
            if matches!(sub.reply, Ok(Reply::Subscribed)) {
                resubscribed += 1;
            }
            match retry.run(net, &entry.source, &Request::FetchDelegation(id)).reply {
                Ok(Reply::Delegation(Some(_))) => {
                    self.wallet.mark_refreshed(id);
                }
                Ok(Reply::Delegation(None)) => {
                    // The source disowned it while we were out of touch:
                    // invalidate locally and cascade.
                    let event = DelegationEvent {
                        delegation: id,
                        reason: drbac_wallet::InvalidationReason::Expired,
                    };
                    self.seen_events.lock().insert(event);
                    self.wallet.push_event(event);
                    self.push_to_subscribers(net, event);
                    dropped += 1;
                }
                _ => {} // still unreachable: keep the entry for now
            }
        }
        (resubscribed, dropped)
    }

    /// Fans `event` out to this host's remote subscribers.
    fn push_to_subscribers(&self, net: &SimNet, event: DelegationEvent) {
        let targets = self.subscribers_of(event.delegation);
        for target in targets {
            net.send(&target, OneWay::Invalidate(event));
        }
    }

    /// Applies an incoming push: delivers to the local wallet (monitors,
    /// subscriptions, graph) and cascades to this host's own subscribers
    /// exactly once per event.
    fn apply_push(&self, net: &SimNet, event: DelegationEvent) {
        if !self.seen_events.lock().insert(event) {
            return; // already applied; break forwarding cycles
        }
        self.wallet.push_event(event);
        self.push_to_subscribers(net, event);
    }

    /// Processes local expiries and pushes resulting invalidations to
    /// subscribers. Drive after advancing the clock.
    pub fn process_expiries(&self, net: &SimNet) -> usize {
        let now = self.wallet.now();
        let expired: Vec<DelegationId> = self.wallet.with_graph(|g| {
            g.iter()
                .filter(|c| c.delegation().is_expired(now))
                .map(|c| c.id())
                .collect()
        });
        self.wallet.process_expiries();
        for id in &expired {
            let event = DelegationEvent {
                delegation: *id,
                reason: drbac_wallet::InvalidationReason::Expired,
            };
            self.seen_events.lock().insert(event);
            self.push_to_subscribers(net, event);
        }
        expired.len()
    }
}

/// An in-flight one-way message.
struct Envelope {
    deliver_at: Timestamp,
    seq: u64,
    to: WalletAddr,
    msg: OneWay,
}

impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for Envelope {}
impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Envelope {
    /// Min-heap by (time, seq): BinaryHeap is a max-heap, so reverse.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

struct SimState {
    clock: SimClock,
    latency: Ticks,
    hosts: RwLock<HashMap<WalletAddr, WalletHost>>,
    queue: Mutex<BinaryHeap<Envelope>>,
    /// Per-network metrics registry: the single accounting path.
    /// Instances are independent so parallel tests see exact counts.
    registry: Arc<drbac_obs::Registry>,
    /// Cached handles for the hot counters.
    msg_counter: Arc<drbac_obs::Counter>,
    push_msg_counter: Arc<drbac_obs::Counter>,
    bytes_counter: Arc<drbac_obs::Counter>,
    timeout_counter: Arc<drbac_obs::Counter>,
    seq: AtomicU64,
    /// Failure injection: hosts currently unreachable.
    down: Mutex<HashSet<WalletAddr>>,
    /// Failure injection: drop every Nth push (0 = no loss).
    drop_every_nth_push: AtomicU64,
    push_counter: AtomicU64,
    /// Failure injection: seeded loss / jitter / timeout plan
    /// (`None` = fault-free, the default).
    faults: Mutex<Option<FaultInjector>>,
    /// Hosts currently cut off by a network partition. Unlike a downed
    /// host the host itself is healthy: requests time out and pushes are
    /// parked for redelivery at heal time rather than dropped.
    partitioned: Mutex<HashSet<WalletAddr>>,
    /// Pushes addressed into a partition, waiting for the heal.
    parked: Mutex<Vec<Envelope>>,
}

/// A deterministic discrete-event network of wallet hosts.
///
/// Requests are synchronous RPCs costing one latency each way; pushes are
/// queued one-way messages delivered by [`SimNet::run_until_idle`] in
/// `(time, sequence)` order. All message counts are recorded in
/// [`NetStats`].
///
/// # Example
///
/// ```
/// use drbac_core::{LocalEntity, Node, SimClock, Ticks};
/// use drbac_crypto::SchnorrGroup;
/// use drbac_net::{proto::Request, SimNet};
/// use drbac_wallet::Wallet;
/// # use rand::SeedableRng;
/// # use std::sync::Arc;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(71);
/// # let g = SchnorrGroup::test_256();
/// let clock = SimClock::new();
/// let net = SimNet::new(clock.clone(), Ticks(1));
/// let a = LocalEntity::generate("A", g.clone(), &mut rng);
/// let m = LocalEntity::generate("M", g, &mut rng);
/// net.add_host("wallet.a", Wallet::new("wallet.a", clock.clone()));
///
/// let cert = a.delegate(Node::entity(&m), Node::role(a.role("r"))).sign(&a)?;
/// let reply = net.request(&"wallet.a".into(), Request::Publish { cert: Arc::new(cert), supports: vec![] })?;
/// assert!(!reply.is_error());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct SimNet {
    state: Arc<SimState>,
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet")
            .field("hosts", &self.state.hosts.read().len())
            .field("now", &self.state.clock.now())
            .finish()
    }
}

impl SimNet {
    /// Creates a network with the given per-message latency.
    pub fn new(clock: SimClock, latency: Ticks) -> Self {
        let registry = Arc::new(drbac_obs::Registry::new());
        let msg_counter = registry.counter(NetStats::MESSAGES);
        let push_msg_counter = registry.counter(NetStats::PUSHES);
        let bytes_counter = registry.counter(NetStats::BYTES);
        let timeout_counter = registry.counter(NetStats::TIMEOUTS);
        SimNet {
            state: Arc::new(SimState {
                clock,
                latency,
                hosts: RwLock::new(HashMap::new()),
                queue: Mutex::new(BinaryHeap::new()),
                registry,
                msg_counter,
                push_msg_counter,
                bytes_counter,
                timeout_counter,
                seq: AtomicU64::new(0),
                down: Mutex::new(HashSet::new()),
                drop_every_nth_push: AtomicU64::new(0),
                push_counter: AtomicU64::new(0),
                faults: Mutex::new(None),
                partitioned: Mutex::new(HashSet::new()),
                parked: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Installs (or with `None` removes) a seeded fault plan. Replacing
    /// the plan reseeds the fault RNG, so installing the same plan twice
    /// replays the same fault schedule.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.state.faults.lock() = plan.map(FaultInjector::new);
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.state.faults.lock().as_ref().map(|f| f.plan.clone())
    }

    /// Failure injection: cuts `addr` off behind a network partition.
    /// Requests into the partition burn the timeout budget and fail with
    /// [`NetError::Timeout`]; pushes addressed to it are parked and
    /// redelivered when [`SimNet::heal_partitions`] runs — unlike
    /// [`SimNet::fail_host`], nothing is lost.
    pub fn partition_host(&self, addr: &WalletAddr) {
        self.state.partitioned.lock().insert(addr.clone());
    }

    /// `true` if the host is currently behind a partition.
    pub fn is_partitioned(&self, addr: &WalletAddr) -> bool {
        self.state.partitioned.lock().contains(addr)
    }

    /// Heals all partitions: parked pushes are re-enqueued for delivery
    /// one latency from now (drive [`SimNet::run_until_idle`] to deliver
    /// them). Returns the number of messages released.
    pub fn heal_partitions(&self) -> usize {
        self.state.partitioned.lock().clear();
        let parked: Vec<Envelope> = std::mem::take(&mut *self.state.parked.lock());
        let released = parked.len();
        for envelope in parked {
            // Re-timestamp: the message finally crosses the mended link.
            let deliver_at = self.state.clock.now().after(self.state.latency);
            let seq = self.state.seq.fetch_add(1, Ordering::SeqCst);
            self.state.queue.lock().push(Envelope {
                deliver_at,
                seq,
                to: envelope.to,
                msg: envelope.msg,
            });
        }
        released
    }

    /// Failure injection: crashes the host at `addr`. The host becomes
    /// unreachable and *everything in memory dies with the process* —
    /// the remote-subscriber registry, the push dedup memory, and the
    /// wallet's entire contents, volatile and durable alike. What
    /// survives is the write-ahead store, whose handle is returned for a
    /// later [`SimNet::restart_host`]; any journal bytes the store had
    /// not yet fsynced are lost too (power-loss semantics). Returns
    /// `None` if no host lives at `addr`.
    pub fn crash_host(&self, addr: &WalletAddr) -> Option<StoreHandle> {
        let host = self.host(addr)?;
        self.state.down.lock().insert(addr.clone());
        host.subscribers.lock().clear();
        host.seen_events.lock().clear();
        host.wallet.detach_journal();
        host.wallet.wipe();
        let store = host.store.lock().clone();
        store.lose_unsynced();
        drbac_obs::event!("drbac.net.sim.crash", "addr" => addr.to_string(),);
        Some(store)
    }

    /// Restarts a crashed host from its write-ahead `store`: the wallet
    /// is rebuilt from the latest valid snapshot plus log-tail replay
    /// (every credential re-verified; a torn tail truncated, never a
    /// panic), the journal is re-attached, and the host becomes
    /// reachable again. Peers that held push subscriptions here must
    /// re-register — see [`WalletHost::resubscribe_cached`]. Returns
    /// `None` if no host lives at `addr` or the store's medium fails.
    pub fn restart_host(&self, addr: &WalletAddr, store: &StoreHandle) -> Option<RecoveryReport> {
        let host = self.host(addr)?;
        host.wallet.detach_journal();
        host.wallet.wipe();
        let report = host.wallet.recover_from_store(store).ok()?;
        host.wallet.attach_journal(Arc::clone(store));
        *host.store.lock() = Arc::clone(store);
        self.state.down.lock().remove(addr);
        drbac_obs::event!(
            "drbac.net.sim.restart",
            "addr" => addr.to_string(),
            "from_snapshot" => report.from_snapshot,
            "credentials" => report.snapshot.credentials,
            "declarations" => report.snapshot.declarations,
            "revocations" => report.snapshot.revocations,
            "rejected" => report.snapshot.rejected,
            "replayed" => report.replayed,
            "skipped" => report.skipped,
            "truncated_bytes" => report.truncated_bytes,
            "torn_tail" => report.torn_tail,
        );
        Some(report)
    }

    /// Failure injection: marks a host unreachable. Requests to it fail
    /// with [`NetError::HostDown`]; queued pushes addressed to it are
    /// dropped at delivery time.
    pub fn fail_host(&self, addr: &WalletAddr) {
        self.state.down.lock().insert(addr.clone());
    }

    /// Restores a failed host.
    pub fn restore_host(&self, addr: &WalletAddr) {
        self.state.down.lock().remove(addr);
    }

    /// `true` if the host is currently marked down.
    pub fn is_down(&self, addr: &WalletAddr) -> bool {
        self.state.down.lock().contains(addr)
    }

    /// Failure injection: deterministically drop every `n`th push message
    /// (0 disables loss).
    pub fn drop_every_nth_push(&self, n: u64) {
        self.state.drop_every_nth_push.store(n, Ordering::SeqCst);
    }

    /// Attaches `wallet` at `addr` and returns the host handle. A fresh
    /// in-memory write-ahead store is bound to the wallet: contents the
    /// wallet already holds are captured as the store's base snapshot,
    /// and every subsequent mutation is journaled, so a later
    /// [`SimNet::crash_host`] / [`SimNet::restart_host`] cycle recovers
    /// through real log replay.
    pub fn add_host(&self, addr: impl Into<WalletAddr>, wallet: Wallet) -> WalletHost {
        let addr = addr.into();
        let store = Arc::new(WalletStore::in_memory());
        if !wallet.is_empty() || !wallet.signed_declarations().is_empty() {
            let snapshot_of = wallet.clone();
            store
                .install_snapshot(move || snapshot_of.export_bytes())
                .expect("in-memory media cannot fail");
        }
        wallet.attach_journal(Arc::clone(&store));
        let host = WalletHost {
            addr: addr.clone(),
            wallet,
            subscribers: Arc::new(Mutex::new(HashMap::new())),
            seen_events: Arc::new(Mutex::new(HashSet::new())),
            store: Arc::new(Mutex::new(store)),
        };
        self.state.hosts.write().insert(addr, host.clone());
        host
    }

    /// The host at `addr`, if any.
    pub fn host(&self, addr: &WalletAddr) -> Option<WalletHost> {
        self.state.hosts.read().get(addr).cloned()
    }

    /// The shared clock.
    pub fn clock(&self) -> SimClock {
        self.state.clock.clone()
    }

    /// Draws the fault verdict for one request to `to`: `Some(budget)`
    /// if the request times out (partition or injected loss), else
    /// `None`. Partitions time out even without a plan installed.
    fn timeout_if_faulted(&self, to: &WalletAddr) -> Option<Ticks> {
        let partitioned = self.is_partitioned(to);
        let mut faults = self.state.faults.lock();
        match faults.as_mut() {
            Some(f) => {
                if partitioned {
                    return Some(f.plan.timeout_budget);
                }
                // Clamp at the point of use: `request_loss` is a pub field,
                // so a plan built without `with_request_loss` may carry an
                // out-of-range or NaN value that would panic `gen_bool`.
                // (NaN fails the `> 0.0` test and counts as "no loss".)
                let loss = f.plan.request_loss.clamp(0.0, 1.0);
                if loss > 0.0 && f.rng.gen_bool(loss) {
                    return Some(f.plan.timeout_budget);
                }
                None
            }
            None if partitioned => Some(DEFAULT_TIMEOUT_BUDGET),
            None => None,
        }
    }

    /// Draws the latency jitter for one message (0 without a plan).
    fn draw_jitter(&self) -> Ticks {
        let mut faults = self.state.faults.lock();
        match faults.as_mut() {
            Some(f) if f.plan.latency_jitter.0 > 0 => {
                Ticks(f.rng.gen_range(0..=f.plan.latency_jitter.0))
            }
            _ => Ticks(0),
        }
    }

    /// Sends a synchronous request; the clock advances one latency each
    /// way and both messages are counted.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownHost`] if nothing is registered at `to`;
    /// [`NetError::HostDown`] if the host has crashed or been failed;
    /// [`NetError::Timeout`] if the request was lost to the installed
    /// [`FaultPlan`] or the host is behind a partition — the caller
    /// burns the plan's timeout budget of simulated time waiting.
    pub fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError> {
        let host = self
            .host(to)
            .ok_or_else(|| NetError::UnknownHost(to.clone()))?;
        if self.is_down(to) {
            // The attempt still costs a (lost) message and a timeout's
            // worth of waiting.
            self.state.msg_counter.inc();
            self.state.clock.advance(self.state.latency);
            return Err(NetError::HostDown(to.clone()));
        }
        if let Some(budget) = self.timeout_if_faulted(to) {
            self.state.msg_counter.inc();
            self.state.timeout_counter.inc();
            drbac_obs::event!(
                "drbac.net.rpc.timeout",
                "to" => to.to_string(),
                "kind" => req.kind(),
            );
            self.state.clock.advance(budget);
            return Err(NetError::Timeout(to.clone()));
        }
        let jitter = self.draw_jitter();
        self.state.msg_counter.add(2);
        self.state.bytes_counter.add(req.encoded_len() as u64);
        self.state
            .registry
            .counter(format!("{}{}.count", NetStats::REQUEST_PREFIX, req.kind()))
            .inc();
        drbac_obs::event!(
            "drbac.net.sim.request",
            "to" => to.to_string(),
            "kind" => req.kind(),
        );
        self.state.clock.advance(Ticks(self.state.latency.0 + jitter.0));
        let reply = host.handle(self, req);
        self.state.clock.advance(self.state.latency);
        self.state.bytes_counter.add(reply.encoded_len() as u64);
        Ok(reply)
    }

    /// Enqueues a one-way push for delivery after one latency (plus any
    /// [`FaultPlan`] jitter).
    pub fn send(&self, to: &WalletAddr, msg: OneWay) {
        let jitter = self.draw_jitter();
        let deliver_at = self
            .state
            .clock
            .now()
            .after(Ticks(self.state.latency.0 + jitter.0));
        let seq = self.state.seq.fetch_add(1, Ordering::SeqCst);
        self.state.msg_counter.inc();
        self.state.push_msg_counter.inc();
        self.state.bytes_counter.add(48); // delegation id + reason + header
        drbac_obs::event!("drbac.net.sim.push", "to" => to.to_string(),);
        self.state.queue.lock().push(Envelope {
            deliver_at,
            seq,
            to: to.clone(),
            msg,
        });
    }

    /// Delivers queued pushes in timestamp order (advancing the clock to
    /// each delivery time) until the queue is empty. Returns the number of
    /// messages delivered.
    pub fn run_until_idle(&self) -> usize {
        let mut delivered = 0;
        loop {
            let envelope = match self.state.queue.lock().pop() {
                Some(e) => e,
                None => return delivered,
            };
            self.state.clock.advance_to(envelope.deliver_at);
            if self.is_down(&envelope.to) {
                continue; // lost: host is down
            }
            if self.is_partitioned(&envelope.to) {
                // Undeliverable but not lost: park until the heal.
                self.state.parked.lock().push(envelope);
                continue;
            }
            let n = self.state.drop_every_nth_push.load(Ordering::SeqCst);
            if n > 0 {
                let count = self.state.push_counter.fetch_add(1, Ordering::SeqCst) + 1;
                if count.is_multiple_of(n) {
                    continue; // injected message loss
                }
            }
            delivered += 1;
            let Some(host) = self.host(&envelope.to) else {
                continue; // host vanished; drop the message
            };
            match envelope.msg {
                OneWay::Invalidate(event) => host.apply_push(self, event),
            }
        }
    }

    /// A snapshot of the message counters — a [`NetStats`] view over the
    /// network's metrics registry.
    pub fn stats(&self) -> NetStats {
        NetStats::from_snapshot(&self.state.registry.snapshot())
    }

    /// Resets the message counters (between experiment phases). Counters
    /// incremented concurrently land in either the pre- or post-reset
    /// epoch — never both.
    pub fn reset_stats(&self) {
        self.state.registry.reset();
    }

    /// The per-network metrics registry backing [`SimNet::stats`]. Merge
    /// its snapshot with [`drbac_obs::global`]'s for a full picture.
    pub fn registry(&self) -> Arc<drbac_obs::Registry> {
        Arc::clone(&self.state.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{LocalEntity, Node, Proof, ProofStep, SignedRevocation};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fx {
        clock: SimClock,
        net: SimNet,
        a: LocalEntity,
        m: LocalEntity,
    }

    fn fx() -> Fx {
        let mut rng = StdRng::seed_from_u64(81);
        let g = SchnorrGroup::test_256();
        let clock = SimClock::new();
        Fx {
            net: SimNet::new(clock.clone(), Ticks(1)),
            clock,
            a: LocalEntity::generate("A", g.clone(), &mut rng),
            m: LocalEntity::generate("M", g, &mut rng),
        }
    }

    fn wallet(f: &Fx, addr: &str) -> WalletHost {
        f.net.add_host(addr, Wallet::new(addr, f.clock.clone()))
    }

    #[test]
    fn request_to_unknown_host_fails() {
        let f = fx();
        let err = f
            .net
            .request(&"nowhere".into(), crate::proto::Request::FetchDeclarations);
        assert!(matches!(err, Err(NetError::UnknownHost(_))));
    }

    #[test]
    fn publish_and_query_via_network() {
        let f = fx();
        wallet(&f, "w1");
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        let reply = f
            .net
            .request(
                &"w1".into(),
                Request::Publish {
                    cert: Arc::new(cert),
                    supports: vec![],
                },
            )
            .unwrap();
        assert!(matches!(reply, Reply::Published(_)));

        let reply = f
            .net
            .request(
                &"w1".into(),
                Request::DirectQuery {
                    subject: Node::entity(&f.m),
                    object: Node::role(f.a.role("r")),
                    constraints: vec![],
                },
            )
            .unwrap();
        match reply {
            Reply::Proofs(proofs) => assert_eq!(proofs.len(), 1),
            other => panic!("unexpected reply {other:?}"),
        }

        let stats = f.net.stats();
        assert_eq!(stats.total_messages, 4);
        assert_eq!(stats.requests("publish"), 1);
        assert_eq!(stats.requests("direct-query"), 1);
        // Each request advanced the clock twice.
        assert_eq!(f.clock.now(), Timestamp(4));
    }

    #[test]
    fn revocation_pushes_to_remote_subscribers() {
        let f = fx();
        let home = wallet(&f, "home");
        let cache = wallet(&f, "cache");

        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        // Cache absorbs a copy and subscribes at the home wallet.
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
        let monitor = cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();
        f.net
            .request(
                &"home".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache".into(),
                },
            )
            .unwrap();
        assert_eq!(home.subscribers_of(cert.id()).len(), 1);

        // Issuer revokes at the home wallet.
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        let reply = f
            .net
            .request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        assert!(matches!(reply, Reply::Revoked(_)));

        // Push is queued, not yet delivered.
        assert!(monitor.is_valid());
        let delivered = f.net.run_until_idle();
        assert_eq!(delivered, 1);
        assert!(!monitor.is_valid(), "push invalidated the cached proof");
        assert_eq!(f.net.stats().push_messages, 1);
    }

    #[test]
    fn cascaded_pushes_follow_subscription_chains() {
        // home -> cache1 -> cache2 subscription chain: a revocation at home
        // reaches cache2 through cache1.
        let f = fx();
        let home = wallet(&f, "home");
        let cache1 = wallet(&f, "cache1");
        let cache2 = wallet(&f, "cache2");

        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        cache1.wallet().absorb_proof(&proof, home.addr()).unwrap();
        cache2.wallet().absorb_proof(&proof, cache1.addr()).unwrap();

        f.net
            .request(
                &"home".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache1".into(),
                },
            )
            .unwrap();
        f.net
            .request(
                &"cache1".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache2".into(),
                },
            )
            .unwrap();

        let m2 = cache2
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.net
            .request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        let delivered = f.net.run_until_idle();
        assert_eq!(delivered, 2, "home->cache1, cache1->cache2");
        assert!(!m2.is_valid());
    }

    #[test]
    fn push_cycles_are_broken_by_seen_set() {
        // Mutually subscribed hosts must not ping-pong forever.
        let f = fx();
        let w1 = wallet(&f, "w1");
        let w2 = wallet(&f, "w2");
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        w1.wallet().publish(cert.clone(), vec![]).unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        w2.wallet().absorb_proof(&proof, w1.addr()).unwrap();
        f.net
            .request(
                &"w1".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "w2".into(),
                },
            )
            .unwrap();
        f.net
            .request(
                &"w2".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "w1".into(),
                },
            )
            .unwrap();
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.net
            .request(&"w1".into(), Request::Revoke(revocation))
            .unwrap();
        let delivered = f.net.run_until_idle();
        assert!(
            delivered <= 2,
            "delivered {delivered}, expected no ping-pong"
        );
    }

    #[test]
    fn expiry_pushes_like_revocation() {
        let f = fx();
        let home = wallet(&f, "home");
        let cache = wallet(&f, "cache");
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .expires(Timestamp(5))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
        f.net
            .request(
                &"home".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache".into(),
                },
            )
            .unwrap();
        let monitor = cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();

        f.clock.advance(Ticks(10));
        assert_eq!(home.process_expiries(&f.net), 1);
        f.net.run_until_idle();
        assert!(!monitor.is_valid());
    }

    #[test]
    fn ttl_refresh_revalidates_and_drops() {
        let f = fx();
        let home = wallet(&f, "home");
        let cache = wallet(&f, "cache");
        let tag = drbac_core::DiscoveryTag::new("home").with_ttl(Ticks(10));
        let keep =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("keep")))
                .subject_tag(tag.clone())
                .sign(&f.a)
                .unwrap();
        let lose =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("lose")))
                .subject_tag(tag)
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(keep.clone(), vec![]).unwrap();
        home.wallet().publish(lose.clone(), vec![]).unwrap();
        for cert in [&keep, &lose] {
            let proof = Proof::from_steps(vec![ProofStep::new((*cert).clone())]).unwrap();
            cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
        }

        // The home wallet revokes `lose`.
        let revocation = SignedRevocation::revoke(&lose, &f.a, f.clock.now()).unwrap();
        home.wallet().revoke(&revocation).unwrap();

        // TTL lapses; refresh keeps `keep`, drops `lose`.
        f.clock.advance(Ticks(11));
        assert_eq!(cache.wallet().stale_entries().len(), 2);
        let (refreshed, dropped) = cache.refresh_stale(&f.net);
        assert_eq!((refreshed, dropped), (1, 1));
        assert!(cache.wallet().stale_entries().is_empty());
        assert!(cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("keep")), &[])
            .is_some());
        assert!(cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("lose")), &[])
            .is_none());
    }

    #[test]
    fn downed_host_rejects_requests_and_loses_pushes() {
        let f = fx();
        let home = wallet(&f, "home");
        let cache = wallet(&f, "cache");
        let tag = drbac_core::DiscoveryTag::new("home").with_ttl(Ticks(10));
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .subject_tag(tag)
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
        f.net
            .request(
                &"home".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache".into(),
                },
            )
            .unwrap();
        let monitor = cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();

        // Cache goes down; the revocation push is lost.
        f.net.fail_host(&"cache".into());
        assert!(matches!(
            f.net.request(&"cache".into(), Request::FetchDeclarations),
            Err(NetError::HostDown(_))
        ));
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.net
            .request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        assert_eq!(f.net.run_until_idle(), 0, "push dropped while host down");
        assert!(
            monitor.is_valid(),
            "cache is stale — exactly why TTLs exist"
        );

        // Host recovers; TTL refresh discovers the revocation.
        f.net.restore_host(&"cache".into());
        f.clock.advance(Ticks(1_000));
        let (_, dropped) = cache.refresh_stale(&f.net);
        assert_eq!(dropped, 1);
        assert!(!monitor.is_valid(), "refresh caught up with the revocation");
    }

    #[test]
    fn deterministic_push_loss() {
        let f = fx();
        let home = wallet(&f, "home");
        let caches: Vec<WalletHost> = (0..4).map(|i| wallet(&f, &format!("c{i}"))).collect();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        for c in &caches {
            let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
            c.wallet().absorb_proof(&proof, home.addr()).unwrap();
            f.net
                .request(
                    &"home".into(),
                    Request::Subscribe {
                        delegation: cert.id(),
                        subscriber: c.addr().clone(),
                    },
                )
                .unwrap();
        }
        f.net.drop_every_nth_push(2); // lose half the pushes
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.net
            .request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        let delivered = f.net.run_until_idle();
        assert_eq!(delivered, 2, "2 of 4 pushes delivered");
        let revoked_count = caches
            .iter()
            .filter(|c| c.wallet().is_revoked(cert.id()))
            .count();
        assert_eq!(revoked_count, 2);
    }

    #[test]
    fn byte_accounting_tracks_payload_sizes() {
        let f = fx();
        wallet(&f, "w1");
        assert_eq!(f.net.stats().total_bytes, 0);
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        let cert_len = cert.to_bytes().len() as u64;
        f.net
            .request(
                &"w1".into(),
                Request::Publish {
                    cert: Arc::new(cert),
                    supports: vec![],
                },
            )
            .unwrap();
        let after_publish = f.net.stats().total_bytes;
        assert!(
            after_publish >= cert_len,
            "publish carries the credential bytes"
        );

        // A query reply carrying a proof adds more than a subscribe ack.
        f.net
            .request(
                &"w1".into(),
                Request::DirectQuery {
                    subject: Node::entity(&f.m),
                    object: Node::role(f.a.role("r")),
                    constraints: vec![],
                },
            )
            .unwrap();
        let after_query = f.net.stats().total_bytes;
        assert!(
            after_query > after_publish + cert_len / 2,
            "reply carried the proof"
        );
    }

    #[test]
    fn stats_view_reflects_registry_counters() {
        let f = fx();
        wallet(&f, "w1");
        f.net
            .request(&"w1".into(), Request::FetchDeclarations)
            .unwrap();
        let snap = f.net.registry().snapshot();
        assert_eq!(snap.counters.get(NetStats::MESSAGES), Some(&2));
        let stats = f.net.stats();
        assert_eq!(stats.total_messages, 2);
        assert_eq!(stats.requests("fetch-declarations"), 1);
        f.net.reset_stats();
        assert_eq!(f.net.stats(), NetStats::default());
        // The registry keeps the (zeroed) instruments; the view hides
        // never-again-seen kinds just like a fresh NetStats would.
        assert_eq!(
            f.net.registry().snapshot().counters.get(NetStats::MESSAGES),
            Some(&0)
        );
    }

    #[test]
    fn concurrent_senders_survive_reset_without_double_counting() {
        // Phase 1: four threads hammer requests while the main thread
        // repeatedly snapshots and resets — must not panic or wedge.
        let f = fx();
        wallet(&f, "w1");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let start = Arc::new(std::sync::Barrier::new(5));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let net = f.net.clone();
                let stop = Arc::clone(&stop);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    let mut sent = 0u64;
                    // Every worker sends at least once, even if the main
                    // thread races through its reset loop first.
                    while sent == 0 || !stop.load(Ordering::SeqCst) {
                        net.request(&"w1".into(), Request::FetchDeclarations)
                            .unwrap();
                        sent += 1;
                    }
                    sent
                })
            })
            .collect();
        start.wait();
        for _ in 0..100 {
            let _ = f.net.stats();
            f.net.reset_stats();
        }
        stop.store(true, Ordering::SeqCst);
        let sent: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(sent > 0);
        // All senders joined: a final reset leaves everything at zero.
        f.net.reset_stats();
        assert_eq!(f.net.stats(), NetStats::default());

        // Phase 2: with no resets interleaved, concurrent senders are
        // counted exactly once each — no double counting.
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let net = f.net.clone();
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        net.request(&"w1".into(), Request::FetchDeclarations)
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = f.net.stats();
        assert_eq!(stats.total_messages, 2 * 1000);
        assert_eq!(stats.requests("fetch-declarations"), 1000);
    }

    #[test]
    fn request_loss_is_deterministic_per_seed() {
        // Two independent networks with the same fault plan observe the
        // same loss schedule; a different seed observes a different one.
        let outcomes = |seed: u64| -> Vec<bool> {
            let f = fx();
            wallet(&f, "w1");
            f.net.set_fault_plan(Some(
                FaultPlan::seeded(seed)
                    .with_request_loss(0.3)
                    .with_timeout_budget(Ticks(4)),
            ));
            (0..32)
                .map(|_| {
                    f.net
                        .request(&"w1".into(), Request::FetchDeclarations)
                        .is_ok()
                })
                .collect()
        };
        let a = outcomes(7);
        assert_eq!(a, outcomes(7), "same seed, same schedule");
        assert_ne!(a, outcomes(8), "different seed, different schedule");
        assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !ok),
            "30% loss over 32 requests should show both outcomes");

        // Timeouts are visible in the stats view and errors are typed.
        let f = fx();
        wallet(&f, "w1");
        f.net
            .set_fault_plan(Some(FaultPlan::seeded(7).with_request_loss(1.0)));
        assert!(matches!(
            f.net.request(&"w1".into(), Request::FetchDeclarations),
            Err(NetError::Timeout(_))
        ));
        assert_eq!(f.net.stats().timeouts, 1);
        assert_eq!(f.net.stats().total_messages, 1, "the lost request");
    }

    #[test]
    fn timeout_budget_costs_simulated_time() {
        let f = fx();
        wallet(&f, "w1");
        f.net.set_fault_plan(Some(
            FaultPlan::seeded(1)
                .with_request_loss(1.0)
                .with_timeout_budget(Ticks(9)),
        ));
        let before = f.clock.now();
        let _ = f.net.request(&"w1".into(), Request::FetchDeclarations);
        assert_eq!(f.clock.now(), before.after(Ticks(9)));
    }

    #[test]
    fn partitioned_host_parks_pushes_until_heal() {
        let f = fx();
        let home = wallet(&f, "home");
        let cache = wallet(&f, "cache");
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
        f.net
            .request(
                &"home".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache".into(),
                },
            )
            .unwrap();
        let monitor = cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();

        // The cache drops behind a partition: requests to it time out
        // (even with no fault plan installed)...
        f.net.partition_host(&"cache".into());
        assert!(f.net.is_partitioned(&"cache".into()));
        assert!(matches!(
            f.net.request(&"cache".into(), Request::FetchDeclarations),
            Err(NetError::Timeout(_))
        ));

        // ...and the revocation push is parked, not lost.
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.net
            .request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        assert_eq!(f.net.run_until_idle(), 0, "nothing deliverable yet");
        assert!(monitor.is_valid(), "stale until the partition heals");

        assert_eq!(f.net.heal_partitions(), 1, "one parked push released");
        assert_eq!(f.net.run_until_idle(), 1);
        assert!(!monitor.is_valid(), "parked push delivered after heal");
    }

    #[test]
    fn crash_restart_and_resubscribe_recover_missed_revocations() {
        let f = fx();
        let home = wallet(&f, "home");
        let cache = wallet(&f, "cache");
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
        f.net
            .request(
                &"home".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache".into(),
                },
            )
            .unwrap();
        let monitor = cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();

        // The home wallet crashes: unreachable, and its (volatile)
        // subscriber registry dies with it.
        let store = f.net.crash_host(&"home".into()).unwrap();
        assert!(matches!(
            f.net.request(&"home".into(), Request::FetchDeclarations),
            Err(NetError::HostDown(_))
        ));

        // Restart replays the write-ahead log to rebuild the credential
        // store but NOT the subscriber registry — the cache has been
        // silently unsubscribed.
        let report = f.net.restart_host(&"home".into(), &store).unwrap();
        assert_eq!(report.skipped, 0);
        assert_eq!(report.replayed, 1, "the published delegation replays");
        assert!(home.subscribers_of(cert.id()).is_empty());
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.net
            .request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        assert_eq!(f.net.run_until_idle(), 0, "push lost: nobody subscribed");
        assert!(monitor.is_valid(), "cache is dangerously stale");

        // Recovery: re-register subscriptions and revalidate the cache.
        // The missed revocation is caught by the revalidation fetch.
        let (resubscribed, dropped) = cache.resubscribe_cached(&f.net);
        assert_eq!((resubscribed, dropped), (1, 1));
        assert!(!monitor.is_valid(), "revalidation caught the revocation");
        assert_eq!(home.subscribers_of(cert.id()).len(), 1, "resubscribed");
    }

    #[test]
    fn restart_event_reports_recovery_counts_in_trace() {
        let f = fx();
        let home = wallet(&f, "obs-home");
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert, vec![]).unwrap();
        let store = f.net.crash_host(&"obs-home".into()).unwrap();

        let ring = drbac_obs::RingRecorder::install(256);
        let report = f.net.restart_host(&"obs-home".into(), &store).unwrap();
        drbac_obs::clear_recorder();
        assert_eq!(report.replayed, 1);

        // The restart event carries the full recovery accounting, so
        // `drbac trace` shows exactly what a rebooted wallet got back.
        let events = ring.drain();
        let mine = |e: &&drbac_obs::TraceEvent| {
            e.name == "drbac.net.sim.restart"
                && e.fields.iter().any(|(k, v)| {
                    *k == "addr" && *v == drbac_obs::FieldValue::from("obs-home".to_string())
                })
        };
        let restart = events.iter().find(mine).expect("restart event traced");
        let field = |k: &str| {
            restart
                .fields
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(field("replayed"), Some(drbac_obs::FieldValue::from(1usize)));
        assert_eq!(field("skipped"), Some(drbac_obs::FieldValue::from(0usize)));
        assert_eq!(
            field("from_snapshot"),
            Some(drbac_obs::FieldValue::from(false))
        );
        assert_eq!(field("torn_tail"), Some(drbac_obs::FieldValue::from(false)));
        assert_eq!(field("rejected"), Some(drbac_obs::FieldValue::from(0usize)));
        assert!(field("truncated_bytes").is_some());
    }

    #[test]
    fn latency_jitter_is_seed_deterministic() {
        let elapsed = |seed: u64| {
            let f = fx();
            wallet(&f, "w1");
            f.net.set_fault_plan(Some(
                FaultPlan::seeded(seed).with_latency_jitter(Ticks(3)),
            ));
            for _ in 0..8 {
                f.net
                    .request(&"w1".into(), Request::FetchDeclarations)
                    .unwrap();
            }
            f.clock.now()
        };
        // 8 fault-free requests cost 16 ticks; jitter only adds.
        assert!(elapsed(5) >= Timestamp(16));
        assert_eq!(elapsed(5), elapsed(5), "same seed, same clock");
    }

    #[test]
    fn declarations_travel_over_the_wire() {
        let f = fx();
        wallet(&f, "w1");
        let bw = f.a.attr("BW", drbac_core::AttrOp::Min);
        let decl = drbac_core::SignedAttrDeclaration::sign(
            drbac_core::AttrDeclaration::new(bw, 200.0).unwrap(),
            &f.a,
        )
        .unwrap();
        let reply = f
            .net
            .request(&"w1".into(), Request::PublishDeclaration(decl.clone()))
            .unwrap();
        assert!(matches!(reply, Reply::DeclarationPublished));
        let reply = f
            .net
            .request(&"w1".into(), Request::FetchDeclarations)
            .unwrap();
        match reply {
            Reply::Declarations(ds) => assert_eq!(ds, vec![decl]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
