//! The deterministic simulated network of wallet hosts.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use drbac_core::{DelegationId, SimClock, Ticks, Timestamp, WalletAddr};
use drbac_wallet::{DelegationEvent, Wallet};
use parking_lot::{Mutex, RwLock};

use crate::proto::{OneWay, Reply, Request};

/// Errors from network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No host is registered at the address.
    UnknownHost(WalletAddr),
    /// The host is registered but currently unreachable (failure
    /// injection).
    HostDown(WalletAddr),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownHost(a) => write!(f, "no wallet host at {a}"),
            NetError::HostDown(a) => write!(f, "wallet host at {a} is down"),
        }
    }
}

impl std::error::Error for NetError {}

/// Message accounting for the efficiency experiments.
///
/// This is a *view* built from the network's metrics registry
/// ([`SimNet::registry`]) — the counters under `drbac.net.sim.*` are the
/// single source of truth; nothing is double-booked.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages on the wire (a request/reply pair counts as 2).
    pub total_messages: u64,
    /// One-way push messages (invalidations).
    pub push_messages: u64,
    /// Approximate payload bytes on the wire (canonical encodings).
    pub total_bytes: u64,
    /// Request counts by kind tag.
    pub requests_by_kind: BTreeMap<String, u64>,
}

impl NetStats {
    /// Count of requests with the given kind tag.
    pub fn requests(&self, kind: &str) -> u64 {
        self.requests_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Registry counter names backing the [`NetStats`] view.
    pub const MESSAGES: &'static str = "drbac.net.sim.messages.count";
    /// See [`NetStats::MESSAGES`].
    pub const PUSHES: &'static str = "drbac.net.sim.push.count";
    /// See [`NetStats::MESSAGES`].
    pub const BYTES: &'static str = "drbac.net.sim.bytes.total";
    /// Per-kind request counters live at `drbac.net.sim.request.<kind>.count`.
    pub const REQUEST_PREFIX: &'static str = "drbac.net.sim.request.";

    /// Builds the view from a registry snapshot (only `drbac.net.sim.*`
    /// counters are consulted).
    pub fn from_snapshot(snap: &drbac_obs::Snapshot) -> Self {
        let mut requests_by_kind = BTreeMap::new();
        for (name, v) in snap.counters_with_prefix(Self::REQUEST_PREFIX) {
            if v > 0 {
                if let Some(kind) = name
                    .strip_prefix(Self::REQUEST_PREFIX)
                    .and_then(|s| s.strip_suffix(".count"))
                {
                    requests_by_kind.insert(kind.to_string(), v);
                }
            }
        }
        NetStats {
            total_messages: snap.counters.get(Self::MESSAGES).copied().unwrap_or(0),
            push_messages: snap.counters.get(Self::PUSHES).copied().unwrap_or(0),
            total_bytes: snap.counters.get(Self::BYTES).copied().unwrap_or(0),
            requests_by_kind,
        }
    }
}

/// A wallet attached to the network, with the remote-subscriber registry
/// that implements the push side of delegation subscriptions.
#[derive(Clone)]
pub struct WalletHost {
    addr: WalletAddr,
    wallet: Wallet,
    /// delegation id → remote wallets subscribed to its status.
    subscribers: Arc<Mutex<HashMap<DelegationId, BTreeSet<WalletAddr>>>>,
    /// Events already applied locally (loop guard for cascaded pushes).
    seen_events: Arc<Mutex<HashSet<DelegationEvent>>>,
}

impl fmt::Debug for WalletHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalletHost")
            .field("addr", &self.addr)
            .field("wallet", &self.wallet)
            .finish()
    }
}

impl From<WalletHost> for Wallet {
    /// A host's wallet (shared state), e.g. for [`crate::DiscoveryAgent`].
    fn from(host: WalletHost) -> Wallet {
        host.wallet.clone()
    }
}

impl From<&WalletHost> for Wallet {
    fn from(host: &WalletHost) -> Wallet {
        host.wallet.clone()
    }
}

impl WalletHost {
    /// The host's address.
    pub fn addr(&self) -> &WalletAddr {
        &self.addr
    }

    /// The wallet served by this host.
    pub fn wallet(&self) -> &Wallet {
        &self.wallet
    }

    /// Remote wallets currently subscribed to `id`.
    pub fn subscribers_of(&self, id: DelegationId) -> BTreeSet<WalletAddr> {
        self.subscribers
            .lock()
            .get(&id)
            .cloned()
            .unwrap_or_default()
    }

    /// Handles a request, possibly enqueueing pushes onto `net`.
    fn handle(&self, net: &SimNet, req: Request) -> Reply {
        match req {
            Request::DirectQuery {
                subject,
                object,
                constraints,
            } => match self.wallet.find_proof(&subject, &object, &constraints) {
                Some(p) => Reply::Proofs(vec![p]),
                None => Reply::Proofs(vec![]),
            },
            Request::SubjectQuery {
                subject,
                constraints,
            } => Reply::Proofs(self.wallet.query_subject(&subject, &constraints)),
            Request::ObjectQuery {
                object,
                constraints,
            } => Reply::Proofs(self.wallet.query_object(&object, &constraints)),
            Request::Publish { cert, supports } => match self.wallet.publish(cert, supports) {
                Ok(id) => Reply::Published(id),
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::PublishDeclaration(decl) => match self.wallet.publish_declaration(&decl) {
                Ok(()) => Reply::DeclarationPublished,
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::Subscribe {
                delegation,
                subscriber,
            } => {
                self.subscribers
                    .lock()
                    .entry(delegation)
                    .or_default()
                    .insert(subscriber);
                Reply::Subscribed
            }
            Request::Unsubscribe {
                delegation,
                subscriber,
            } => {
                if let Some(set) = self.subscribers.lock().get_mut(&delegation) {
                    set.remove(&subscriber);
                }
                Reply::Subscribed
            }
            Request::Revoke(revocation) => match self.wallet.revoke(&revocation) {
                Ok(delivered) => {
                    let event = DelegationEvent {
                        delegation: revocation.delegation_id(),
                        reason: drbac_wallet::InvalidationReason::Revoked,
                    };
                    self.seen_events.lock().insert(event);
                    self.push_to_subscribers(net, event);
                    Reply::Revoked(delivered)
                }
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::FetchDeclarations => Reply::Declarations(self.wallet.signed_declarations()),
            Request::FetchDelegation(id) => {
                let now = self.wallet.now();
                let live = self.wallet.get(id).filter(|c| {
                    !self.wallet.with_graph(|g| g.is_revoked(id)) && !c.delegation().is_expired(now)
                });
                Reply::Delegation(live)
            }
        }
    }

    /// Revalidates every stale cached credential against its recorded
    /// source wallet (TTL refresh). Entries the source no longer vouches
    /// for are invalidated locally. Returns `(refreshed, dropped)`.
    pub fn refresh_stale(&self, net: &SimNet) -> (usize, usize) {
        let mut refreshed = 0;
        let mut dropped = 0;
        for id in self.wallet.stale_entries() {
            let Some(entry) = self.wallet.cache_entry(id) else {
                continue;
            };
            match net.request(&entry.source, Request::FetchDelegation(id)) {
                Ok(Reply::Delegation(Some(_))) => {
                    self.wallet.mark_refreshed(id);
                    refreshed += 1;
                }
                Ok(Reply::Delegation(None)) => {
                    // Source disowned it: invalidate locally and cascade.
                    let event = DelegationEvent {
                        delegation: id,
                        reason: drbac_wallet::InvalidationReason::Expired,
                    };
                    self.seen_events.lock().insert(event);
                    self.wallet.push_event(event);
                    self.push_to_subscribers(net, event);
                    dropped += 1;
                }
                _ => {} // unreachable source: keep the stale entry for now
            }
        }
        (refreshed, dropped)
    }

    /// Fans `event` out to this host's remote subscribers.
    fn push_to_subscribers(&self, net: &SimNet, event: DelegationEvent) {
        let targets = self.subscribers_of(event.delegation);
        for target in targets {
            net.send(&target, OneWay::Invalidate(event));
        }
    }

    /// Applies an incoming push: delivers to the local wallet (monitors,
    /// subscriptions, graph) and cascades to this host's own subscribers
    /// exactly once per event.
    fn apply_push(&self, net: &SimNet, event: DelegationEvent) {
        if !self.seen_events.lock().insert(event) {
            return; // already applied; break forwarding cycles
        }
        self.wallet.push_event(event);
        self.push_to_subscribers(net, event);
    }

    /// Processes local expiries and pushes resulting invalidations to
    /// subscribers. Drive after advancing the clock.
    pub fn process_expiries(&self, net: &SimNet) -> usize {
        let now = self.wallet.now();
        let expired: Vec<DelegationId> = self.wallet.with_graph(|g| {
            g.iter()
                .filter(|c| c.delegation().is_expired(now))
                .map(|c| c.id())
                .collect()
        });
        self.wallet.process_expiries();
        for id in &expired {
            let event = DelegationEvent {
                delegation: *id,
                reason: drbac_wallet::InvalidationReason::Expired,
            };
            self.seen_events.lock().insert(event);
            self.push_to_subscribers(net, event);
        }
        expired.len()
    }
}

/// An in-flight one-way message.
struct Envelope {
    deliver_at: Timestamp,
    seq: u64,
    to: WalletAddr,
    msg: OneWay,
}

impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for Envelope {}
impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Envelope {
    /// Min-heap by (time, seq): BinaryHeap is a max-heap, so reverse.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

struct SimState {
    clock: SimClock,
    latency: Ticks,
    hosts: RwLock<HashMap<WalletAddr, WalletHost>>,
    queue: Mutex<BinaryHeap<Envelope>>,
    /// Per-network metrics registry: the single accounting path.
    /// Instances are independent so parallel tests see exact counts.
    registry: Arc<drbac_obs::Registry>,
    /// Cached handles for the hot counters.
    msg_counter: Arc<drbac_obs::Counter>,
    push_msg_counter: Arc<drbac_obs::Counter>,
    bytes_counter: Arc<drbac_obs::Counter>,
    seq: AtomicU64,
    /// Failure injection: hosts currently unreachable.
    down: Mutex<HashSet<WalletAddr>>,
    /// Failure injection: drop every Nth push (0 = no loss).
    drop_every_nth_push: AtomicU64,
    push_counter: AtomicU64,
}

/// A deterministic discrete-event network of wallet hosts.
///
/// Requests are synchronous RPCs costing one latency each way; pushes are
/// queued one-way messages delivered by [`SimNet::run_until_idle`] in
/// `(time, sequence)` order. All message counts are recorded in
/// [`NetStats`].
///
/// # Example
///
/// ```
/// use drbac_core::{LocalEntity, Node, SimClock, Ticks};
/// use drbac_crypto::SchnorrGroup;
/// use drbac_net::{proto::Request, SimNet};
/// use drbac_wallet::Wallet;
/// # use rand::SeedableRng;
/// # use std::sync::Arc;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(71);
/// # let g = SchnorrGroup::test_256();
/// let clock = SimClock::new();
/// let net = SimNet::new(clock.clone(), Ticks(1));
/// let a = LocalEntity::generate("A", g.clone(), &mut rng);
/// let m = LocalEntity::generate("M", g, &mut rng);
/// net.add_host("wallet.a", Wallet::new("wallet.a", clock.clone()));
///
/// let cert = a.delegate(Node::entity(&m), Node::role(a.role("r"))).sign(&a)?;
/// let reply = net.request(&"wallet.a".into(), Request::Publish { cert: Arc::new(cert), supports: vec![] })?;
/// assert!(!reply.is_error());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct SimNet {
    state: Arc<SimState>,
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet")
            .field("hosts", &self.state.hosts.read().len())
            .field("now", &self.state.clock.now())
            .finish()
    }
}

impl SimNet {
    /// Creates a network with the given per-message latency.
    pub fn new(clock: SimClock, latency: Ticks) -> Self {
        let registry = Arc::new(drbac_obs::Registry::new());
        let msg_counter = registry.counter(NetStats::MESSAGES);
        let push_msg_counter = registry.counter(NetStats::PUSHES);
        let bytes_counter = registry.counter(NetStats::BYTES);
        SimNet {
            state: Arc::new(SimState {
                clock,
                latency,
                hosts: RwLock::new(HashMap::new()),
                queue: Mutex::new(BinaryHeap::new()),
                registry,
                msg_counter,
                push_msg_counter,
                bytes_counter,
                seq: AtomicU64::new(0),
                down: Mutex::new(HashSet::new()),
                drop_every_nth_push: AtomicU64::new(0),
                push_counter: AtomicU64::new(0),
            }),
        }
    }

    /// Failure injection: marks a host unreachable. Requests to it fail
    /// with [`NetError::HostDown`]; queued pushes addressed to it are
    /// dropped at delivery time.
    pub fn fail_host(&self, addr: &WalletAddr) {
        self.state.down.lock().insert(addr.clone());
    }

    /// Restores a failed host.
    pub fn restore_host(&self, addr: &WalletAddr) {
        self.state.down.lock().remove(addr);
    }

    /// `true` if the host is currently marked down.
    pub fn is_down(&self, addr: &WalletAddr) -> bool {
        self.state.down.lock().contains(addr)
    }

    /// Failure injection: deterministically drop every `n`th push message
    /// (0 disables loss).
    pub fn drop_every_nth_push(&self, n: u64) {
        self.state.drop_every_nth_push.store(n, Ordering::SeqCst);
    }

    /// Attaches `wallet` at `addr` and returns the host handle.
    pub fn add_host(&self, addr: impl Into<WalletAddr>, wallet: Wallet) -> WalletHost {
        let addr = addr.into();
        let host = WalletHost {
            addr: addr.clone(),
            wallet,
            subscribers: Arc::new(Mutex::new(HashMap::new())),
            seen_events: Arc::new(Mutex::new(HashSet::new())),
        };
        self.state.hosts.write().insert(addr, host.clone());
        host
    }

    /// The host at `addr`, if any.
    pub fn host(&self, addr: &WalletAddr) -> Option<WalletHost> {
        self.state.hosts.read().get(addr).cloned()
    }

    /// The shared clock.
    pub fn clock(&self) -> SimClock {
        self.state.clock.clone()
    }

    /// Sends a synchronous request; the clock advances one latency each
    /// way and both messages are counted.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownHost`] if nothing is registered at `to`.
    pub fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError> {
        let host = self
            .host(to)
            .ok_or_else(|| NetError::UnknownHost(to.clone()))?;
        if self.is_down(to) {
            // The attempt still costs a (lost) message and a timeout's
            // worth of waiting.
            self.state.msg_counter.inc();
            self.state.clock.advance(self.state.latency);
            return Err(NetError::HostDown(to.clone()));
        }
        self.state.msg_counter.add(2);
        self.state.bytes_counter.add(req.encoded_len() as u64);
        self.state
            .registry
            .counter(format!("{}{}.count", NetStats::REQUEST_PREFIX, req.kind()))
            .inc();
        drbac_obs::event!(
            "drbac.net.sim.request",
            "to" => to.to_string(),
            "kind" => req.kind(),
        );
        self.state.clock.advance(self.state.latency);
        let reply = host.handle(self, req);
        self.state.clock.advance(self.state.latency);
        self.state.bytes_counter.add(reply.encoded_len() as u64);
        Ok(reply)
    }

    /// Enqueues a one-way push for delivery after one latency.
    pub fn send(&self, to: &WalletAddr, msg: OneWay) {
        let deliver_at = self.state.clock.now().after(self.state.latency);
        let seq = self.state.seq.fetch_add(1, Ordering::SeqCst);
        self.state.msg_counter.inc();
        self.state.push_msg_counter.inc();
        self.state.bytes_counter.add(48); // delegation id + reason + header
        drbac_obs::event!("drbac.net.sim.push", "to" => to.to_string(),);
        self.state.queue.lock().push(Envelope {
            deliver_at,
            seq,
            to: to.clone(),
            msg,
        });
    }

    /// Delivers queued pushes in timestamp order (advancing the clock to
    /// each delivery time) until the queue is empty. Returns the number of
    /// messages delivered.
    pub fn run_until_idle(&self) -> usize {
        let mut delivered = 0;
        loop {
            let envelope = match self.state.queue.lock().pop() {
                Some(e) => e,
                None => return delivered,
            };
            self.state.clock.advance_to(envelope.deliver_at);
            if self.is_down(&envelope.to) {
                continue; // lost: host is down
            }
            let n = self.state.drop_every_nth_push.load(Ordering::SeqCst);
            if n > 0 {
                let count = self.state.push_counter.fetch_add(1, Ordering::SeqCst) + 1;
                if count.is_multiple_of(n) {
                    continue; // injected message loss
                }
            }
            delivered += 1;
            let Some(host) = self.host(&envelope.to) else {
                continue; // host vanished; drop the message
            };
            match envelope.msg {
                OneWay::Invalidate(event) => host.apply_push(self, event),
            }
        }
    }

    /// A snapshot of the message counters — a [`NetStats`] view over the
    /// network's metrics registry.
    pub fn stats(&self) -> NetStats {
        NetStats::from_snapshot(&self.state.registry.snapshot())
    }

    /// Resets the message counters (between experiment phases). Counters
    /// incremented concurrently land in either the pre- or post-reset
    /// epoch — never both.
    pub fn reset_stats(&self) {
        self.state.registry.reset();
    }

    /// The per-network metrics registry backing [`SimNet::stats`]. Merge
    /// its snapshot with [`drbac_obs::global`]'s for a full picture.
    pub fn registry(&self) -> Arc<drbac_obs::Registry> {
        Arc::clone(&self.state.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{LocalEntity, Node, Proof, ProofStep, SignedRevocation};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fx {
        clock: SimClock,
        net: SimNet,
        a: LocalEntity,
        m: LocalEntity,
    }

    fn fx() -> Fx {
        let mut rng = StdRng::seed_from_u64(81);
        let g = SchnorrGroup::test_256();
        let clock = SimClock::new();
        Fx {
            net: SimNet::new(clock.clone(), Ticks(1)),
            clock,
            a: LocalEntity::generate("A", g.clone(), &mut rng),
            m: LocalEntity::generate("M", g, &mut rng),
        }
    }

    fn wallet(f: &Fx, addr: &str) -> WalletHost {
        f.net.add_host(addr, Wallet::new(addr, f.clock.clone()))
    }

    #[test]
    fn request_to_unknown_host_fails() {
        let f = fx();
        let err = f
            .net
            .request(&"nowhere".into(), crate::proto::Request::FetchDeclarations);
        assert!(matches!(err, Err(NetError::UnknownHost(_))));
    }

    #[test]
    fn publish_and_query_via_network() {
        let f = fx();
        wallet(&f, "w1");
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        let reply = f
            .net
            .request(
                &"w1".into(),
                Request::Publish {
                    cert: Arc::new(cert),
                    supports: vec![],
                },
            )
            .unwrap();
        assert!(matches!(reply, Reply::Published(_)));

        let reply = f
            .net
            .request(
                &"w1".into(),
                Request::DirectQuery {
                    subject: Node::entity(&f.m),
                    object: Node::role(f.a.role("r")),
                    constraints: vec![],
                },
            )
            .unwrap();
        match reply {
            Reply::Proofs(proofs) => assert_eq!(proofs.len(), 1),
            other => panic!("unexpected reply {other:?}"),
        }

        let stats = f.net.stats();
        assert_eq!(stats.total_messages, 4);
        assert_eq!(stats.requests("publish"), 1);
        assert_eq!(stats.requests("direct-query"), 1);
        // Each request advanced the clock twice.
        assert_eq!(f.clock.now(), Timestamp(4));
    }

    #[test]
    fn revocation_pushes_to_remote_subscribers() {
        let f = fx();
        let home = wallet(&f, "home");
        let cache = wallet(&f, "cache");

        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        // Cache absorbs a copy and subscribes at the home wallet.
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
        let monitor = cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();
        f.net
            .request(
                &"home".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache".into(),
                },
            )
            .unwrap();
        assert_eq!(home.subscribers_of(cert.id()).len(), 1);

        // Issuer revokes at the home wallet.
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        let reply = f
            .net
            .request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        assert!(matches!(reply, Reply::Revoked(_)));

        // Push is queued, not yet delivered.
        assert!(monitor.is_valid());
        let delivered = f.net.run_until_idle();
        assert_eq!(delivered, 1);
        assert!(!monitor.is_valid(), "push invalidated the cached proof");
        assert_eq!(f.net.stats().push_messages, 1);
    }

    #[test]
    fn cascaded_pushes_follow_subscription_chains() {
        // home -> cache1 -> cache2 subscription chain: a revocation at home
        // reaches cache2 through cache1.
        let f = fx();
        let home = wallet(&f, "home");
        let cache1 = wallet(&f, "cache1");
        let cache2 = wallet(&f, "cache2");

        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        cache1.wallet().absorb_proof(&proof, home.addr()).unwrap();
        cache2.wallet().absorb_proof(&proof, cache1.addr()).unwrap();

        f.net
            .request(
                &"home".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache1".into(),
                },
            )
            .unwrap();
        f.net
            .request(
                &"cache1".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache2".into(),
                },
            )
            .unwrap();

        let m2 = cache2
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.net
            .request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        let delivered = f.net.run_until_idle();
        assert_eq!(delivered, 2, "home->cache1, cache1->cache2");
        assert!(!m2.is_valid());
    }

    #[test]
    fn push_cycles_are_broken_by_seen_set() {
        // Mutually subscribed hosts must not ping-pong forever.
        let f = fx();
        let w1 = wallet(&f, "w1");
        let w2 = wallet(&f, "w2");
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        w1.wallet().publish(cert.clone(), vec![]).unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        w2.wallet().absorb_proof(&proof, w1.addr()).unwrap();
        f.net
            .request(
                &"w1".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "w2".into(),
                },
            )
            .unwrap();
        f.net
            .request(
                &"w2".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "w1".into(),
                },
            )
            .unwrap();
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.net
            .request(&"w1".into(), Request::Revoke(revocation))
            .unwrap();
        let delivered = f.net.run_until_idle();
        assert!(
            delivered <= 2,
            "delivered {delivered}, expected no ping-pong"
        );
    }

    #[test]
    fn expiry_pushes_like_revocation() {
        let f = fx();
        let home = wallet(&f, "home");
        let cache = wallet(&f, "cache");
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .expires(Timestamp(5))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
        f.net
            .request(
                &"home".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache".into(),
                },
            )
            .unwrap();
        let monitor = cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();

        f.clock.advance(Ticks(10));
        assert_eq!(home.process_expiries(&f.net), 1);
        f.net.run_until_idle();
        assert!(!monitor.is_valid());
    }

    #[test]
    fn ttl_refresh_revalidates_and_drops() {
        let f = fx();
        let home = wallet(&f, "home");
        let cache = wallet(&f, "cache");
        let tag = drbac_core::DiscoveryTag::new("home").with_ttl(Ticks(10));
        let keep =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("keep")))
                .subject_tag(tag.clone())
                .sign(&f.a)
                .unwrap();
        let lose =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("lose")))
                .subject_tag(tag)
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(keep.clone(), vec![]).unwrap();
        home.wallet().publish(lose.clone(), vec![]).unwrap();
        for cert in [&keep, &lose] {
            let proof = Proof::from_steps(vec![ProofStep::new((*cert).clone())]).unwrap();
            cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
        }

        // The home wallet revokes `lose`.
        let revocation = SignedRevocation::revoke(&lose, &f.a, f.clock.now()).unwrap();
        home.wallet().revoke(&revocation).unwrap();

        // TTL lapses; refresh keeps `keep`, drops `lose`.
        f.clock.advance(Ticks(11));
        assert_eq!(cache.wallet().stale_entries().len(), 2);
        let (refreshed, dropped) = cache.refresh_stale(&f.net);
        assert_eq!((refreshed, dropped), (1, 1));
        assert!(cache.wallet().stale_entries().is_empty());
        assert!(cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("keep")), &[])
            .is_some());
        assert!(cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("lose")), &[])
            .is_none());
    }

    #[test]
    fn downed_host_rejects_requests_and_loses_pushes() {
        let f = fx();
        let home = wallet(&f, "home");
        let cache = wallet(&f, "cache");
        let tag = drbac_core::DiscoveryTag::new("home").with_ttl(Ticks(10));
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .subject_tag(tag)
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
        f.net
            .request(
                &"home".into(),
                Request::Subscribe {
                    delegation: cert.id(),
                    subscriber: "cache".into(),
                },
            )
            .unwrap();
        let monitor = cache
            .wallet()
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();

        // Cache goes down; the revocation push is lost.
        f.net.fail_host(&"cache".into());
        assert!(matches!(
            f.net.request(&"cache".into(), Request::FetchDeclarations),
            Err(NetError::HostDown(_))
        ));
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.net
            .request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        assert_eq!(f.net.run_until_idle(), 0, "push dropped while host down");
        assert!(
            monitor.is_valid(),
            "cache is stale — exactly why TTLs exist"
        );

        // Host recovers; TTL refresh discovers the revocation.
        f.net.restore_host(&"cache".into());
        f.clock.advance(Ticks(1_000));
        let (_, dropped) = cache.refresh_stale(&f.net);
        assert_eq!(dropped, 1);
        assert!(!monitor.is_valid(), "refresh caught up with the revocation");
    }

    #[test]
    fn deterministic_push_loss() {
        let f = fx();
        let home = wallet(&f, "home");
        let caches: Vec<WalletHost> = (0..4).map(|i| wallet(&f, &format!("c{i}"))).collect();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        home.wallet().publish(cert.clone(), vec![]).unwrap();
        for c in &caches {
            let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
            c.wallet().absorb_proof(&proof, home.addr()).unwrap();
            f.net
                .request(
                    &"home".into(),
                    Request::Subscribe {
                        delegation: cert.id(),
                        subscriber: c.addr().clone(),
                    },
                )
                .unwrap();
        }
        f.net.drop_every_nth_push(2); // lose half the pushes
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.net
            .request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        let delivered = f.net.run_until_idle();
        assert_eq!(delivered, 2, "2 of 4 pushes delivered");
        let revoked_count = caches
            .iter()
            .filter(|c| c.wallet().with_graph(|g| g.is_revoked(cert.id())))
            .count();
        assert_eq!(revoked_count, 2);
    }

    #[test]
    fn byte_accounting_tracks_payload_sizes() {
        let f = fx();
        wallet(&f, "w1");
        assert_eq!(f.net.stats().total_bytes, 0);
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        let cert_len = cert.to_bytes().len() as u64;
        f.net
            .request(
                &"w1".into(),
                Request::Publish {
                    cert: Arc::new(cert),
                    supports: vec![],
                },
            )
            .unwrap();
        let after_publish = f.net.stats().total_bytes;
        assert!(
            after_publish >= cert_len,
            "publish carries the credential bytes"
        );

        // A query reply carrying a proof adds more than a subscribe ack.
        f.net
            .request(
                &"w1".into(),
                Request::DirectQuery {
                    subject: Node::entity(&f.m),
                    object: Node::role(f.a.role("r")),
                    constraints: vec![],
                },
            )
            .unwrap();
        let after_query = f.net.stats().total_bytes;
        assert!(
            after_query > after_publish + cert_len / 2,
            "reply carried the proof"
        );
    }

    #[test]
    fn stats_view_reflects_registry_counters() {
        let f = fx();
        wallet(&f, "w1");
        f.net
            .request(&"w1".into(), Request::FetchDeclarations)
            .unwrap();
        let snap = f.net.registry().snapshot();
        assert_eq!(snap.counters.get(NetStats::MESSAGES), Some(&2));
        let stats = f.net.stats();
        assert_eq!(stats.total_messages, 2);
        assert_eq!(stats.requests("fetch-declarations"), 1);
        f.net.reset_stats();
        assert_eq!(f.net.stats(), NetStats::default());
        // The registry keeps the (zeroed) instruments; the view hides
        // never-again-seen kinds just like a fresh NetStats would.
        assert_eq!(
            f.net.registry().snapshot().counters.get(NetStats::MESSAGES),
            Some(&0)
        );
    }

    #[test]
    fn concurrent_senders_survive_reset_without_double_counting() {
        // Phase 1: four threads hammer requests while the main thread
        // repeatedly snapshots and resets — must not panic or wedge.
        let f = fx();
        wallet(&f, "w1");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let start = Arc::new(std::sync::Barrier::new(5));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let net = f.net.clone();
                let stop = Arc::clone(&stop);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    let mut sent = 0u64;
                    // Every worker sends at least once, even if the main
                    // thread races through its reset loop first.
                    while sent == 0 || !stop.load(Ordering::SeqCst) {
                        net.request(&"w1".into(), Request::FetchDeclarations)
                            .unwrap();
                        sent += 1;
                    }
                    sent
                })
            })
            .collect();
        start.wait();
        for _ in 0..100 {
            let _ = f.net.stats();
            f.net.reset_stats();
        }
        stop.store(true, Ordering::SeqCst);
        let sent: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(sent > 0);
        // All senders joined: a final reset leaves everything at zero.
        f.net.reset_stats();
        assert_eq!(f.net.stats(), NetStats::default());

        // Phase 2: with no resets interleaved, concurrent senders are
        // counted exactly once each — no double counting.
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let net = f.net.clone();
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        net.request(&"w1".into(), Request::FetchDeclarations)
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = f.net.stats();
        assert_eq!(stats.total_messages, 2 * 1000);
        assert_eq!(stats.requests("fetch-declarations"), 1000);
    }

    #[test]
    fn declarations_travel_over_the_wire() {
        let f = fx();
        wallet(&f, "w1");
        let bw = f.a.attr("BW", drbac_core::AttrOp::Min);
        let decl = drbac_core::SignedAttrDeclaration::sign(
            drbac_core::AttrDeclaration::new(bw, 200.0).unwrap(),
            &f.a,
        )
        .unwrap();
        let reply = f
            .net
            .request(&"w1".into(), Request::PublishDeclaration(decl.clone()))
            .unwrap();
        assert!(matches!(reply, Reply::DeclarationPublished));
        let reply = f
            .net
            .request(&"w1".into(), Request::FetchDeclarations)
            .unwrap();
        match reply {
            Reply::Declarations(ds) => assert_eq!(ds, vec![decl]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
