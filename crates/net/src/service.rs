//! A threaded wallet service: the deployment shape of a wallet host.
//!
//! [`SimNet`](crate::SimNet) gives deterministic in-process dispatch for
//! tests and experiments; `WalletService` runs the same [`Wallet`] behind
//! a real thread and channel-based RPC, demonstrating that the whole
//! stack is `Send + Sync` and that many concurrent clients can be served
//! — the shape a production dRBAC wallet daemon would take (the paper's
//! prototype served DisCo queries the same way).

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use drbac_wallet::Wallet;

use crate::proto::{Reply, Request};

enum Command {
    Rpc(Request, Sender<Reply>),
    Shutdown,
}

/// Handle to a wallet served on its own thread. Cloneable; clones talk
/// to the same service.
#[derive(Debug, Clone)]
pub struct WalletClient {
    tx: Sender<Command>,
}

/// Error talking to the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("wallet service has shut down")
    }
}

impl std::error::Error for ServiceClosed {}

impl WalletClient {
    /// Sends a request and waits for the reply.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the service thread has exited.
    pub fn call(&self, request: Request) -> Result<Reply, ServiceClosed> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Command::Rpc(request, reply_tx))
            .map_err(|_| ServiceClosed)?;
        reply_rx.recv().map_err(|_| ServiceClosed)
    }
}

/// A wallet running on a dedicated service thread.
#[derive(Debug)]
pub struct WalletService {
    client: WalletClient,
    wallet: Wallet,
    worker: Option<JoinHandle<u64>>,
    tx: Sender<Command>,
}

impl WalletService {
    /// Spawns the service thread around `wallet`.
    pub fn spawn(wallet: Wallet) -> Self {
        let (tx, rx): (Sender<Command>, Receiver<Command>) = unbounded();
        let served_wallet = wallet.clone();
        let worker = std::thread::Builder::new()
            .name(format!("drbac-wallet-{}", wallet.addr()))
            .spawn(move || Self::run(served_wallet, rx))
            .expect("spawn wallet service");
        WalletService {
            client: WalletClient { tx: tx.clone() },
            wallet,
            worker: Some(worker),
            tx,
        }
    }

    fn run(wallet: Wallet, rx: Receiver<Command>) -> u64 {
        let mut served = 0u64;
        while let Ok(cmd) = rx.recv() {
            match cmd {
                Command::Rpc(request, reply_tx) => {
                    served += 1;
                    let reply = Self::handle(&wallet, request);
                    let _ = reply_tx.send(reply);
                }
                Command::Shutdown => break,
            }
        }
        served
    }

    /// The service-side request dispatch (subscription fan-out is the
    /// caller's concern here; use [`crate::SimNet`] hosts for that).
    fn handle(wallet: &Wallet, request: Request) -> Reply {
        match request {
            Request::DirectQuery {
                subject,
                object,
                constraints,
            } => match wallet.find_proof(&subject, &object, &constraints) {
                Some(p) => Reply::Proofs(vec![p]),
                None => Reply::Proofs(vec![]),
            },
            Request::SubjectQuery {
                subject,
                constraints,
            } => Reply::Proofs(wallet.query_subject(&subject, &constraints)),
            Request::ObjectQuery {
                object,
                constraints,
            } => Reply::Proofs(wallet.query_object(&object, &constraints)),
            Request::Publish { cert, supports } => match wallet.publish(cert, supports) {
                Ok(id) => Reply::Published(id),
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::PublishDeclaration(decl) => match wallet.publish_declaration(&decl) {
                Ok(()) => Reply::DeclarationPublished,
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::Revoke(revocation) => match wallet.revoke(&revocation) {
                Ok(n) => Reply::Revoked(n),
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::FetchDeclarations => Reply::Declarations(wallet.signed_declarations()),
            Request::FetchDelegation(id) => {
                let now = wallet.now();
                let live = wallet.get(id).filter(|c| {
                    !wallet.is_revoked(id) && !c.delegation().is_expired(now)
                });
                Reply::Delegation(live)
            }
            Request::Subscribe { .. } | Request::Unsubscribe { .. } => {
                Reply::Error("push subscriptions are served by SimNet hosts".into())
            }
            Request::Stats | Request::Health => {
                Reply::Error("stats/health are served by TCP daemons".into())
            }
        }
    }

    /// A client handle (cheap to clone, usable from any thread).
    pub fn client(&self) -> WalletClient {
        self.client.clone()
    }

    /// Direct access to the underlying wallet (same shared state the
    /// service thread operates on).
    pub fn wallet(&self) -> &Wallet {
        &self.wallet
    }

    /// Stops the service and returns how many requests it served.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(Command::Shutdown);
        self.worker
            .take()
            .map(|w| w.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for WalletService {
    /// Signals shutdown without blocking; use [`WalletService::shutdown`]
    /// to wait for the thread.
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Shutdown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{LocalEntity, Node, SimClock};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn serves_publish_and_query() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let m = LocalEntity::generate("M", g, &mut rng);
        let service = WalletService::spawn(Wallet::new("svc", SimClock::new()));
        let client = service.client();

        let cert = a
            .delegate(Node::entity(&m), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        let reply = client
            .call(Request::Publish {
                cert: Arc::new(cert),
                supports: vec![],
            })
            .unwrap();
        assert!(matches!(reply, Reply::Published(_)));

        let reply = client
            .call(Request::DirectQuery {
                subject: Node::entity(&m),
                object: Node::role(a.role("r")),
                constraints: vec![],
            })
            .unwrap();
        match reply {
            Reply::Proofs(p) => assert_eq!(p.len(), 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(service.shutdown(), 2);
    }

    #[test]
    fn concurrent_clients_from_many_threads() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let users: Vec<LocalEntity> = (0..8)
            .map(|i| LocalEntity::generate(format!("U{i}"), g.clone(), &mut rng))
            .collect();
        let service = WalletService::spawn(Wallet::new("svc", SimClock::new()));
        for u in &users {
            service
                .wallet()
                .publish(
                    a.delegate(Node::entity(u), Node::role(a.role("r")))
                        .sign(&a)
                        .unwrap(),
                    vec![],
                )
                .unwrap();
        }

        let role = a.role("r");
        let handles: Vec<_> = users
            .iter()
            .map(|u| {
                let client = service.client();
                let subject = Node::entity(u);
                let object = Node::role(role.clone());
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let reply = client
                            .call(Request::DirectQuery {
                                subject: subject.clone(),
                                object: object.clone(),
                                constraints: vec![],
                            })
                            .unwrap();
                        assert!(matches!(reply, Reply::Proofs(ref p) if p.len() == 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(service.shutdown(), 80);
    }

    #[test]
    fn closed_service_reports_error() {
        let service = WalletService::spawn(Wallet::new("svc", SimClock::new()));
        let client = service.client();
        service.shutdown();
        assert!(matches!(
            client.call(Request::FetchDeclarations),
            Err(ServiceClosed)
        ));
    }
}
