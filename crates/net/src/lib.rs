#![warn(missing_docs)]

//! Distributed dRBAC infrastructure (paper §4.2).
//!
//! The paper's prototype ran wallets on Java hosts connected by the
//! Switchboard secure-communication layer. This crate reproduces that
//! architecture on a deterministic substrate:
//!
//! * [`proto`] — the inter-wallet request/reply and push message types;
//! * [`SimNet`] / [`WalletHost`] — a discrete-event simulated network of
//!   wallet hosts with per-message latency and full message accounting
//!   ([`NetStats`]), so tests can assert the exact step-by-step behaviour
//!   of the paper's Figure 2 walkthrough;
//! * [`DiscoveryAgent`] — the §4.2.1 tag-directed distributed discovery
//!   algorithm (forward, reverse, and bidirectional modes);
//! * [`Switchboard`] — credentialed secure channels (handshake with real
//!   signatures, optionally gated on a continuously monitored role proof),
//!   modelled after the Switchboard abstraction the paper builds on (its reference \[8\]);
//! * [`PushHub`] — a threaded (crossbeam) pub/sub fan-out demonstrating
//!   the asynchronous event-push delivery model of delegation
//!   subscriptions.
//!
//! The simulator also injects faults deterministically: a seeded
//! [`FaultPlan`] adds request loss, latency jitter and timeouts, and the
//! network supports partitions (with parked, redelivered pushes) and
//! wallet crash/restart. [`RetryPolicy`] gives discovery and switchboard
//! lookups bounded retries with exponential backoff, and
//! [`DiscoveryOutcome::degraded`](DiscoveryOutcome) records when an
//! answer survived on retries or skipped an unreachable wallet.
//!
//! Two deployment shapes sit under the same [`Transport`] trait:
//!
//! * **SimNet** (see DESIGN.md §4.2): wallet hosts inside one process on
//!   a simulated clock, so chaos and parity experiments are exactly
//!   reproducible; the message patterns, validation work, and
//!   subscription semantics match the real deployment.
//! * **TCP** ([`wire`] + [`TcpTransport`] + [`WalletDaemon`]): each
//!   wallet served by a socket daemon, messages as length-prefixed
//!   CRC-framed canonical bytes, delegation subscriptions pushed over a
//!   persistent subscriber connection ([`SubscriberLink`]) that
//!   reconnects and resubscribes when the daemon drops.

pub mod audit;
mod daemon;
mod discovery;
pub mod proto;
mod push;
mod service;
mod sim;
mod switchboard;
mod tcp;
mod transport;
pub mod wire;

pub use audit::{audit_store_compliance, redelegations_of, AuditEndpoint, StoreViolation};
pub use daemon::{DaemonConfig, SubscriberLink, WalletDaemon};
pub use discovery::{
    Directory, DiscoveryAgent, DiscoveryOutcome, DiscoveryStep, SearchMode, TagLookup,
};
pub use proto::HealthReport;
pub use push::{PushHub, PushPublisher};
pub use service::{ServiceClosed, WalletClient, WalletService};
pub use sim::{FaultPlan, NetError, NetStats, SimNet, StoreHandle, WalletHost};
pub use switchboard::{Channel, ChannelError, Switchboard};
pub use tcp::{PipelinedClient, TcpConfig, TcpTransport};
pub use transport::{RetryOutcome, RetryPolicy, ServiceRegistry, Transport};
