//! Length-prefixed, CRC-framed wire codec for the inter-wallet protocol.
//!
//! This module is what lets [`Request`] / [`Reply`] values cross a
//! real byte stream
//! (TCP sockets, pipes, files) instead of an in-process channel. It
//! reuses the framing discipline of `drbac-store`'s write-ahead log:
//! every frame is length-prefixed and carries a CRC-32 (IEEE) of its
//! payload, and every payload is the workspace's canonical wire
//! encoding (`drbac-core::wire`) — so a credential on the socket is
//! byte-identical to one in the journal.
//!
//! # Frame layout
//!
//! The byte-level layouts, the TLV extension-tag registry, the
//! request/reply/push state machines, and the version-negotiation and
//! compatibility rules are specified normatively in
//! [`docs/PROTOCOL.md`](https://github.com/drbac/drbac/blob/main/docs/PROTOCOL.md)
//! — that document is the contract; this module is one implementation
//! of it. In brief:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   b"dRBW"
//! 4       1     version 0x01 (bare), 0x02 (+ ext block),
//!               or 0x03 (+ request id + ext block)
//! 5       1     kind    1=request 2=reply 3=push 4=push-register
//! 6       4     len     payload length, u32 big-endian (max 16 MiB)
//! 10      4     crc     CRC-32 (IEEE) of the payload bytes
//! --- version 0x03 only: multiplexing id ---
//! 14      8     request_id  u64 big-endian, echoed verbatim in the reply
//! --- versions 0x02 and 0x03: extension block (at 14 for v2, 22 for v3) ---
//!         1     ext_count  number of TLV extensions (max 16; may be 0)
//!         per extension:
//!         1     tag     1=trace-context (unknown tags are skipped)
//!         1     elen    extension byte length
//!         elen  ebody   tag 1: trace_id u64 BE ++ parent_span u64 BE
//! --- then ---
//!         len   payload canonical encoding of the message
//! ```
//!
//! Version 0x01 frames have no extension block; senders only emit
//! version 0x02 when a trace context is attached, so a peer that
//! predates tracing keeps interoperating until a trace actually
//! crosses to it (and then fails cleanly with `BadVersion`). Version
//! 0x03 frames carry a `request_id` so one connection can multiplex
//! many in-flight requests ([`crate::PipelinedClient`]): the daemon
//! treats the id as an opaque token and echoes it on the matching
//! reply, which may arrive out of order. Senders only emit version
//! 0x03 after explicitly opting into pipelining, so peers that never
//! pipeline keep exchanging byte-identical v1/v2 frames. Decoders here
//! accept all three versions and skip unknown extension tags, so newer
//! peers can add extensions without breaking us.
//!
//! # Invariants
//!
//! * **A decoder never panics and never over-allocates.** A length
//!   above [`MAX_FRAME_LEN`] is rejected *before* any allocation
//!   ([`WireError::Oversized`]); torn input surfaces as
//!   [`WireError::Io`] / [`WireError::Decode`], bit flips as
//!   [`WireError::Crc`] — all errors, never a crash.
//! * **Frames are self-delimiting.** A reader that hits a bad frame
//!   knows the stream is unusable (framing is not self-resynchronizing
//!   by design — the transport drops the connection and reconnects
//!   rather than guessing at a resync point).
//! * **Payloads are canonical.** The same value always encodes to the
//!   same bytes, so signatures carried inside survive the trip.
//!
//! # Which errors are retryable?
//!
//! None at this layer: a [`WireError`] means the *stream* is broken or
//! the *peer* is speaking garbage. The TCP transport maps stream
//! errors to transient [`NetError`](crate::NetError) variants (drop
//! the connection, retry on a fresh one) and protocol violations to
//! the permanent [`NetError::Protocol`](crate::NetError) — retrying a
//! malformed conversation does not repair it.

use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

use drbac_core::{
    Decode, DecodeError, DelegationId, Encode, Node, Reader, SignedAttrDeclaration,
    SignedDelegation, SignedRevocation, WalletAddr, Writer,
};
use drbac_store::crc32;
use drbac_wallet::{DelegationEvent, InvalidationReason};

use crate::proto::{OneWay, Reply, Request};

/// Leading magic of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"dRBW";

/// Base protocol version (no extension block).
pub const WIRE_VERSION: u8 = 1;

/// Protocol version carrying a TLV extension block (trace context).
pub const WIRE_VERSION_TRACED: u8 = 2;

/// Protocol version carrying a multiplexing `request_id` (plus the TLV
/// extension block). Emitted only by peers that explicitly opted into
/// pipelining — see [`crate::PipelinedClient`].
pub const WIRE_VERSION_MUX: u8 = 3;

/// Extension tag: distributed trace context (16 bytes — trace_id u64
/// BE followed by parent_span u64 BE).
pub const EXT_TRACE_CONTEXT: u8 = 1;

/// Upper bound on extensions per frame; more is a protocol violation.
pub const MAX_FRAME_EXTS: usize = 16;

/// Upper bound on a frame payload (16 MiB). A length prefix above this
/// is treated as a protocol violation, not an allocation request — the
/// decoder rejects it before reserving a single byte.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Fixed frame header size (magic + version + kind + len + crc).
pub const FRAME_HEADER_LEN: usize = 14;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A [`Request`] awaiting a reply on the same connection.
    Request,
    /// A [`Reply`] to the connection's previous request.
    Reply,
    /// A one-way push ([`OneWay`]); no reply is sent.
    Push,
    /// Converts the connection into a persistent push channel: the
    /// payload names the subscriber's wallet address, and the server
    /// will write [`FrameKind::Push`] frames down this connection from
    /// now on.
    PushRegister,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Reply => 2,
            FrameKind::Push => 3,
            FrameKind::PushRegister => 4,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Reply),
            3 => Some(FrameKind::Push),
            4 => Some(FrameKind::PushRegister),
            _ => None,
        }
    }
}

/// Distributed trace context carried in a frame's extension block:
/// which trace the message belongs to and which peer-side span it hangs
/// under. See `drbac-obs`'s `set_current_trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Fleet-unique id of the distributed trace (never 0 on the wire).
    pub trace_id: u64,
    /// The sender-side span that emitted this frame (0 for none).
    pub parent_span: u64,
}

/// A decoded frame: kind tag plus raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Multiplexing request id (version 0x03 frames only). On a
    /// request, the id the reply must echo; on a reply, the id of the
    /// request it answers. `None` on v1/v2 frames: strict
    /// request/reply alternation.
    pub request_id: Option<u64>,
    /// Trace context from the frame's extension block, if the sender
    /// attached one (version 0x02/0x03 frames only).
    pub trace: Option<TraceContext>,
    /// The payload's canonical encoding (CRC already verified).
    pub payload: Vec<u8>,
}

/// Error reading or writing a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (includes EOF mid-frame: a torn
    /// frame surfaces as `UnexpectedEof`).
    Io(std::io::Error),
    /// The first four bytes were not [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version we do not.
    BadVersion(u8),
    /// The kind byte had no meaning.
    UnknownKind(u8),
    /// The length prefix exceeds [`MAX_FRAME_LEN`] — rejected before
    /// allocation.
    Oversized(u64),
    /// The payload's CRC-32 did not match the header.
    Crc {
        /// CRC the header claimed.
        expected: u32,
        /// CRC of the bytes actually read.
        found: u32,
    },
    /// The payload failed canonical decoding.
    Decode(DecodeError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "stream error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Oversized(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::Crc { expected, found } => {
                write!(f, "payload CRC mismatch (header {expected:#010x}, data {found:#010x})")
            }
            WireError::Decode(e) => write!(f, "payload decode error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

/// Writes one frame (header + payload) to `w`. Does not flush.
///
/// # Errors
///
/// [`WireError::Oversized`] if the payload exceeds [`MAX_FRAME_LEN`];
/// [`WireError::Io`] if the stream fails.
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    write_frame_traced(w, kind, payload, None)
}

/// Writes one frame, attaching `trace` in a version-0x02 extension
/// block when present. Without a trace this emits a plain version-0x01
/// frame, so tracing-off peers keep interoperating with old decoders.
///
/// # Errors
///
/// Same as [`write_frame`].
pub fn write_frame_traced<W: Write>(
    w: &mut W,
    kind: FrameKind,
    payload: &[u8],
    trace: Option<TraceContext>,
) -> Result<(), WireError> {
    write_frame_inner(w, kind, payload, None, trace)
}

/// Writes one version-0x03 (multiplexed) frame carrying `request_id`,
/// with an optional trace context in the extension block. Only peers
/// that explicitly opted into pipelining speak this version — see the
/// compatibility rules in `docs/PROTOCOL.md`.
///
/// # Errors
///
/// Same as [`write_frame`].
pub fn write_frame_mux<W: Write>(
    w: &mut W,
    kind: FrameKind,
    payload: &[u8],
    request_id: u64,
    trace: Option<TraceContext>,
) -> Result<(), WireError> {
    write_frame_inner(w, kind, payload, Some(request_id), trace)
}

fn write_frame_inner<W: Write>(
    w: &mut W,
    kind: FrameKind,
    payload: &[u8],
    request_id: Option<u64>,
    trace: Option<TraceContext>,
) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::Oversized(payload.len() as u64));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4] = if request_id.is_some() {
        WIRE_VERSION_MUX
    } else if trace.is_some() {
        WIRE_VERSION_TRACED
    } else {
        WIRE_VERSION
    };
    header[5] = kind.to_byte();
    header[6..10].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    header[10..14].copy_from_slice(&crc32(payload).to_be_bytes());
    w.write_all(&header)?;
    if let Some(id) = request_id {
        w.write_all(&id.to_be_bytes())?;
        // v3 always carries an extension block, possibly empty.
        match trace {
            Some(ctx) => write_trace_ext(w, ctx)?,
            None => w.write_all(&[0])?,
        }
    } else if let Some(ctx) = trace {
        write_trace_ext(w, ctx)?;
    }
    w.write_all(payload)?;
    Ok(())
}

fn write_trace_ext<W: Write>(w: &mut W, ctx: TraceContext) -> Result<(), WireError> {
    let mut ext = [0u8; 19];
    ext[0] = 1; // one extension
    ext[1] = EXT_TRACE_CONTEXT;
    ext[2] = 16;
    ext[3..11].copy_from_slice(&ctx.trace_id.to_be_bytes());
    ext[11..19].copy_from_slice(&ctx.parent_span.to_be_bytes());
    w.write_all(&ext)?;
    Ok(())
}

/// Total encoded length of the frame at the head of `buf`, when enough
/// of its header is present to tell. `None` means "can't tell yet" —
/// either too few bytes are buffered or the head is not a well-formed
/// header (the blocking [`read_frame`] path will surface the actual
/// error).
///
/// This exists for batched readers: a pump that has already pulled one
/// frame can peek its buffer and keep draining *complete* frames
/// without ever risking a block on a torn one.
pub fn buffered_frame_len(buf: &[u8]) -> Option<usize> {
    if buf.len() < FRAME_HEADER_LEN || buf[..4] != FRAME_MAGIC {
        return None;
    }
    let payload_len = u32::from_be_bytes(buf[6..10].try_into().expect("4 bytes")) as usize;
    let mut off = FRAME_HEADER_LEN;
    if buf[4] == WIRE_VERSION_MUX {
        off += 8;
    }
    if buf[4] == WIRE_VERSION_TRACED || buf[4] == WIRE_VERSION_MUX {
        let count = *buf.get(off)? as usize;
        off += 1;
        for _ in 0..count {
            let len = *buf.get(off + 1)? as usize;
            off += 2 + len;
        }
    } else if buf[4] != WIRE_VERSION {
        return None;
    }
    Some(off + payload_len)
}

/// Reads one frame from `r`, verifying magic, version, length bound,
/// and payload CRC. Blocks until a full frame (or an error) arrives.
///
/// # Errors
///
/// Any [`WireError`]; a stream that ends mid-frame yields
/// [`WireError::Io`] with `ErrorKind::UnexpectedEof`.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != FRAME_MAGIC {
        return Err(WireError::BadMagic([header[0], header[1], header[2], header[3]]));
    }
    if header[4] != WIRE_VERSION
        && header[4] != WIRE_VERSION_TRACED
        && header[4] != WIRE_VERSION_MUX
    {
        return Err(WireError::BadVersion(header[4]));
    }
    let kind = FrameKind::from_byte(header[5]).ok_or(WireError::UnknownKind(header[5]))?;
    let len = u32::from_be_bytes(header[6..10].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len as u64));
    }
    let expected = u32::from_be_bytes(header[10..14].try_into().expect("4 bytes"));
    let mut request_id = None;
    if header[4] == WIRE_VERSION_MUX {
        let mut id = [0u8; 8];
        r.read_exact(&mut id)?;
        request_id = Some(u64::from_be_bytes(id));
    }
    let mut trace = None;
    if header[4] == WIRE_VERSION_TRACED || header[4] == WIRE_VERSION_MUX {
        let mut count = [0u8; 1];
        r.read_exact(&mut count)?;
        let count = count[0] as usize;
        if count > MAX_FRAME_EXTS {
            return Err(WireError::Oversized(count as u64));
        }
        for _ in 0..count {
            let mut tl = [0u8; 2];
            r.read_exact(&mut tl)?;
            let mut body = vec![0u8; tl[1] as usize];
            r.read_exact(&mut body)?;
            // Known tag with the expected shape → adopt; anything else
            // (future tags, future shapes of known tags) is skipped so
            // newer peers can extend frames without breaking us.
            if tl[0] == EXT_TRACE_CONTEXT && body.len() == 16 {
                let trace_id = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"));
                let parent_span = u64::from_be_bytes(body[8..].try_into().expect("8 bytes"));
                if trace_id != 0 {
                    trace = Some(TraceContext {
                        trace_id,
                        parent_span,
                    });
                }
            }
        }
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let found = crc32(&payload);
    if found != expected {
        return Err(WireError::Crc { expected, found });
    }
    Ok(Frame {
        kind,
        request_id,
        trace,
        payload,
    })
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

const REQ_DIRECT_QUERY: u8 = 1;
const REQ_SUBJECT_QUERY: u8 = 2;
const REQ_OBJECT_QUERY: u8 = 3;
const REQ_PUBLISH: u8 = 4;
const REQ_PUBLISH_DECLARATION: u8 = 5;
const REQ_SUBSCRIBE: u8 = 6;
const REQ_UNSUBSCRIBE: u8 = 7;
const REQ_REVOKE: u8 = 8;
const REQ_FETCH_DECLARATIONS: u8 = 9;
const REQ_FETCH_DELEGATION: u8 = 10;
const REQ_STATS: u8 = 11;
const REQ_HEALTH: u8 = 12;

fn encode_id(w: &mut Writer, id: &DelegationId) {
    w.bytes(&id.0);
}

fn decode_id(r: &mut Reader<'_>) -> Result<DelegationId, DecodeError> {
    let raw: [u8; 32] = r
        .bytes()?
        .try_into()
        .map_err(|_| DecodeError::Invalid("delegation id must be 32 bytes".into()))?;
    Ok(DelegationId(raw))
}

impl Encode for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::DirectQuery {
                subject,
                object,
                constraints,
            } => {
                w.u8(REQ_DIRECT_QUERY);
                subject.encode(w);
                object.encode(w);
                w.list(constraints);
            }
            Request::SubjectQuery {
                subject,
                constraints,
            } => {
                w.u8(REQ_SUBJECT_QUERY);
                subject.encode(w);
                w.list(constraints);
            }
            Request::ObjectQuery {
                object,
                constraints,
            } => {
                w.u8(REQ_OBJECT_QUERY);
                object.encode(w);
                w.list(constraints);
            }
            Request::Publish { cert, supports } => {
                w.u8(REQ_PUBLISH);
                cert.as_ref().encode(w);
                w.list(supports);
            }
            Request::PublishDeclaration(decl) => {
                w.u8(REQ_PUBLISH_DECLARATION);
                w.bytes(&decl.to_bytes());
            }
            Request::Subscribe {
                delegation,
                subscriber,
            } => {
                w.u8(REQ_SUBSCRIBE);
                encode_id(w, delegation);
                w.str(subscriber.as_str());
            }
            Request::Unsubscribe {
                delegation,
                subscriber,
            } => {
                w.u8(REQ_UNSUBSCRIBE);
                encode_id(w, delegation);
                w.str(subscriber.as_str());
            }
            Request::Revoke(rev) => {
                w.u8(REQ_REVOKE);
                w.bytes(&rev.to_bytes());
            }
            Request::FetchDeclarations => w.u8(REQ_FETCH_DECLARATIONS),
            Request::FetchDelegation(id) => {
                w.u8(REQ_FETCH_DELEGATION);
                encode_id(w, id);
            }
            Request::Stats => w.u8(REQ_STATS),
            Request::Health => w.u8(REQ_HEALTH),
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            REQ_DIRECT_QUERY => Ok(Request::DirectQuery {
                subject: Node::decode(r)?,
                object: Node::decode(r)?,
                constraints: r.list()?,
            }),
            REQ_SUBJECT_QUERY => Ok(Request::SubjectQuery {
                subject: Node::decode(r)?,
                constraints: r.list()?,
            }),
            REQ_OBJECT_QUERY => Ok(Request::ObjectQuery {
                object: Node::decode(r)?,
                constraints: r.list()?,
            }),
            REQ_PUBLISH => Ok(Request::Publish {
                cert: Arc::new(SignedDelegation::decode(r)?),
                supports: r.list()?,
            }),
            REQ_PUBLISH_DECLARATION => Ok(Request::PublishDeclaration(
                SignedAttrDeclaration::from_bytes(r.bytes()?)?,
            )),
            REQ_SUBSCRIBE => Ok(Request::Subscribe {
                delegation: decode_id(r)?,
                subscriber: WalletAddr::new(r.str()?),
            }),
            REQ_UNSUBSCRIBE => Ok(Request::Unsubscribe {
                delegation: decode_id(r)?,
                subscriber: WalletAddr::new(r.str()?),
            }),
            REQ_REVOKE => Ok(Request::Revoke(SignedRevocation::from_bytes(r.bytes()?)?)),
            REQ_FETCH_DECLARATIONS => Ok(Request::FetchDeclarations),
            REQ_FETCH_DELEGATION => Ok(Request::FetchDelegation(decode_id(r)?)),
            REQ_STATS => Ok(Request::Stats),
            REQ_HEALTH => Ok(Request::Health),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

const REP_PROOFS: u8 = 1;
const REP_PUBLISHED: u8 = 2;
const REP_DECLARATION_PUBLISHED: u8 = 3;
const REP_SUBSCRIBED: u8 = 4;
const REP_REVOKED: u8 = 5;
const REP_DECLARATIONS: u8 = 6;
const REP_DELEGATION: u8 = 7;
const REP_ERROR: u8 = 8;
const REP_STATS: u8 = 9;
const REP_HEALTH: u8 = 10;

/// Encodes a metrics snapshot. Free function rather than an `Encode`
/// impl because `Snapshot` is a `drbac-obs` type and `Encode` a
/// `drbac-core` trait — neither is local here. BTreeMap iteration
/// order makes the encoding canonical.
fn encode_snapshot(w: &mut Writer, s: &drbac_obs::Snapshot) {
    w.u64(s.counters.len() as u64);
    for (name, value) in &s.counters {
        w.str(name);
        w.u64(*value);
    }
    w.u64(s.gauges.len() as u64);
    for (name, value) in &s.gauges {
        w.str(name);
        w.u64(*value as u64); // two's complement round trip
    }
    w.u64(s.histograms.len() as u64);
    for (name, h) in &s.histograms {
        w.str(name);
        w.u64(h.count);
        w.u64(h.sum);
        w.u64(h.max);
        w.u64(h.p50);
        w.u64(h.p90);
        w.u64(h.p99);
        w.u64(h.p999);
    }
}

fn decode_snapshot(r: &mut Reader<'_>) -> Result<drbac_obs::Snapshot, DecodeError> {
    fn checked_len(r: &Reader<'_>, n: u64) -> Result<usize, DecodeError> {
        let n = usize::try_from(n).map_err(|_| DecodeError::UnexpectedEof)?;
        // Every entry costs at least one byte, so a count beyond the
        // remaining input is a lie — reject before allocating.
        if n > r.remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        Ok(n)
    }
    let mut snap = drbac_obs::Snapshot::default();
    let raw = r.u64()?;
    let n = checked_len(r, raw)?;
    for _ in 0..n {
        let name = r.str()?.to_string();
        snap.counters.insert(name, r.u64()?);
    }
    let raw = r.u64()?;
    let n = checked_len(r, raw)?;
    for _ in 0..n {
        let name = r.str()?.to_string();
        snap.gauges.insert(name, r.u64()? as i64);
    }
    let raw = r.u64()?;
    let n = checked_len(r, raw)?;
    for _ in 0..n {
        let name = r.str()?.to_string();
        snap.histograms.insert(
            name,
            drbac_obs::HistogramSnapshot {
                count: r.u64()?,
                sum: r.u64()?,
                max: r.u64()?,
                p50: r.u64()?,
                p90: r.u64()?,
                p99: r.u64()?,
                p999: r.u64()?,
            },
        );
    }
    Ok(snap)
}

fn encode_health(w: &mut Writer, h: &crate::proto::HealthReport) {
    w.u8(u8::from(h.ok));
    w.str(&h.wallet);
    w.u64(h.uptime_ns);
    w.u64(h.delegations);
    w.u64(h.subscribers);
    w.u64(h.served_requests);
}

fn decode_health(r: &mut Reader<'_>) -> Result<crate::proto::HealthReport, DecodeError> {
    let ok = match r.u8()? {
        0 => false,
        1 => true,
        t => return Err(DecodeError::InvalidTag(t)),
    };
    Ok(crate::proto::HealthReport {
        ok,
        wallet: r.str()?.to_string(),
        uptime_ns: r.u64()?,
        delegations: r.u64()?,
        subscribers: r.u64()?,
        served_requests: r.u64()?,
    })
}

impl Encode for Reply {
    fn encode(&self, w: &mut Writer) {
        match self {
            Reply::Proofs(proofs) => {
                w.u8(REP_PROOFS);
                w.list(proofs);
            }
            Reply::Published(id) => {
                w.u8(REP_PUBLISHED);
                encode_id(w, id);
            }
            Reply::DeclarationPublished => w.u8(REP_DECLARATION_PUBLISHED),
            Reply::Subscribed => w.u8(REP_SUBSCRIBED),
            Reply::Revoked(n) => {
                w.u8(REP_REVOKED);
                w.u64(*n as u64);
            }
            Reply::Declarations(ds) => {
                w.u8(REP_DECLARATIONS);
                w.u64(ds.len() as u64);
                for d in ds {
                    w.bytes(&d.to_bytes());
                }
            }
            Reply::Delegation(c) => {
                w.u8(REP_DELEGATION);
                w.opt(c.as_ref().map(|c| c.as_ref()));
            }
            Reply::Error(m) => {
                w.u8(REP_ERROR);
                w.str(m);
            }
            Reply::Stats(s) => {
                w.u8(REP_STATS);
                encode_snapshot(w, s);
            }
            Reply::Health(h) => {
                w.u8(REP_HEALTH);
                encode_health(w, h);
            }
        }
    }
}

impl Decode for Reply {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            REP_PROOFS => Ok(Reply::Proofs(r.list()?)),
            REP_PUBLISHED => Ok(Reply::Published(decode_id(r)?)),
            REP_DECLARATION_PUBLISHED => Ok(Reply::DeclarationPublished),
            REP_SUBSCRIBED => Ok(Reply::Subscribed),
            REP_REVOKED => {
                let n = r.u64()?;
                let n = usize::try_from(n)
                    .map_err(|_| DecodeError::Invalid("revoked count overflows usize".into()))?;
                Ok(Reply::Revoked(n))
            }
            REP_DECLARATIONS => {
                let n = r.u64()?;
                let n = usize::try_from(n).map_err(|_| DecodeError::UnexpectedEof)?;
                if n > r.remaining() {
                    return Err(DecodeError::UnexpectedEof);
                }
                let mut ds = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ds.push(SignedAttrDeclaration::from_bytes(r.bytes()?)?);
                }
                Ok(Reply::Declarations(ds))
            }
            REP_DELEGATION => {
                let cert: Option<SignedDelegation> = r.opt()?;
                Ok(Reply::Delegation(cert.map(Arc::new)))
            }
            REP_ERROR => Ok(Reply::Error(r.str()?.to_string())),
            REP_STATS => Ok(Reply::Stats(decode_snapshot(r)?)),
            REP_HEALTH => Ok(Reply::Health(decode_health(r)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Encode for OneWay {
    fn encode(&self, w: &mut Writer) {
        match self {
            OneWay::Invalidate(event) => {
                w.u8(1);
                w.bytes(&event.delegation.0);
                w.u8(match event.reason {
                    InvalidationReason::Revoked => 1,
                    InvalidationReason::Expired => 2,
                });
            }
        }
    }
}

impl Decode for OneWay {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            1 => {
                let raw: [u8; 32] = r
                    .bytes()?
                    .try_into()
                    .map_err(|_| DecodeError::Invalid("delegation id must be 32 bytes".into()))?;
                let reason = match r.u8()? {
                    1 => InvalidationReason::Revoked,
                    2 => InvalidationReason::Expired,
                    t => return Err(DecodeError::InvalidTag(t)),
                };
                Ok(OneWay::Invalidate(DelegationEvent {
                    delegation: DelegationId(raw),
                    reason,
                }))
            }
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Domain tags separating the three payload spaces (a request payload
/// can never decode as a reply, and vice versa).
const REQUEST_TAG: &[u8] = b"drbac-req-v1";
const REPLY_TAG: &[u8] = b"drbac-rep-v1";
const PUSH_TAG: &[u8] = b"drbac-push-v1";
const REGISTER_TAG: &[u8] = b"drbac-sub-v1";

fn encode_tagged<T: Encode>(tag: &[u8], value: &T) -> Vec<u8> {
    let mut w = Writer::tagged(tag);
    value.encode(&mut w);
    w.finish()
}

fn decode_tagged<T: Decode>(tag: &'static [u8], bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::tagged(bytes, tag)?;
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Canonical payload bytes for a request frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    encode_tagged(REQUEST_TAG, req)
}

/// Decodes a request frame payload.
///
/// # Errors
///
/// [`DecodeError`] on malformed input (including trailing bytes).
pub fn decode_request(bytes: &[u8]) -> Result<Request, DecodeError> {
    decode_tagged(REQUEST_TAG, bytes)
}

/// Canonical payload bytes for a reply frame.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    encode_tagged(REPLY_TAG, reply)
}

/// Decodes a reply frame payload.
///
/// # Errors
///
/// [`DecodeError`] on malformed input (including trailing bytes).
pub fn decode_reply(bytes: &[u8]) -> Result<Reply, DecodeError> {
    decode_tagged(REPLY_TAG, bytes)
}

/// Canonical payload bytes for a push frame.
pub fn encode_push(msg: &OneWay) -> Vec<u8> {
    encode_tagged(PUSH_TAG, msg)
}

/// Decodes a push frame payload.
///
/// # Errors
///
/// [`DecodeError`] on malformed input (including trailing bytes).
pub fn decode_push(bytes: &[u8]) -> Result<OneWay, DecodeError> {
    decode_tagged(PUSH_TAG, bytes)
}

/// Canonical payload bytes for a push-register frame: the subscriber's
/// wallet address.
pub fn encode_push_register(subscriber: &WalletAddr) -> Vec<u8> {
    let mut w = Writer::tagged(REGISTER_TAG);
    w.str(subscriber.as_str());
    w.finish()
}

/// Decodes a push-register frame payload.
///
/// # Errors
///
/// [`DecodeError`] on malformed input (including trailing bytes).
pub fn decode_push_register(bytes: &[u8]) -> Result<WalletAddr, DecodeError> {
    let mut r = Reader::tagged(bytes, REGISTER_TAG)?;
    let addr = WalletAddr::new(r.str()?);
    r.finish()?;
    Ok(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{LocalEntity, Node, Proof, ProofStep};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (LocalEntity, LocalEntity) {
        let mut rng = StdRng::seed_from_u64(0x17);
        let g = SchnorrGroup::test_256();
        (
            LocalEntity::generate("A", g.clone(), &mut rng),
            LocalEntity::generate("M", g, &mut rng),
        )
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"hello").unwrap();
        assert_eq!(buf[4], WIRE_VERSION, "trace-less frames stay version 1");
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.trace, None);
        assert_eq!(frame.payload, b"hello");
    }

    #[test]
    fn traced_frame_round_trip() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef_cafe_f00d,
            parent_span: 42,
        };
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, FrameKind::Request, b"hello", Some(ctx)).unwrap();
        assert_eq!(buf[4], WIRE_VERSION_TRACED);
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.trace, Some(ctx));
        assert_eq!(frame.payload, b"hello");
    }

    #[test]
    fn unknown_extension_tags_are_skipped() {
        // Hand-build a v2 frame with an unknown ext followed by a trace
        // context — the decoder must skip the former and keep the latter.
        let payload = b"payload";
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.push(WIRE_VERSION_TRACED);
        buf.push(1); // kind: request
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&crc32(payload).to_be_bytes());
        buf.push(2); // two extensions
        buf.push(0xEE); // unknown tag
        buf.push(3);
        buf.extend_from_slice(&[1, 2, 3]);
        buf.push(EXT_TRACE_CONTEXT);
        buf.push(16);
        buf.extend_from_slice(&7u64.to_be_bytes());
        buf.extend_from_slice(&9u64.to_be_bytes());
        buf.extend_from_slice(payload);
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(
            frame.trace,
            Some(TraceContext {
                trace_id: 7,
                parent_span: 9
            })
        );
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn future_version_fails_cleanly() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[4] = 4; // a version from the future
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::BadVersion(4))
        ));
    }

    #[test]
    fn mux_frame_round_trip() {
        let mut buf = Vec::new();
        write_frame_mux(&mut buf, FrameKind::Request, b"hello", 0x0123_4567_89ab_cdef, None)
            .unwrap();
        assert_eq!(buf[4], WIRE_VERSION_MUX);
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.request_id, Some(0x0123_4567_89ab_cdef));
        assert_eq!(frame.trace, None);
        assert_eq!(frame.payload, b"hello");
    }

    #[test]
    fn mux_frame_carries_trace_context() {
        let ctx = TraceContext {
            trace_id: 0xfeed,
            parent_span: 0xbeef,
        };
        let mut buf = Vec::new();
        write_frame_mux(&mut buf, FrameKind::Reply, b"r", 7, Some(ctx)).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.request_id, Some(7));
        assert_eq!(frame.trace, Some(ctx));
    }

    #[test]
    fn trace_less_and_id_less_sends_stay_version_1() {
        // The compatibility contract: a peer that never pipelines and
        // never traces emits byte-identical v1 frames forever.
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, FrameKind::Request, b"q", None).unwrap();
        assert_eq!(buf[4], WIRE_VERSION);
        assert_eq!(buf.len(), FRAME_HEADER_LEN + 1);
    }

    #[test]
    fn oversized_extension_count_is_rejected() {
        let payload = b"p";
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.push(WIRE_VERSION_TRACED);
        buf.push(1);
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&crc32(payload).to_be_bytes());
        buf.push(255); // far over MAX_FRAME_EXTS
        buf.extend_from_slice(payload);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::Oversized(255))
        ));
    }

    #[test]
    fn stats_and_health_payloads_round_trip() {
        let mut snap = drbac_obs::Snapshot::default();
        snap.counters.insert("drbac.a.count".into(), 3);
        snap.gauges.insert("drbac.b.gauge".into(), -7);
        snap.histograms.insert(
            "drbac.c.ns".into(),
            drbac_obs::HistogramSnapshot {
                count: 10,
                sum: 1000,
                max: 400,
                p50: 90,
                p90: 300,
                p99: 400,
                p999: 400,
            },
        );
        for req in [Request::Stats, Request::Health] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap().kind(), req.kind());
        }
        let replies = vec![
            Reply::Stats(snap),
            Reply::Health(crate::proto::HealthReport {
                ok: true,
                wallet: "coalition.example:7070".into(),
                uptime_ns: 123_456,
                delegations: 12,
                subscribers: 2,
                served_requests: 99,
            }),
        ];
        for reply in replies {
            let bytes = encode_reply(&reply);
            let decoded = decode_reply(&bytes).unwrap();
            assert_eq!(encode_reply(&decoded), bytes, "canonical re-encode");
        }
    }

    #[test]
    fn snapshot_negative_gauge_round_trips() {
        let mut snap = drbac_obs::Snapshot::default();
        snap.gauges.insert("g".into(), i64::MIN);
        let bytes = encode_reply(&Reply::Stats(snap));
        match decode_reply(&bytes).unwrap() {
            Reply::Stats(s) => assert_eq!(s.gauges["g"], i64::MIN),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_decode_rejects_lying_counts() {
        // A snapshot claiming 2^32 counters in a tiny payload must be
        // rejected before allocation, not trusted.
        let mut w = Writer::tagged(REPLY_TAG);
        w.u8(REP_STATS);
        w.u64(1 << 32);
        let bytes = w.finish();
        assert!(decode_reply(&bytes).is_err());
    }

    #[test]
    fn request_payloads_round_trip() {
        let (a, m) = fixture();
        let cert = a
            .delegate(Node::entity(&m), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        let requests = vec![
            Request::DirectQuery {
                subject: Node::entity(&m),
                object: Node::role(a.role("r")),
                constraints: vec![],
            },
            Request::Publish {
                cert: Arc::new(cert),
                supports: vec![proof],
            },
            Request::Subscribe {
                delegation: DelegationId([7; 32]),
                subscriber: "wallet.b".into(),
            },
            Request::FetchDeclarations,
            Request::FetchDelegation(DelegationId([9; 32])),
        ];
        for req in requests {
            let bytes = encode_request(&req);
            let decoded = decode_request(&bytes).unwrap();
            assert_eq!(decoded.kind(), req.kind());
            assert_eq!(encode_request(&decoded), bytes, "canonical re-encode");
        }
    }

    #[test]
    fn reply_payloads_round_trip() {
        let (a, m) = fixture();
        let cert = a
            .delegate(Node::entity(&m), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        let replies = vec![
            Reply::Proofs(vec![proof]),
            Reply::Published(DelegationId([1; 32])),
            Reply::Subscribed,
            Reply::Revoked(3),
            Reply::Delegation(Some(Arc::new(cert))),
            Reply::Delegation(None),
            Reply::Error("nope".into()),
        ];
        for reply in replies {
            let bytes = encode_reply(&reply);
            let decoded = decode_reply(&bytes).unwrap();
            assert_eq!(encode_reply(&decoded), bytes, "canonical re-encode");
        }
    }

    #[test]
    fn payload_spaces_are_domain_separated() {
        let bytes = encode_request(&Request::FetchDeclarations);
        assert!(decode_reply(&bytes).is_err());
        assert!(decode_push(&bytes).is_err());
    }
}
