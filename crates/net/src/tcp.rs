//! TCP client transport: the [`Transport`] trait over real sockets.
//!
//! [`TcpTransport`] keeps a small per-peer connection pool, applies
//! configurable connect/read/write deadlines, and — unlike
//! [`SimNet`](crate::SimNet), which advances a simulated clock — its
//! [`Transport::backoff`] really sleeps, so a
//! [`RetryPolicy`](crate::RetryPolicy) schedule measured in ticks
//! becomes wall-clock delay via [`TcpConfig::tick`].
//!
//! Error mapping (what retries can and cannot fix):
//!
//! * no route / unparsable address → [`NetError::UnknownHost`] (permanent)
//! * connect refused / connection died mid-exchange → [`NetError::HostDown`]
//!   (retryable — the daemon may come back)
//! * read or write deadline expired → [`NetError::Timeout`] (retryable)
//! * bad frame, CRC mismatch, undecodable payload →
//!   [`NetError::Protocol`] (permanent — see [`crate::wire`])
//!
//! A pooled connection that fails is discarded and the request is
//! re-attempted once on a fresh connection before an error is
//! reported, so a server-side idle close between requests is invisible
//! to callers.

use std::collections::HashMap;
use std::io::{ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use drbac_core::{Ticks, WalletAddr};
use parking_lot::{Mutex, RwLock};

use crate::proto::{Reply, Request};
use crate::sim::NetError;
use crate::transport::Transport;
use crate::wire::{self, FrameKind, WireError};

/// Socket behaviour knobs for [`TcpTransport`] and
/// [`WalletDaemon`](crate::WalletDaemon).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Deadline for reading one reply (or, daemon-side, the next
    /// request). `None` blocks forever.
    pub read_timeout: Option<Duration>,
    /// Deadline for writing one frame. `None` blocks forever.
    pub write_timeout: Option<Duration>,
    /// Wall-clock duration of one retry-backoff tick (how
    /// [`Transport::backoff`] converts a [`RetryPolicy`](crate::RetryPolicy)
    /// delay into sleep).
    pub tick: Duration,
    /// Upper bound on one backoff sleep, however large the tick count.
    pub max_backoff: Duration,
    /// Idle connections kept per peer.
    pub max_pooled: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            tick: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            max_pooled: 4,
        }
    }
}

impl TcpConfig {
    /// Tight deadlines for loopback tests (tens of milliseconds, not
    /// seconds).
    pub fn fast() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Some(Duration::from_millis(2000)),
            write_timeout: Some(Duration::from_millis(2000)),
            tick: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            max_pooled: 2,
        }
    }
}

/// [`Transport`] over TCP sockets with a per-peer connection pool.
///
/// Wallet addresses route to socket addresses either through an
/// explicit [`TcpTransport::add_route`] entry or, failing that, by
/// parsing the wallet address itself as `host:port` — so a deployment
/// can simply *name* wallets by their endpoints.
#[derive(Debug)]
pub struct TcpTransport {
    config: TcpConfig,
    routes: RwLock<HashMap<WalletAddr, SocketAddr>>,
    pool: Mutex<HashMap<WalletAddr, Vec<TcpStream>>>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new(TcpConfig::default())
    }
}

impl TcpTransport {
    /// A transport with the given socket configuration.
    pub fn new(config: TcpConfig) -> Self {
        TcpTransport {
            config,
            routes: RwLock::new(HashMap::new()),
            pool: Mutex::new(HashMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.config
    }

    /// Routes a wallet address to a socket address.
    pub fn add_route(&self, wallet: impl Into<WalletAddr>, addr: SocketAddr) {
        self.routes.write().insert(wallet.into(), addr);
    }

    /// Resolves a wallet address: explicit route first, then the
    /// address string itself as `host:port`.
    fn resolve(&self, to: &WalletAddr) -> Result<SocketAddr, NetError> {
        if let Some(addr) = self.routes.read().get(to) {
            return Ok(*addr);
        }
        to.as_str()
            .parse()
            .map_err(|_| NetError::UnknownHost(to.clone()))
    }

    /// Drops all pooled connections (e.g. after a known daemon restart).
    pub fn drain_pool(&self) {
        self.pool.lock().clear();
    }

    fn checkout(&self, to: &WalletAddr) -> Option<TcpStream> {
        self.pool.lock().get_mut(to).and_then(Vec::pop)
    }

    fn checkin(&self, to: &WalletAddr, stream: TcpStream) {
        let mut pool = self.pool.lock();
        let conns = pool.entry(to.clone()).or_default();
        if conns.len() < self.config.max_pooled {
            conns.push(stream);
        }
    }

    /// Opens a fresh, deadline-configured connection to `to` without
    /// pooling it — for callers that own the stream's whole lifetime,
    /// like a [`SubscriberLink`](crate::SubscriberLink)'s persistent
    /// push connection.
    pub fn connect_raw(&self, to: &WalletAddr) -> Result<TcpStream, NetError> {
        self.connect(to)
    }

    /// Opens a fresh connection with deadlines applied.
    fn connect(&self, to: &WalletAddr) -> Result<TcpStream, NetError> {
        let addr = self.resolve(to)?;
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
            .map_err(|_| NetError::HostDown(to.clone()))?;
        stream
            .set_read_timeout(self.config.read_timeout)
            .and_then(|_| stream.set_write_timeout(self.config.write_timeout))
            .and_then(|_| stream.set_nodelay(true))
            .map_err(|_| NetError::HostDown(to.clone()))?;
        drbac_obs::static_counter!("drbac.net.tcp.connect.count").inc();
        Ok(stream)
    }

    /// Opens a pipelined (wire v3) client connection to `to`: many
    /// requests in flight on one stream, replies matched by request id
    /// and completed out of order. See [`PipelinedClient`].
    ///
    /// # Errors
    ///
    /// [`NetError`] if the connection cannot be established or the
    /// reader thread cannot start.
    pub fn pipelined(&self, to: &WalletAddr) -> Result<PipelinedClient, NetError> {
        PipelinedClient::connect(self, to)
    }

    /// One request/reply exchange on an open stream. While tracing is
    /// on, the request frame carries this span's trace context so the
    /// daemon's spans stitch into the same distributed trace.
    fn exchange(
        &self,
        stream: &mut TcpStream,
        to: &WalletAddr,
        req: &Request,
    ) -> Result<Reply, NetError> {
        let span = drbac_obs::span!("drbac.net.tcp.request", "req" => req.kind());
        let start = std::time::Instant::now();
        let trace = (span.trace_id() != 0).then_some(wire::TraceContext {
            trace_id: span.trace_id(),
            parent_span: span.id(),
        });
        let payload = wire::encode_request(req);
        wire::write_frame_traced(stream, FrameKind::Request, &payload, trace)
            .and_then(|()| stream.flush().map_err(WireError::Io))
            .map_err(|e| map_wire_error(e, to))?;
        drbac_obs::static_counter!("drbac.net.tcp.frame.tx.count").inc();
        let frame = wire::read_frame(stream).map_err(|e| map_wire_error(e, to))?;
        drbac_obs::static_counter!("drbac.net.tcp.frame.rx.count").inc();
        if frame.kind != FrameKind::Reply {
            return Err(NetError::Protocol(format!(
                "expected a reply frame, got {:?}",
                frame.kind
            )));
        }
        let reply = wire::decode_reply(&frame.payload)
            .map_err(|e| NetError::Protocol(format!("undecodable reply: {e}")))?;
        drbac_obs::static_histogram!("drbac.net.tcp.request.ns")
            .record(start.elapsed().as_nanos() as u64);
        Ok(reply)
    }
}

/// Classifies a wire-layer failure: deadline → `Timeout`, other stream
/// death → `HostDown` (both retryable); anything structural →
/// `Protocol` (permanent).
fn map_wire_error(e: WireError, to: &WalletAddr) -> NetError {
    match e {
        WireError::Io(io) => match io.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                drbac_obs::static_counter!("drbac.net.tcp.deadline.count").inc();
                NetError::Timeout(to.clone())
            }
            _ => NetError::HostDown(to.clone()),
        },
        other => NetError::Protocol(other.to_string()),
    }
}

impl Transport for TcpTransport {
    fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError> {
        // A pooled stream may have been closed by the peer while idle;
        // retry exactly once on a guaranteed-fresh connection so idle
        // closes never surface to callers.
        if let Some(mut stream) = self.checkout(to) {
            if let Ok(reply) = self.exchange(&mut stream, to, &req) {
                self.checkin(to, stream);
                return Ok(reply);
            }
        }
        let mut stream = self.connect(to)?;
        let reply = self.exchange(&mut stream, to, &req)?;
        self.checkin(to, stream);
        Ok(reply)
    }

    /// Really sleeps: `delay × tick`, capped at
    /// [`TcpConfig::max_backoff`].
    fn backoff(&self, delay: Ticks) {
        let sleep = self
            .config
            .tick
            .saturating_mul(u32::try_from(delay.0).unwrap_or(u32::MAX))
            .min(self.config.max_backoff);
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
    }
}

/// A single-connection pipelined client speaking wire v3 (see
/// `docs/PROTOCOL.md` §5): every request frame carries a fresh
/// `request_id`, many requests ride in flight at once, and the daemon's
/// replies — which may arrive out of order — are matched back to their
/// waiters by id.
///
/// Contrast with [`TcpTransport::request`], which is strict
/// request/reply per pooled connection: a pipelined client keeps one
/// socket saturated instead of paying a round trip per request, which
/// is where the ≥5x single-connection throughput at depth 16 in
/// `BENCH_daemon.json` comes from.
///
/// Usage shapes:
///
/// * `call(req)` — send one request and block for its reply (still
///   pipelines with other threads sharing the client).
/// * `send(req)` → id, later `wait(id)` — explicit split for windowed
///   pipelining from a single thread.
/// * `send_many(reqs)` → ids — batch submit under one lock with a
///   single flush, then `wait` each id.
///
/// All methods are `&self`; a `PipelinedClient` is safe to share across
/// threads. A connection-level failure (daemon died, protocol
/// violation) fans the same error out to every in-flight waiter and
/// fails all later sends — drop the client and connect a fresh one.
pub struct PipelinedClient {
    to: WalletAddr,
    /// Write half; sends serialize through this lock.
    writer: StdMutex<TcpStream>,
    pending: Arc<PendingMap>,
    next_id: AtomicU64,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
    closed: AtomicBool,
    /// Per-`wait` deadline (the transport's read deadline).
    wait_timeout: Option<Duration>,
}

/// Reply slots shared between waiters and the reader thread.
struct PendingMap {
    state: StdMutex<PendingState>,
    cv: Condvar,
}

struct PendingState {
    /// request id → its slot; a filled slot holds the reply until the
    /// waiter collects it.
    slots: HashMap<u64, Slot>,
    /// Set once when the connection dies; fanned out to all waiters.
    dead: Option<NetError>,
}

struct Slot {
    sent: Instant,
    /// The reply frame's payload bytes. Decoding happens on the
    /// waiter's thread in [`PipelinedClient::wait`], not on the shared
    /// reader — the reader stays pure frame demux, so one slow decode
    /// cannot stall every other in-flight reply.
    result: Option<Vec<u8>>,
}

impl std::fmt::Debug for PipelinedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedClient")
            .field("to", &self.to)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl PipelinedClient {
    /// Connects to `to` through `transport`'s routing/deadline config
    /// and starts the reply-reader thread.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the connection cannot be established or the
    /// reader thread cannot start.
    pub fn connect(transport: &TcpTransport, to: &WalletAddr) -> Result<PipelinedClient, NetError> {
        let stream = transport.connect(to)?;
        // Replies arrive whenever the daemon completes work, not on a
        // per-read schedule: the reader blocks indefinitely and `wait`
        // enforces the deadline instead.
        stream
            .set_read_timeout(None)
            .map_err(|_| NetError::HostDown(to.clone()))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| NetError::Protocol(format!("cannot clone pipelined stream: {e}")))?;
        let pending = Arc::new(PendingMap {
            state: StdMutex::new(PendingState {
                slots: HashMap::new(),
                dead: None,
            }),
            cv: Condvar::new(),
        });
        let reader_pending = Arc::clone(&pending);
        let reader_to = to.clone();
        let reader = std::thread::Builder::new()
            .name(format!("drbac-pipeline-{to}"))
            .spawn(move || pipeline_reader(read_half, reader_pending, reader_to))
            .map_err(|e| NetError::Protocol(format!("cannot spawn pipeline reader: {e}")))?;
        Ok(PipelinedClient {
            to: to.clone(),
            writer: StdMutex::new(stream),
            pending,
            next_id: AtomicU64::new(1),
            reader: Mutex::new(Some(reader)),
            closed: AtomicBool::new(false),
            wait_timeout: transport.config.read_timeout,
        })
    }

    /// The peer this client is connected to.
    pub fn peer(&self) -> &WalletAddr {
        &self.to
    }

    /// Requests currently awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.pending
            .state
            .lock()
            .map(|s| s.slots.len())
            .unwrap_or(0)
    }

    /// Submits `req` without waiting; returns the request id to pass
    /// to [`wait`](Self::wait). The reply may complete before, after,
    /// or interleaved with other in-flight requests.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the connection has already failed or the frame
    /// cannot be written.
    pub fn send(&self, req: &Request) -> Result<u64, NetError> {
        let ids = self.send_batch(std::slice::from_ref(req))?;
        Ok(ids[0])
    }

    /// Submits a batch under one writer lock with a single flush —
    /// client-side write coalescing to mirror the daemon's reply path.
    /// Returns one request id per request, in order.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the connection has already failed or a frame
    /// cannot be written; on a mid-batch write failure the whole
    /// connection is failed (partial batches never linger).
    pub fn send_many(&self, reqs: &[Request]) -> Result<Vec<u64>, NetError> {
        self.send_batch(reqs)
    }

    fn send_batch(&self, reqs: &[Request]) -> Result<Vec<u64>, NetError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let span = drbac_obs::span!("drbac.net.tcp.pipeline.send", "n" => reqs.len());
        let trace = (span.trace_id() != 0).then_some(wire::TraceContext {
            trace_id: span.trace_id(),
            parent_span: span.id(),
        });
        // Register slots first so a reply racing the send always finds
        // its waiter.
        let ids: Vec<u64> = {
            let mut state = self
                .pending
                .state
                .lock()
                .map_err(|_| NetError::Protocol("pipeline state poisoned".into()))?;
            if let Some(dead) = &state.dead {
                return Err(dead.clone());
            }
            let now = Instant::now();
            reqs.iter()
                .map(|_| {
                    let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                    state.slots.insert(
                        id,
                        Slot {
                            sent: now,
                            result: None,
                        },
                    );
                    id
                })
                .collect()
        };
        // Encode the whole batch into one buffer so it leaves in a
        // single write — client-side coalescing to mirror the daemon's
        // reply path (and one wakeup for the daemon's reader, not N).
        let mut buf: Vec<u8> = Vec::with_capacity(256 * reqs.len());
        let encoded = reqs.iter().zip(&ids).try_for_each(|(req, id)| {
            let payload = wire::encode_request(req);
            wire::write_frame_mux(&mut buf, FrameKind::Request, &payload, *id, trace)
        });
        let written = encoded.and_then(|()| {
            let mut writer = self
                .writer
                .lock()
                .map_err(|_| WireError::Io(std::io::Error::other("pipeline writer poisoned")))?;
            writer
                .write_all(&buf)
                .and_then(|()| writer.flush())
                .map_err(WireError::Io)
        });
        match written {
            Ok(()) => {
                drbac_obs::static_counter!("drbac.net.tcp.frame.tx.count").add(ids.len() as u64);
                Ok(ids)
            }
            Err(e) => {
                let err = map_wire_error(e, &self.to);
                // A torn write desynchronizes the whole stream: fail
                // the connection so every waiter learns, not just us.
                self.fail(err.clone());
                Err(err)
            }
        }
    }

    /// Blocks until the reply for `id` arrives, the connection fails,
    /// or the transport's read deadline expires. Each id completes
    /// exactly once; waiting twice on the same id is an error.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] past the deadline (the abandoned reply is
    /// discarded on arrival), the connection's fan-out error if the
    /// stream died, or [`NetError::Protocol`] for an unknown id.
    pub fn wait(&self, id: u64) -> Result<Reply, NetError> {
        let deadline = self.wait_timeout.map(|t| Instant::now() + t);
        let mut state = self
            .pending
            .state
            .lock()
            .map_err(|_| NetError::Protocol("pipeline state poisoned".into()))?;
        loop {
            match state.slots.get(&id) {
                Some(slot) if slot.result.is_some() => {
                    let slot = state.slots.remove(&id).expect("checked above");
                    let payload = slot.result.expect("checked above");
                    drop(state);
                    return wire::decode_reply(&payload)
                        .map_err(|e| NetError::Protocol(format!("undecodable reply: {e}")));
                }
                Some(_) => {
                    if let Some(dead) = state.dead.clone() {
                        state.slots.remove(&id);
                        return Err(dead);
                    }
                }
                None => {
                    return Err(match &state.dead {
                        Some(dead) => dead.clone(),
                        None => NetError::Protocol(format!("unknown pipeline request id {id}")),
                    });
                }
            }
            state = match deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        // Abandon the slot; if the reply still shows
                        // up the reader drops it as an orphan.
                        state.slots.remove(&id);
                        drbac_obs::static_counter!("drbac.net.tcp.deadline.count").inc();
                        return Err(NetError::Timeout(self.to.clone()));
                    }
                    let (state, _) = self
                        .pending
                        .cv
                        .wait_timeout(state, deadline - now)
                        .map_err(|_| NetError::Protocol("pipeline state poisoned".into()))?;
                    state
                }
                None => self
                    .pending
                    .cv
                    .wait(state)
                    .map_err(|_| NetError::Protocol("pipeline state poisoned".into()))?,
            };
        }
    }

    /// Send one request and block for its reply. Other threads sharing
    /// this client still pipeline around the wait.
    ///
    /// # Errors
    ///
    /// As [`send`](Self::send) and [`wait`](Self::wait).
    pub fn call(&self, req: &Request) -> Result<Reply, NetError> {
        let id = self.send(req)?;
        self.wait(id)
    }

    /// Fails every current and future request with `err`.
    fn fail(&self, err: NetError) {
        if let Ok(mut state) = self.pending.state.lock() {
            if state.dead.is_none() {
                state.dead = Some(err);
            }
        }
        self.pending.cv.notify_all();
    }

    /// Closes the connection and joins the reader. In-flight waiters
    /// receive a connection error. Idempotent; `Drop` calls this.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.reader.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for PipelinedClient {
    fn drop(&mut self) {
        self.close();
    }
}

/// Reader half of a [`PipelinedClient`]: matches reply frames to
/// pending slots by request id. Replies for ids nobody waits on any
/// more (a timed-out waiter abandoned the slot) are dropped and
/// counted in `drbac.net.tcp.pipeline.orphan.count` — they are not an
/// error, just late. A read failure fans out to every waiter.
fn pipeline_reader(stream: TcpStream, pending: Arc<PendingMap>, to: WalletAddr) {
    // Buffered reads: the daemon's writer pump flushes reply batches,
    // so one syscall here collects many replies.
    let mut stream = std::io::BufReader::with_capacity(64 * 1024, stream);
    let mut batch: Vec<wire::Frame> = Vec::new();
    loop {
        let frame = match wire::read_frame(&mut stream) {
            Ok(f) => f,
            Err(e) => {
                let err = map_wire_error(e, &to);
                if let Ok(mut state) = pending.state.lock() {
                    if state.dead.is_none() {
                        state.dead = Some(err);
                    }
                }
                pending.cv.notify_all();
                return;
            }
        };
        // Drain every further reply that is already completely buffered,
        // then settle the whole batch under one lock with one wakeup.
        batch.push(frame);
        loop {
            let buf = stream.buffer();
            match wire::buffered_frame_len(buf) {
                Some(total) if buf.len() >= total => match wire::read_frame(&mut stream) {
                    Ok(f) => batch.push(f),
                    Err(_) => break,
                },
                _ => break,
            }
        }
        drbac_obs::static_counter!("drbac.net.tcp.frame.rx.count").add(batch.len() as u64);
        let Ok(mut state) = pending.state.lock() else {
            return;
        };
        let mut settled = false;
        for frame in batch.drain(..) {
            let (Some(id), FrameKind::Reply) = (frame.request_id, frame.kind) else {
                // Id-less or non-reply frames don't belong on a pipelined
                // connection; ignore rather than kill live requests.
                continue;
            };
            match state.slots.get_mut(&id) {
                Some(slot) => {
                    drbac_obs::static_histogram!("drbac.net.tcp.request.ns")
                        .record(slot.sent.elapsed().as_nanos() as u64);
                    slot.result = Some(frame.payload);
                    settled = true;
                }
                None => {
                    drbac_obs::static_counter!("drbac.net.tcp.pipeline.orphan.count").inc();
                }
            }
        }
        drop(state);
        if settled {
            pending.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroutable_address_is_unknown_host() {
        let t = TcpTransport::new(TcpConfig::fast());
        let err = t
            .request(&"not-an-endpoint".into(), Request::FetchDeclarations)
            .unwrap_err();
        assert!(matches!(err, NetError::UnknownHost(_)));
        assert!(!err.is_retryable());
    }

    #[test]
    fn dead_endpoint_is_host_down() {
        let t = TcpTransport::new(TcpConfig::fast());
        // Bind-then-drop guarantees a port with no listener.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = t
            .request(
                &format!("127.0.0.1:{port}").as_str().into(),
                Request::FetchDeclarations,
            )
            .unwrap_err();
        assert!(matches!(err, NetError::HostDown(_)));
        assert!(err.is_retryable());
    }

    #[test]
    fn backoff_really_sleeps() {
        let mut cfg = TcpConfig::fast();
        cfg.tick = Duration::from_millis(10);
        let t = TcpTransport::new(cfg);
        let start = std::time::Instant::now();
        t.backoff(Ticks(2));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn backoff_is_capped() {
        let mut cfg = TcpConfig::fast();
        cfg.tick = Duration::from_millis(10);
        cfg.max_backoff = Duration::from_millis(20);
        let t = TcpTransport::new(cfg);
        let start = std::time::Instant::now();
        t.backoff(Ticks(u64::MAX));
        assert!(start.elapsed() < Duration::from_secs(2));
    }
}
