//! TCP client transport: the [`Transport`] trait over real sockets.
//!
//! [`TcpTransport`] keeps a small per-peer connection pool, applies
//! configurable connect/read/write deadlines, and — unlike
//! [`SimNet`](crate::SimNet), which advances a simulated clock — its
//! [`Transport::backoff`] really sleeps, so a
//! [`RetryPolicy`](crate::RetryPolicy) schedule measured in ticks
//! becomes wall-clock delay via [`TcpConfig::tick`].
//!
//! Error mapping (what retries can and cannot fix):
//!
//! * no route / unparsable address → [`NetError::UnknownHost`] (permanent)
//! * connect refused / connection died mid-exchange → [`NetError::HostDown`]
//!   (retryable — the daemon may come back)
//! * read or write deadline expired → [`NetError::Timeout`] (retryable)
//! * bad frame, CRC mismatch, undecodable payload →
//!   [`NetError::Protocol`] (permanent — see [`crate::wire`])
//!
//! A pooled connection that fails is discarded and the request is
//! re-attempted once on a fresh connection before an error is
//! reported, so a server-side idle close between requests is invisible
//! to callers.

use std::collections::HashMap;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use drbac_core::{Ticks, WalletAddr};
use parking_lot::{Mutex, RwLock};

use crate::proto::{Reply, Request};
use crate::sim::NetError;
use crate::transport::Transport;
use crate::wire::{self, FrameKind, WireError};

/// Socket behaviour knobs for [`TcpTransport`] and
/// [`WalletDaemon`](crate::WalletDaemon).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Deadline for reading one reply (or, daemon-side, the next
    /// request). `None` blocks forever.
    pub read_timeout: Option<Duration>,
    /// Deadline for writing one frame. `None` blocks forever.
    pub write_timeout: Option<Duration>,
    /// Wall-clock duration of one retry-backoff tick (how
    /// [`Transport::backoff`] converts a [`RetryPolicy`](crate::RetryPolicy)
    /// delay into sleep).
    pub tick: Duration,
    /// Upper bound on one backoff sleep, however large the tick count.
    pub max_backoff: Duration,
    /// Idle connections kept per peer.
    pub max_pooled: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            tick: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            max_pooled: 4,
        }
    }
}

impl TcpConfig {
    /// Tight deadlines for loopback tests (tens of milliseconds, not
    /// seconds).
    pub fn fast() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Some(Duration::from_millis(2000)),
            write_timeout: Some(Duration::from_millis(2000)),
            tick: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            max_pooled: 2,
        }
    }
}

/// [`Transport`] over TCP sockets with a per-peer connection pool.
///
/// Wallet addresses route to socket addresses either through an
/// explicit [`TcpTransport::add_route`] entry or, failing that, by
/// parsing the wallet address itself as `host:port` — so a deployment
/// can simply *name* wallets by their endpoints.
#[derive(Debug)]
pub struct TcpTransport {
    config: TcpConfig,
    routes: RwLock<HashMap<WalletAddr, SocketAddr>>,
    pool: Mutex<HashMap<WalletAddr, Vec<TcpStream>>>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new(TcpConfig::default())
    }
}

impl TcpTransport {
    /// A transport with the given socket configuration.
    pub fn new(config: TcpConfig) -> Self {
        TcpTransport {
            config,
            routes: RwLock::new(HashMap::new()),
            pool: Mutex::new(HashMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.config
    }

    /// Routes a wallet address to a socket address.
    pub fn add_route(&self, wallet: impl Into<WalletAddr>, addr: SocketAddr) {
        self.routes.write().insert(wallet.into(), addr);
    }

    /// Resolves a wallet address: explicit route first, then the
    /// address string itself as `host:port`.
    fn resolve(&self, to: &WalletAddr) -> Result<SocketAddr, NetError> {
        if let Some(addr) = self.routes.read().get(to) {
            return Ok(*addr);
        }
        to.as_str()
            .parse()
            .map_err(|_| NetError::UnknownHost(to.clone()))
    }

    /// Drops all pooled connections (e.g. after a known daemon restart).
    pub fn drain_pool(&self) {
        self.pool.lock().clear();
    }

    fn checkout(&self, to: &WalletAddr) -> Option<TcpStream> {
        self.pool.lock().get_mut(to).and_then(Vec::pop)
    }

    fn checkin(&self, to: &WalletAddr, stream: TcpStream) {
        let mut pool = self.pool.lock();
        let conns = pool.entry(to.clone()).or_default();
        if conns.len() < self.config.max_pooled {
            conns.push(stream);
        }
    }

    /// Opens a fresh, deadline-configured connection to `to` without
    /// pooling it — for callers that own the stream's whole lifetime,
    /// like a [`SubscriberLink`](crate::SubscriberLink)'s persistent
    /// push connection.
    pub fn connect_raw(&self, to: &WalletAddr) -> Result<TcpStream, NetError> {
        self.connect(to)
    }

    /// Opens a fresh connection with deadlines applied.
    fn connect(&self, to: &WalletAddr) -> Result<TcpStream, NetError> {
        let addr = self.resolve(to)?;
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
            .map_err(|_| NetError::HostDown(to.clone()))?;
        stream
            .set_read_timeout(self.config.read_timeout)
            .and_then(|_| stream.set_write_timeout(self.config.write_timeout))
            .and_then(|_| stream.set_nodelay(true))
            .map_err(|_| NetError::HostDown(to.clone()))?;
        drbac_obs::static_counter!("drbac.net.tcp.connect.count").inc();
        Ok(stream)
    }

    /// One request/reply exchange on an open stream. While tracing is
    /// on, the request frame carries this span's trace context so the
    /// daemon's spans stitch into the same distributed trace.
    fn exchange(
        &self,
        stream: &mut TcpStream,
        to: &WalletAddr,
        req: &Request,
    ) -> Result<Reply, NetError> {
        let span = drbac_obs::span!("drbac.net.tcp.request", "req" => req.kind());
        let start = std::time::Instant::now();
        let trace = (span.trace_id() != 0).then_some(wire::TraceContext {
            trace_id: span.trace_id(),
            parent_span: span.id(),
        });
        let payload = wire::encode_request(req);
        wire::write_frame_traced(stream, FrameKind::Request, &payload, trace)
            .and_then(|()| stream.flush().map_err(WireError::Io))
            .map_err(|e| map_wire_error(e, to))?;
        drbac_obs::static_counter!("drbac.net.tcp.frame.tx.count").inc();
        let frame = wire::read_frame(stream).map_err(|e| map_wire_error(e, to))?;
        drbac_obs::static_counter!("drbac.net.tcp.frame.rx.count").inc();
        if frame.kind != FrameKind::Reply {
            return Err(NetError::Protocol(format!(
                "expected a reply frame, got {:?}",
                frame.kind
            )));
        }
        let reply = wire::decode_reply(&frame.payload)
            .map_err(|e| NetError::Protocol(format!("undecodable reply: {e}")))?;
        drbac_obs::static_histogram!("drbac.net.tcp.request.ns")
            .record(start.elapsed().as_nanos() as u64);
        Ok(reply)
    }
}

/// Classifies a wire-layer failure: deadline → `Timeout`, other stream
/// death → `HostDown` (both retryable); anything structural →
/// `Protocol` (permanent).
fn map_wire_error(e: WireError, to: &WalletAddr) -> NetError {
    match e {
        WireError::Io(io) => match io.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                drbac_obs::static_counter!("drbac.net.tcp.deadline.count").inc();
                NetError::Timeout(to.clone())
            }
            _ => NetError::HostDown(to.clone()),
        },
        other => NetError::Protocol(other.to_string()),
    }
}

impl Transport for TcpTransport {
    fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError> {
        // A pooled stream may have been closed by the peer while idle;
        // retry exactly once on a guaranteed-fresh connection so idle
        // closes never surface to callers.
        if let Some(mut stream) = self.checkout(to) {
            if let Ok(reply) = self.exchange(&mut stream, to, &req) {
                self.checkin(to, stream);
                return Ok(reply);
            }
        }
        let mut stream = self.connect(to)?;
        let reply = self.exchange(&mut stream, to, &req)?;
        self.checkin(to, stream);
        Ok(reply)
    }

    /// Really sleeps: `delay × tick`, capped at
    /// [`TcpConfig::max_backoff`].
    fn backoff(&self, delay: Ticks) {
        let sleep = self
            .config
            .tick
            .saturating_mul(u32::try_from(delay.0).unwrap_or(u32::MAX))
            .min(self.config.max_backoff);
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroutable_address_is_unknown_host() {
        let t = TcpTransport::new(TcpConfig::fast());
        let err = t
            .request(&"not-an-endpoint".into(), Request::FetchDeclarations)
            .unwrap_err();
        assert!(matches!(err, NetError::UnknownHost(_)));
        assert!(!err.is_retryable());
    }

    #[test]
    fn dead_endpoint_is_host_down() {
        let t = TcpTransport::new(TcpConfig::fast());
        // Bind-then-drop guarantees a port with no listener.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = t
            .request(
                &format!("127.0.0.1:{port}").as_str().into(),
                Request::FetchDeclarations,
            )
            .unwrap_err();
        assert!(matches!(err, NetError::HostDown(_)));
        assert!(err.is_retryable());
    }

    #[test]
    fn backoff_really_sleeps() {
        let mut cfg = TcpConfig::fast();
        cfg.tick = Duration::from_millis(10);
        let t = TcpTransport::new(cfg);
        let start = std::time::Instant::now();
        t.backoff(Ticks(2));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn backoff_is_capped() {
        let mut cfg = TcpConfig::fast();
        cfg.tick = Duration::from_millis(10);
        cfg.max_backoff = Duration::from_millis(20);
        let t = TcpTransport::new(cfg);
        let start = std::time::Instant::now();
        t.backoff(Ticks(u64::MAX));
        assert!(start.elapsed() < Duration::from_secs(2));
    }
}
