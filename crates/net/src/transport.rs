//! The transport abstraction discovery runs over.
//!
//! [`DiscoveryAgent`](crate::DiscoveryAgent) only needs request/reply
//! delivery to named wallets. [`crate::SimNet`] provides it
//! deterministically for tests and experiments; [`ServiceRegistry`]
//! provides it over real [`crate::WalletService`] threads — same
//! algorithm, two deployment shapes.

use std::collections::HashMap;

use drbac_core::WalletAddr;
use parking_lot::RwLock;

use crate::proto::{Reply, Request};
use crate::service::WalletClient;
use crate::sim::{NetError, SimNet};

/// Request/reply delivery to named wallet hosts.
pub trait Transport: Send + Sync {
    /// Sends `req` to the wallet at `to` and waits for its reply.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the host is unknown or unreachable.
    fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError>;
}

impl Transport for SimNet {
    fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError> {
        SimNet::request(self, to, req)
    }
}

/// A directory of threaded wallet services, addressable like a network.
#[derive(Debug, Default)]
pub struct ServiceRegistry {
    services: RwLock<HashMap<WalletAddr, WalletClient>>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service client under an address.
    pub fn register(&self, addr: impl Into<WalletAddr>, client: WalletClient) {
        self.services.write().insert(addr.into(), client);
    }

    /// Removes a service.
    pub fn deregister(&self, addr: &WalletAddr) {
        self.services.write().remove(addr);
    }
}

impl Transport for ServiceRegistry {
    fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError> {
        let client = self
            .services
            .read()
            .get(to)
            .cloned()
            .ok_or_else(|| NetError::UnknownHost(to.clone()))?;
        client.call(req).map_err(|_| NetError::HostDown(to.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::WalletService;
    use drbac_core::{LocalEntity, Node, SimClock};
    use drbac_crypto::SchnorrGroup;
    use drbac_wallet::Wallet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn registry_routes_to_services() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let m = LocalEntity::generate("M", g, &mut rng);
        let service = WalletService::spawn(Wallet::new("w1", SimClock::new()));
        let registry = ServiceRegistry::new();
        registry.register("w1", service.client());

        let cert = a
            .delegate(Node::entity(&m), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        let reply = registry
            .request(
                &"w1".into(),
                Request::Publish {
                    cert: Arc::new(cert),
                    supports: vec![],
                },
            )
            .unwrap();
        assert!(!reply.is_error());

        assert!(matches!(
            registry.request(&"nowhere".into(), Request::FetchDeclarations),
            Err(NetError::UnknownHost(_))
        ));

        registry.deregister(&"w1".into());
        assert!(matches!(
            registry.request(&"w1".into(), Request::FetchDeclarations),
            Err(NetError::UnknownHost(_))
        ));
        service.shutdown();
    }

    #[test]
    fn dead_service_reports_host_down() {
        let registry = ServiceRegistry::new();
        let service = WalletService::spawn(Wallet::new("w1", SimClock::new()));
        registry.register("w1", service.client());
        service.shutdown();
        // Channel is closed but the registry entry remains.
        assert!(matches!(
            registry.request(&"w1".into(), Request::FetchDeclarations),
            Err(NetError::HostDown(_))
        ));
    }
}
