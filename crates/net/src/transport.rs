//! The transport abstraction discovery runs over.
//!
//! [`DiscoveryAgent`](crate::DiscoveryAgent) only needs request/reply
//! delivery to named wallets. [`crate::SimNet`] provides it
//! deterministically for tests and experiments; [`ServiceRegistry`]
//! provides it over real [`crate::WalletService`] threads; and
//! [`crate::TcpTransport`] provides it over sockets against a
//! [`crate::WalletDaemon`] — same algorithm, three deployment shapes.
//!
//! [`RetryPolicy`] is transport-blind: it retries exactly the errors
//! [`NetError::is_retryable`] marks transient (`Timeout`, `HostDown`)
//! and spends its backoff through [`Transport::backoff`], which
//! advances the simulated clock on [`crate::SimNet`] and really sleeps
//! on [`crate::TcpTransport`].

use std::collections::HashMap;

use drbac_core::{Ticks, WalletAddr};
use parking_lot::RwLock;

use crate::proto::{Reply, Request};
use crate::service::WalletClient;
use crate::sim::{NetError, SimNet};

/// Request/reply delivery to named wallet hosts.
pub trait Transport: Send + Sync {
    /// Sends `req` to the wallet at `to` and waits for its reply.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the host is unknown or unreachable, or the
    /// request timed out in transit.
    fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError>;

    /// Waits out a retry backoff delay. Transports with a notion of
    /// simulated time advance their clock; the default is a no-op
    /// (real transports would sleep).
    fn backoff(&self, delay: Ticks) {
        let _ = delay;
    }
}

/// Shared transports delegate through the smart pointer, so an
/// `Arc<TcpTransport>` can feed a [`DiscoveryAgent`](crate::DiscoveryAgent)
/// while clones of it keep serving subscriber links.
impl<T: Transport + ?Sized> Transport for std::sync::Arc<T> {
    fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError> {
        (**self).request(to, req)
    }

    fn backoff(&self, delay: Ticks) {
        (**self).backoff(delay);
    }
}

impl Transport for SimNet {
    fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError> {
        SimNet::request(self, to, req)
    }

    fn backoff(&self, delay: Ticks) {
        self.clock().advance(delay);
    }
}

/// Bounded retry with deterministic exponential backoff for transient
/// transport failures ([`NetError::is_retryable`]). Attempt `n` (1-based)
/// is preceded by a backoff of `base_backoff << (n - 2)` ticks, spent via
/// [`Transport::backoff`] — so the schedule is a pure function of the
/// policy, never of wall-clock randomness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (0 is treated as 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Ticks,
}

/// What a retried request produced: the final reply (or the last error,
/// once the policy is exhausted) plus how many attempts it took.
#[derive(Debug, Clone)]
pub struct RetryOutcome {
    /// Reply from the last attempt.
    pub reply: Result<Reply, NetError>,
    /// Attempts actually made (1 = clean first try).
    pub attempts: u32,
}

impl RetryOutcome {
    /// `true` when the request did not complete cleanly on the first
    /// attempt — it needed retries or failed outright. Feeds the
    /// `degraded` flag on [`crate::DiscoveryOutcome`].
    pub fn degraded(&self) -> bool {
        self.attempts > 1 || self.reply.is_err()
    }
}

impl RetryPolicy {
    /// No retries: a single attempt, fail fast.
    pub const fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Ticks(0),
        }
    }

    /// The default resilience posture: up to 3 attempts (2 retries)
    /// backing off 1 then 2 ticks.
    pub const fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Ticks(1),
        }
    }

    /// Sends `req`, retrying transient failures up to the policy's
    /// attempt budget. Each retry increments the global
    /// `drbac.net.retry.count` counter. Non-retryable errors
    /// ([`NetError::UnknownHost`]) and successful replies return
    /// immediately.
    pub fn run(&self, transport: &dyn Transport, to: &WalletAddr, req: &Request) -> RetryOutcome {
        let max_attempts = self.max_attempts.max(1);
        let mut attempts = 0;
        loop {
            attempts += 1;
            let reply = transport.request(to, req.clone());
            match &reply {
                Ok(_) => return RetryOutcome { reply, attempts },
                Err(e) if !e.is_retryable() || attempts >= max_attempts => {
                    return RetryOutcome { reply, attempts };
                }
                Err(_) => {
                    drbac_obs::static_counter!("drbac.net.retry.count").inc();
                    drbac_obs::event!(
                        "drbac.net.retry",
                        "to" => to.to_string(),
                        "attempt" => attempts.to_string(),
                    );
                    // Saturate rather than shift-overflow: a policy with a
                    // huge attempt budget must not panic once the exponent
                    // reaches the width of the tick counter.
                    let exponent = (attempts - 1).min(63);
                    transport.backoff(Ticks(self.base_backoff.0.saturating_mul(1u64 << exponent)));
                }
            }
        }
    }
}

/// A directory of threaded wallet services, addressable like a network.
#[derive(Debug, Default)]
pub struct ServiceRegistry {
    services: RwLock<HashMap<WalletAddr, WalletClient>>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service client under an address.
    pub fn register(&self, addr: impl Into<WalletAddr>, client: WalletClient) {
        self.services.write().insert(addr.into(), client);
    }

    /// Removes a service.
    pub fn deregister(&self, addr: &WalletAddr) {
        self.services.write().remove(addr);
    }
}

impl Transport for ServiceRegistry {
    fn request(&self, to: &WalletAddr, req: Request) -> Result<Reply, NetError> {
        let client = self
            .services
            .read()
            .get(to)
            .cloned()
            .ok_or_else(|| NetError::UnknownHost(to.clone()))?;
        client.call(req).map_err(|_| NetError::HostDown(to.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::WalletService;
    use drbac_core::{LocalEntity, Node, SimClock};
    use drbac_crypto::SchnorrGroup;
    use drbac_wallet::Wallet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn registry_routes_to_services() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let m = LocalEntity::generate("M", g, &mut rng);
        let service = WalletService::spawn(Wallet::new("w1", SimClock::new()));
        let registry = ServiceRegistry::new();
        registry.register("w1", service.client());

        let cert = a
            .delegate(Node::entity(&m), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        let reply = registry
            .request(
                &"w1".into(),
                Request::Publish {
                    cert: Arc::new(cert),
                    supports: vec![],
                },
            )
            .unwrap();
        assert!(!reply.is_error());

        assert!(matches!(
            registry.request(&"nowhere".into(), Request::FetchDeclarations),
            Err(NetError::UnknownHost(_))
        ));

        registry.deregister(&"w1".into());
        assert!(matches!(
            registry.request(&"w1".into(), Request::FetchDeclarations),
            Err(NetError::UnknownHost(_))
        ));
        service.shutdown();
    }

    /// Fails the first `failures` requests with a retryable error, then
    /// answers every request with `Reply::Subscribed`.
    struct Flaky {
        failures: std::sync::atomic::AtomicU32,
    }

    impl Transport for Flaky {
        fn request(&self, to: &WalletAddr, _req: Request) -> Result<Reply, NetError> {
            use std::sync::atomic::Ordering;
            let left = self.failures.load(Ordering::SeqCst);
            if left > 0 {
                self.failures.store(left - 1, Ordering::SeqCst);
                return Err(NetError::Timeout(to.clone()));
            }
            Ok(Reply::Subscribed)
        }
    }

    #[test]
    fn retry_recovers_from_transient_timeouts() {
        let flaky = Flaky {
            failures: 2.into(),
        };
        let outcome = RetryPolicy::standard().run(&flaky, &"w1".into(), &Request::FetchDeclarations);
        assert!(matches!(outcome.reply, Ok(Reply::Subscribed)));
        assert_eq!(outcome.attempts, 3);
        assert!(outcome.degraded(), "needed retries");

        // A clean first try is not degraded.
        let outcome = RetryPolicy::standard().run(&flaky, &"w1".into(), &Request::FetchDeclarations);
        assert_eq!(outcome.attempts, 1);
        assert!(!outcome.degraded());
    }

    #[test]
    fn retry_budget_exhausts_and_reports_failure() {
        let flaky = Flaky {
            failures: 100.into(),
        };
        let outcome = RetryPolicy::standard().run(&flaky, &"w1".into(), &Request::FetchDeclarations);
        assert!(matches!(outcome.reply, Err(NetError::Timeout(_))));
        assert_eq!(outcome.attempts, 3, "policy allows exactly 3 attempts");
        assert!(outcome.degraded());
    }

    #[test]
    fn unknown_host_is_not_retried() {
        struct NoSuchHost;
        impl Transport for NoSuchHost {
            fn request(&self, to: &WalletAddr, _req: Request) -> Result<Reply, NetError> {
                Err(NetError::UnknownHost(to.clone()))
            }
        }
        let outcome =
            RetryPolicy::standard().run(&NoSuchHost, &"w1".into(), &Request::FetchDeclarations);
        assert!(matches!(outcome.reply, Err(NetError::UnknownHost(_))));
        assert_eq!(outcome.attempts, 1, "permanent errors fail fast");
    }

    #[test]
    fn backoff_spends_simulated_time_on_simnet() {
        use drbac_core::Ticks;
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), Ticks(1));
        net.add_host("w1", Wallet::new("w1", clock.clone()));
        net.partition_host(&"w1".into());
        let outcome = RetryPolicy::standard().run(&net, &"w1".into(), &Request::FetchDeclarations);
        assert!(matches!(outcome.reply, Err(NetError::Timeout(_))));
        // 3 attempts × 4-tick default timeout budget + backoffs of 1 and
        // 2 ticks between them.
        assert_eq!(clock.now().0, 3 * 4 + 1 + 2);
    }

    #[test]
    fn dead_service_reports_host_down() {
        let registry = ServiceRegistry::new();
        let service = WalletService::spawn(Wallet::new("w1", SimClock::new()));
        registry.register("w1", service.client());
        service.shutdown();
        // Channel is closed but the registry entry remains.
        assert!(matches!(
            registry.request(&"w1".into(), Request::FetchDeclarations),
            Err(NetError::HostDown(_))
        ));
    }
}
