//! The inter-wallet protocol: requests, replies, and one-way pushes.
//!
//! These enums are transport-neutral: [`crate::SimNet`] passes them
//! in-process, [`crate::TcpTransport`] serializes them through the
//! framed codec in [`crate::wire`] (one frame per message, canonical
//! payload encoding under per-space domain tags). Anything added here
//! needs a wire encoding there.

use std::fmt;
use std::sync::Arc;

use drbac_core::{
    AttrConstraint, DelegationId, Node, Proof, SignedAttrDeclaration, SignedDelegation,
    SignedRevocation, WalletAddr,
};
use drbac_wallet::DelegationEvent;

/// A request sent from one wallet host to another.
#[derive(Debug, Clone)]
pub enum Request {
    /// `S ⇒ O?` under constraints (paper §4.1 direct query).
    DirectQuery {
        /// Subject of the sought relationship.
        subject: Node,
        /// Object of the sought relationship.
        object: Node,
        /// Attribute constraints the proof must satisfy.
        constraints: Vec<AttrConstraint>,
    },
    /// Enumerate `S ⇒ *` (paper §4.1 subject query).
    SubjectQuery {
        /// The subject to search from.
        subject: Node,
        /// Attribute constraints.
        constraints: Vec<AttrConstraint>,
    },
    /// Enumerate `* ⇒ O` (paper §4.1 object query).
    ObjectQuery {
        /// The object to search toward.
        object: Node,
        /// Attribute constraints.
        constraints: Vec<AttrConstraint>,
    },
    /// Publish a credential (with issuer-provided supports) at the remote
    /// wallet.
    Publish {
        /// The credential.
        cert: Arc<SignedDelegation>,
        /// Issuer-provided support proofs.
        supports: Vec<Proof>,
    },
    /// Publish a signed attribute declaration.
    PublishDeclaration(SignedAttrDeclaration),
    /// Register a delegation subscription: push invalidations of
    /// `delegation` to `subscriber` (paper §4.2.2).
    Subscribe {
        /// The delegation whose status is monitored.
        delegation: DelegationId,
        /// Wallet to push events to.
        subscriber: WalletAddr,
    },
    /// Remove a previously registered subscription.
    Unsubscribe {
        /// The monitored delegation.
        delegation: DelegationId,
        /// The subscriber being removed.
        subscriber: WalletAddr,
    },
    /// Deliver a signed revocation to the delegation's home wallet.
    Revoke(SignedRevocation),
    /// Fetch the signed attribute declarations the remote wallet holds.
    FetchDeclarations,
    /// Re-validate a cached credential against its home wallet (TTL
    /// refresh, paper §4.2.1: a delegation "is valid [for TTL] following
    /// validity confirmation from its home wallet").
    FetchDelegation(DelegationId),
    /// Scrape the remote host's metrics/histogram snapshot (`drbac
    /// stats --remote`). Observability only — carries no credentials.
    Stats,
    /// Liveness + basic inventory probe (`drbac health`).
    Health,
}

impl Request {
    /// Approximate wire size in bytes (canonical encodings of the
    /// payload plus a small header), for traffic accounting.
    pub fn encoded_len(&self) -> usize {
        const HEADER: usize = 16;
        HEADER
            + match self {
                Request::DirectQuery {
                    subject,
                    object,
                    constraints,
                } => node_len(subject) + node_len(object) + constraints.len() * 48,
                Request::SubjectQuery {
                    subject,
                    constraints,
                } => node_len(subject) + constraints.len() * 48,
                Request::ObjectQuery {
                    object,
                    constraints,
                } => node_len(object) + constraints.len() * 48,
                Request::Publish { cert, supports } => {
                    cert.to_bytes().len()
                        + supports.iter().map(|p| p.to_bytes().len()).sum::<usize>()
                }
                Request::PublishDeclaration(d) => d.to_bytes().len(),
                Request::Subscribe { .. } | Request::Unsubscribe { .. } => 32 + 32,
                Request::Revoke(r) => r.to_bytes().len(),
                Request::FetchDeclarations => 0,
                Request::FetchDelegation(_) => 32,
                Request::Stats | Request::Health => 0,
            }
    }

    /// Short tag for statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::DirectQuery { .. } => "direct-query",
            Request::SubjectQuery { .. } => "subject-query",
            Request::ObjectQuery { .. } => "object-query",
            Request::Publish { .. } => "publish",
            Request::PublishDeclaration(_) => "publish-declaration",
            Request::Subscribe { .. } => "subscribe",
            Request::Unsubscribe { .. } => "unsubscribe",
            Request::Revoke(_) => "revoke",
            Request::FetchDeclarations => "fetch-declarations",
            Request::FetchDelegation(_) => "fetch-delegation",
            Request::Stats => "stats",
            Request::Health => "health",
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::DirectQuery {
                subject, object, ..
            } => {
                write!(f, "direct-query {subject} => {object}")
            }
            Request::SubjectQuery { subject, .. } => write!(f, "subject-query {subject} => *"),
            Request::ObjectQuery { object, .. } => write!(f, "object-query * => {object}"),
            Request::Publish { cert, .. } => write!(f, "publish {}", cert.delegation()),
            Request::PublishDeclaration(d) => {
                write!(f, "publish-declaration {}", d.declaration().attr)
            }
            Request::Subscribe {
                delegation,
                subscriber,
            } => {
                write!(f, "subscribe #{delegation} -> {subscriber}")
            }
            Request::Unsubscribe {
                delegation,
                subscriber,
            } => {
                write!(f, "unsubscribe #{delegation} -> {subscriber}")
            }
            Request::Revoke(r) => write!(f, "{r}"),
            Request::FetchDeclarations => f.write_str("fetch-declarations"),
            Request::FetchDelegation(id) => write!(f, "fetch-delegation #{id}"),
            Request::Stats => f.write_str("stats"),
            Request::Health => f.write_str("health"),
        }
    }
}

/// A reply to a [`Request`].
#[derive(Debug, Clone)]
pub enum Reply {
    /// Proofs answering a query (empty when none exist).
    Proofs(Vec<Proof>),
    /// The id assigned to a published credential.
    Published(DelegationId),
    /// Declaration accepted.
    DeclarationPublished,
    /// Subscription registered (or removed).
    Subscribed,
    /// Revocation honored; count of local notifications delivered.
    Revoked(usize),
    /// The wallet's signed declarations.
    Declarations(Vec<SignedAttrDeclaration>),
    /// The credential, if the wallet still holds it as valid (`None`
    /// means revoked, expired, or never known — drop the cached copy).
    Delegation(Option<Arc<SignedDelegation>>),
    /// The host's metrics/histogram snapshot (answer to
    /// [`Request::Stats`]).
    Stats(drbac_obs::Snapshot),
    /// Answer to [`Request::Health`].
    Health(HealthReport),
    /// The request failed.
    Error(String),
}

impl Reply {
    /// Message prefix of every overload reply (see [`Reply::overloaded`]).
    pub const OVERLOAD_PREFIX: &'static str = "overloaded";

    /// An explicit backpressure rejection: the daemon refused to queue
    /// this request (per-connection in-flight cap or global job queue
    /// full). Encoded as a [`Reply::Error`] with a canonical prefix so
    /// pre-backpressure peers decode it as an ordinary error while new
    /// clients can tell "shed load and retry later" from "bad request".
    pub fn overloaded(what: &str) -> Reply {
        Reply::Error(format!("{}: {what}", Self::OVERLOAD_PREFIX))
    }

    /// `true` when this reply is a backpressure rejection emitted by
    /// [`Reply::overloaded`] — the request was never executed and may
    /// be retried after easing off.
    pub fn is_overload(&self) -> bool {
        matches!(self, Reply::Error(m) if m.starts_with(Self::OVERLOAD_PREFIX))
    }

    /// `true` for [`Reply::Error`].
    pub fn is_error(&self) -> bool {
        matches!(self, Reply::Error(_))
    }

    /// Approximate wire size in bytes (see [`Request::encoded_len`]).
    pub fn encoded_len(&self) -> usize {
        const HEADER: usize = 16;
        HEADER
            + match self {
                Reply::Proofs(proofs) => proofs.iter().map(|p| p.to_bytes().len()).sum(),
                Reply::Published(_) => 32,
                Reply::DeclarationPublished | Reply::Subscribed => 0,
                Reply::Revoked(_) => 8,
                Reply::Declarations(ds) => ds.iter().map(|d| d.to_bytes().len()).sum(),
                Reply::Delegation(c) => c.as_ref().map(|c| c.to_bytes().len()).unwrap_or(0),
                Reply::Stats(s) => {
                    s.counters.len() * 48 + s.gauges.len() * 48 + s.histograms.len() * 96
                }
                Reply::Health(_) => 64,
                Reply::Error(m) => m.len(),
            }
    }
}

/// A daemon's answer to [`Request::Health`]: liveness plus just enough
/// inventory to tell an empty daemon from a busy one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// `true` when the daemon considers itself able to serve.
    pub ok: bool,
    /// The wallet address the daemon serves.
    pub wallet: String,
    /// Nanoseconds since the daemon started accepting connections.
    pub uptime_ns: u64,
    /// Delegations currently held by the wallet.
    pub delegations: u64,
    /// Registered push subscribers.
    pub subscribers: u64,
    /// Requests served since start (all kinds, including this probe).
    pub served_requests: u64,
}

fn node_len(node: &Node) -> usize {
    use drbac_core::{Encode, Writer};
    let mut w = Writer::default();
    node.encode(&mut w);
    w.finish().len()
}

/// A one-way message (no reply expected).
#[derive(Debug, Clone)]
pub enum OneWay {
    /// Push notification that a delegation was invalidated — the heart of
    /// the delegation-subscription mechanism.
    Invalidate(DelegationEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_kinds_are_distinct() {
        let subject = Node::Entity(drbac_core::EntityId(drbac_crypto::KeyFingerprint([0; 32])));
        let kinds = [
            Request::SubjectQuery {
                subject: subject.clone(),
                constraints: vec![],
            }
            .kind(),
            Request::FetchDeclarations.kind(),
        ];
        assert_eq!(kinds[0], "subject-query");
        assert_eq!(kinds[1], "fetch-declarations");
    }

    #[test]
    fn reply_error_detection() {
        assert!(Reply::Error("x".into()).is_error());
        assert!(!Reply::Proofs(vec![]).is_error());
    }

    #[test]
    fn encoded_lens_scale_with_payload() {
        use drbac_core::{LocalEntity, Proof, ProofStep};
        use drbac_crypto::SchnorrGroup;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(1);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let m = LocalEntity::generate("M", g, &mut rng);
        let cert = a
            .delegate(Node::entity(&m), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();

        let publish = Request::Publish {
            cert: Arc::new(cert.clone()),
            supports: vec![proof.clone()],
        };
        let fetch = Request::FetchDeclarations;
        assert!(publish.encoded_len() > cert.to_bytes().len());
        assert!(fetch.encoded_len() < 64);

        let one = Reply::Proofs(vec![proof.clone()]);
        let two = Reply::Proofs(vec![proof.clone(), proof]);
        assert!(two.encoded_len() > one.encoded_len());
        assert!(Reply::Subscribed.encoded_len() < one.encoded_len());
    }
}
