//! Tag-directed distributed credential discovery (paper §4.2.1).
//!
//! The agent builds proofs spanning multiple wallets "by conducting
//! searches from subjects towards objects and/or objects towards subjects
//! (using subject and object queries against individual wallets) as
//! directed by discovery tags". Sub-proofs returned by remote wallets are
//! inserted into the local trusted wallet, "with the objects of these
//! proofs serving as the roots for further searches", and the local wallet
//! glues the segments into a complete proof.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

use drbac_core::{AttrConstraint, DiscoveryTag, EntityId, Node, Proof, Timestamp, WalletAddr};
use drbac_wallet::{ProofMonitor, Wallet};

use crate::proto::{Reply, Request};
use crate::transport::{RetryPolicy, Transport};

/// A stored discovery tag plus the time its TTL lapses (`None` =
/// permanent: out-of-band registrations and tags with TTL 0).
#[derive(Debug, Clone)]
struct TagEntry {
    tag: DiscoveryTag,
    expires: Option<Timestamp>,
}

/// Records a learned tag with TTL-coherence refresh semantics:
/// re-observing a tag extends its lifetime (latest expiry wins) and may
/// promote it to permanent, but never shortens it — a permanent
/// registration stays permanent.
fn remember<K: std::hash::Hash + Eq>(
    map: &mut HashMap<K, TagEntry>,
    key: K,
    tag: &DiscoveryTag,
    expires: Option<Timestamp>,
) {
    match map.entry(key) {
        std::collections::hash_map::Entry::Occupied(mut slot) => {
            let entry = slot.get_mut();
            match (entry.expires, expires) {
                (Some(old), Some(new)) if new > old => entry.expires = Some(new),
                (Some(_), None) => entry.expires = None,
                _ => {}
            }
        }
        std::collections::hash_map::Entry::Vacant(slot) => {
            slot.insert(TagEntry {
                tag: tag.clone(),
                expires,
            });
        }
    }
}

/// Result of a time-aware tag lookup ([`Directory::lookup`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagLookup<'a> {
    /// A live tag — safe to follow.
    Fresh(&'a DiscoveryTag),
    /// A tag whose TTL lapsed; it must not be followed (the home wallet
    /// hint is stale) and the discovery run is degraded.
    Expired(&'a DiscoveryTag),
    /// No tag known for the node.
    Unknown,
}

/// Resolves nodes to their home wallets via discovery tags.
///
/// Initially seeded from out-of-band knowledge (e.g. the tags on
/// credentials an entity presents); enriched automatically with tags
/// carried by discovered delegations. Tags learned from proofs honor the
/// tag's TTL (`<home:role:ttl:flags>`): once it lapses the tag is no
/// longer followed — see [`Directory::lookup`].
#[derive(Debug, Clone, Default)]
pub struct Directory {
    node_tags: HashMap<Node, TagEntry>,
    entity_tags: HashMap<EntityId, TagEntry>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node's discovery tag (out-of-band knowledge; never
    /// expires).
    pub fn register(&mut self, node: Node, tag: DiscoveryTag) {
        self.node_tags.insert(node, TagEntry { tag, expires: None });
    }

    /// Registers a namespace-wide tag for an entity (fallback for roles in
    /// that namespace; never expires).
    pub fn register_entity(&mut self, entity: EntityId, tag: DiscoveryTag) {
        self.entity_tags
            .insert(entity, TagEntry { tag, expires: None });
    }

    /// The tag for `node`: exact registration first, then the namespace
    /// owner's tag. Ignores TTL expiry — use [`Directory::lookup`] on
    /// discovery paths.
    pub fn tag_of(&self, node: &Node) -> Option<&DiscoveryTag> {
        self.entry_of(node).map(|e| &e.tag)
    }

    fn entry_of(&self, node: &Node) -> Option<&TagEntry> {
        self.node_tags
            .get(node)
            .or_else(|| self.entity_tags.get(&node.namespace()))
    }

    /// Time-aware lookup: distinguishes a live tag from one whose TTL has
    /// lapsed, so discovery can both refuse to follow the stale hint and
    /// mark the run degraded.
    pub fn lookup(&self, node: &Node, now: Timestamp) -> TagLookup<'_> {
        match self.entry_of(node) {
            None => TagLookup::Unknown,
            Some(entry) => match entry.expires {
                Some(expires) if now > expires => TagLookup::Expired(&entry.tag),
                _ => TagLookup::Fresh(&entry.tag),
            },
        }
    }

    /// Absorbs the subject/object/issuer tags carried by every delegation
    /// in `proof`, without TTL tracking (entries never expire). Prefer
    /// [`Directory::learn_from_proof_at`] when a current time is
    /// available.
    pub fn learn_from_proof(&mut self, proof: &Proof) {
        self.learn(proof, None);
    }

    /// As [`Directory::learn_from_proof`], but tags carrying a non-zero
    /// TTL expire `ttl` ticks after `now` and are then no longer followed.
    pub fn learn_from_proof_at(&mut self, proof: &Proof, now: Timestamp) {
        self.learn(proof, Some(now));
    }

    fn learn(&mut self, proof: &Proof, now: Option<Timestamp>) {
        let expiry = |tag: &DiscoveryTag| match now {
            Some(now) if tag.ttl().0 > 0 => Some(now.after(tag.ttl())),
            _ => None,
        };
        for cert in proof.all_certs() {
            let d = cert.delegation();
            if let Some(tag) = d.subject_tag() {
                remember(&mut self.node_tags, d.subject().clone(), tag, expiry(tag));
            }
            if let Some(tag) = d.object_tag() {
                remember(&mut self.node_tags, d.object().clone(), tag, expiry(tag));
            }
            if let Some(tag) = d.issuer_tag() {
                remember(&mut self.entity_tags, d.issuer(), tag, expiry(tag));
            }
        }
    }

    /// Number of known tags.
    pub fn len(&self) -> usize {
        self.node_tags.len() + self.entity_tags.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.node_tags.is_empty() && self.entity_tags.is_empty()
    }
}

/// Which directions the tags permit searching in (paper §4.2.3: searching
/// simultaneously in both directions sharply reduces the paths
/// considered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Subject has flag `S`: subject-towards-object search is complete.
    Forward,
    /// Object has flag `O`: object-towards-subject search is complete.
    Reverse,
    /// Both flags set: expand both frontiers alternately.
    Bidirectional,
    /// Neither flag: only the local wallet can answer.
    LocalOnly,
}

/// One entry in the discovery trace — the audit log tests use to check
/// the paper's Figure 2 walkthrough step by step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryStep {
    /// Queried the local wallet.
    LocalQuery {
        /// Whether a complete proof was found locally.
        found: bool,
    },
    /// Sent a direct query to a remote wallet.
    RemoteDirect {
        /// The wallet contacted.
        wallet: WalletAddr,
        /// The frontier node queried from (forward) or toward (reverse).
        node: String,
        /// Whether the remote returned a complete sub-proof.
        found: bool,
    },
    /// Sent a subject query (`node ⇒ *`) to a remote wallet.
    RemoteSubjectQuery {
        /// The wallet contacted.
        wallet: WalletAddr,
        /// The frontier node.
        node: String,
        /// Number of sub-proofs returned.
        proofs: usize,
    },
    /// Sent an object query (`* ⇒ node`) to a remote wallet.
    RemoteObjectQuery {
        /// The wallet contacted.
        wallet: WalletAddr,
        /// The frontier node.
        node: String,
        /// Number of sub-proofs returned.
        proofs: usize,
    },
    /// Absorbed remote sub-proofs into the local wallet and subscribed
    /// for coherence.
    Absorbed {
        /// Credentials inserted.
        certs: usize,
    },
    /// Fetched attribute declarations from a remote wallet.
    FetchedDeclarations {
        /// The wallet contacted.
        wallet: WalletAddr,
        /// Declarations received.
        count: usize,
    },
}

impl fmt::Display for DiscoveryStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryStep::LocalQuery { found } => write!(f, "local query (found: {found})"),
            DiscoveryStep::RemoteDirect {
                wallet,
                node,
                found,
            } => {
                write!(f, "direct query at {wallet} from {node} (found: {found})")
            }
            DiscoveryStep::RemoteSubjectQuery {
                wallet,
                node,
                proofs,
            } => {
                write!(f, "subject query {node} => * at {wallet} ({proofs} proofs)")
            }
            DiscoveryStep::RemoteObjectQuery {
                wallet,
                node,
                proofs,
            } => {
                write!(f, "object query * => {node} at {wallet} ({proofs} proofs)")
            }
            DiscoveryStep::Absorbed { certs } => write!(f, "absorbed {certs} credentials"),
            DiscoveryStep::FetchedDeclarations { wallet, count } => {
                write!(f, "fetched {count} declarations from {wallet}")
            }
        }
    }
}

/// Result of a distributed discovery run.
#[derive(Debug)]
pub struct DiscoveryOutcome {
    /// The monitored proof, if discovery succeeded.
    pub monitor: Option<ProofMonitor>,
    /// Ordered trace of discovery actions.
    pub trace: Vec<DiscoveryStep>,
    /// Remote wallets contacted.
    pub wallets_contacted: BTreeSet<WalletAddr>,
    /// The search mode the tags selected.
    pub mode: SearchMode,
    /// `true` when the run did not complete cleanly: some remote hop
    /// needed retries, or a wallet stayed unreachable and was skipped.
    /// The answer is still trustworthy (proofs verify locally) but may
    /// be *incomplete* — a miss under degradation is weaker evidence
    /// than a fault-free miss.
    pub degraded: bool,
}

impl DiscoveryOutcome {
    /// `true` when a proof was found.
    pub fn found(&self) -> bool {
        self.monitor.is_some()
    }
}

/// Executes tag-directed discovery over any [`Transport`] —
/// deterministic ([`crate::SimNet`]) or threaded
/// ([`crate::ServiceRegistry`]) — building the proof in a local trusted
/// wallet.
pub struct DiscoveryAgent {
    transport: std::sync::Arc<dyn Transport>,
    local: Wallet,
    directory: Directory,
    /// Establish delegation subscriptions for absorbed credentials
    /// (coherence; Figure 2's dotted lines). Default true.
    pub auto_subscribe: bool,
    /// Retry posture for every remote hop. Defaults to
    /// [`RetryPolicy::standard`]; set [`RetryPolicy::none`] to fail
    /// fast.
    pub retry: RetryPolicy,
    /// Recursion guard for support repair.
    repairing: bool,
    /// Set when any hop of the current run retried or failed; copied
    /// into [`DiscoveryOutcome::degraded`].
    run_degraded: bool,
}

impl std::fmt::Debug for DiscoveryAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiscoveryAgent")
            .field("local", &self.local)
            .field("directory", &self.directory)
            .finish()
    }
}

impl DiscoveryAgent {
    /// Creates an agent operating `local` as its trusted wallet.
    pub fn new(
        transport: impl Transport + 'static,
        local: impl Into<Wallet>,
        directory: Directory,
    ) -> Self {
        DiscoveryAgent {
            transport: std::sync::Arc::new(transport),
            local: local.into(),
            directory,
            auto_subscribe: true,
            retry: RetryPolicy::standard(),
            repairing: false,
            run_degraded: false,
        }
    }

    /// Sends one remote request under the agent's retry policy. A hop
    /// that needed retries — or failed outright, skipping the wallet —
    /// marks the whole run degraded. Returns `None` when the wallet
    /// stayed unreachable after the attempt budget.
    fn rpc(&mut self, to: &WalletAddr, req: Request) -> Option<Reply> {
        let outcome = self.retry.run(self.transport.as_ref(), to, &req);
        if outcome.degraded() {
            self.run_degraded = true;
        }
        match outcome.reply {
            Ok(reply) => Some(reply),
            Err(err) => {
                drbac_obs::static_counter!("drbac.net.discovery.skipped_wallet.count").inc();
                drbac_obs::event!(
                    "drbac.net.discovery.skipped_wallet",
                    "wallet" => to.to_string(),
                    "error" => err.to_string(),
                );
                None
            }
        }
    }

    /// The (mutable) directory, e.g. to register tags learned out of
    /// band.
    pub fn directory_mut(&mut self) -> &mut Directory {
        &mut self.directory
    }

    /// Discovers a proof `subject ⇒ object` satisfying `constraints`,
    /// following discovery tags across wallets.
    pub fn discover(
        &mut self,
        subject: &Node,
        object: &Node,
        constraints: &[AttrConstraint],
    ) -> DiscoveryOutcome {
        self.discover_with_seeds(subject, object, constraints, &[])
    }

    /// As [`DiscoveryAgent::discover`], with extra forward-frontier seed
    /// nodes — used with the *acting-as* hints of third-party delegations
    /// when re-discovering support chains (§4.2.1).
    pub fn discover_with_seeds(
        &mut self,
        subject: &Node,
        object: &Node,
        constraints: &[AttrConstraint],
        extra_seeds: &[Node],
    ) -> DiscoveryOutcome {
        let _span = drbac_obs::span!(
            "drbac.net.discovery.round",
            "subject" => subject.to_string(),
            "object" => object.to_string(),
        );
        let _timer = drbac_obs::static_histogram!("drbac.net.discovery.round.ns").start_timer();
        drbac_obs::static_counter!("drbac.net.discovery.round.count").inc();
        let outcome = self.discover_inner(subject, object, constraints, extra_seeds);
        if outcome.found() {
            drbac_obs::static_counter!("drbac.net.discovery.found.count").inc();
        } else {
            drbac_obs::static_counter!("drbac.net.discovery.miss.count").inc();
        }
        outcome
    }

    fn discover_inner(
        &mut self,
        subject: &Node,
        object: &Node,
        constraints: &[AttrConstraint],
        extra_seeds: &[Node],
    ) -> DiscoveryOutcome {
        let mut trace = Vec::new();
        let mut contacted = BTreeSet::new();
        self.run_degraded = false;

        let mut mode = self.pick_mode(subject, object);
        // Searchable seed tags enable forward expansion even when the
        // subject's own roots carry no usable tag.
        if matches!(mode, SearchMode::LocalOnly | SearchMode::Reverse)
            && extra_seeds.iter().any(|n| {
                self.directory
                    .tag_of(n)
                    .map(|t| t.searchable_from_subject())
                    .unwrap_or(false)
            })
        {
            mode = match mode {
                SearchMode::Reverse => SearchMode::Bidirectional,
                _ => SearchMode::Forward,
            };
        }

        // Step 1: the local wallet first.
        if let Some(monitor) = self.local.query_direct(subject, object, constraints) {
            trace.push(DiscoveryStep::LocalQuery { found: true });
            return DiscoveryOutcome {
                monitor: Some(monitor),
                trace,
                wallets_contacted: contacted,
                mode,
                degraded: self.run_degraded,
            };
        }
        trace.push(DiscoveryStep::LocalQuery { found: false });
        if mode == SearchMode::LocalOnly {
            return DiscoveryOutcome {
                monitor: None,
                trace,
                wallets_contacted: contacted,
                mode,
                degraded: self.run_degraded,
            };
        }

        // Frontiers seeded with the endpoints plus everything the local
        // wallet already connects them to, plus caller-provided seeds.
        let mut fwd: VecDeque<Node> = VecDeque::new();
        let mut rev: VecDeque<Node> = VecDeque::new();
        let mut fwd_seen: BTreeSet<Node> = BTreeSet::new();
        let mut rev_seen: BTreeSet<Node> = BTreeSet::new();
        if matches!(mode, SearchMode::Forward | SearchMode::Bidirectional) {
            let mut roots = self.local_forward_roots(subject, constraints);
            roots.extend(extra_seeds.iter().cloned());
            for node in roots {
                if fwd_seen.insert(node.clone()) {
                    fwd.push_back(node);
                }
            }
        }
        if matches!(mode, SearchMode::Reverse | SearchMode::Bidirectional) {
            for node in self.local_reverse_roots(object, constraints) {
                if rev_seen.insert(node.clone()) {
                    rev.push_back(node);
                }
            }
        }

        while !fwd.is_empty() || !rev.is_empty() {
            // Alternate frontiers (bidirectional meets in the middle).
            if let Some(node) = fwd.pop_front() {
                if let Some(monitor) = self.expand_forward(
                    &node,
                    subject,
                    object,
                    constraints,
                    &mut trace,
                    &mut contacted,
                    &mut fwd,
                    &mut fwd_seen,
                ) {
                    return DiscoveryOutcome {
                        monitor: Some(monitor),
                        trace,
                        wallets_contacted: contacted,
                        mode,
                        degraded: self.run_degraded,
                    };
                }
            }
            if let Some(node) = rev.pop_front() {
                if let Some(monitor) = self.expand_reverse(
                    &node,
                    subject,
                    object,
                    constraints,
                    &mut trace,
                    &mut contacted,
                    &mut rev,
                    &mut rev_seen,
                ) {
                    return DiscoveryOutcome {
                        monitor: Some(monitor),
                        trace,
                        wallets_contacted: contacted,
                        mode,
                        degraded: self.run_degraded,
                    };
                }
            }
        }

        // Last resort (§4.2.1): stored support proofs may have been
        // invalidated while fresh authority exists elsewhere — rebuild
        // them from the issuers' *acting-as* hints and retry once.
        if !self.repairing && self.repair_supports(&mut trace, &mut contacted) {
            if let Some(monitor) = self.local.query_direct(subject, object, constraints) {
                trace.push(DiscoveryStep::LocalQuery { found: true });
                return DiscoveryOutcome {
                    monitor: Some(monitor),
                    trace,
                    wallets_contacted: contacted,
                    mode,
                    degraded: self.run_degraded,
                };
            }
        }

        DiscoveryOutcome {
            monitor: None,
            trace,
            wallets_contacted: contacted,
            mode,
            degraded: self.run_degraded,
        }
    }

    /// Re-discovers support proofs for third-party delegations whose
    /// issuer authority can no longer be proven locally. Returns `true`
    /// if at least one support was repaired.
    fn repair_supports(
        &mut self,
        trace: &mut Vec<DiscoveryStep>,
        contacted: &mut BTreeSet<WalletAddr>,
    ) -> bool {
        self.repairing = true;
        let broken = self.local.unsupported_third_party();
        let mut repaired = false;
        // The nested runs reset `run_degraded`; fold their verdicts back
        // into the outer run's flag.
        let mut degraded = self.run_degraded;
        for (issuer, right, acting_as) in broken {
            let outcome = self.discover_with_seeds(&Node::Entity(issuer), &right, &[], &acting_as);
            degraded |= outcome.degraded;
            trace.extend(outcome.trace);
            contacted.extend(outcome.wallets_contacted);
            if let Some(monitor) = outcome.monitor {
                if self.local.provide_support(monitor.proof().clone()).is_ok() {
                    repaired = true;
                }
            }
        }
        self.run_degraded = degraded;
        self.repairing = false;
        repaired
    }

    /// Selects the search mode from the discovery flags of the endpoints
    /// *and* of the frontier the local wallet already connects them to —
    /// this is how the paper's server wallet "observes that the subject of
    /// the desired relationship, `BigISP.member`, has discovery search
    /// type 'S'" after combining Maria's presented credential.
    fn pick_mode(&self, subject: &Node, object: &Node) -> SearchMode {
        let fwd = self.local_forward_roots(subject, &[]).iter().any(|n| {
            self.directory
                .tag_of(n)
                .map(|t| t.searchable_from_subject())
                .unwrap_or(false)
        });
        let rev = self.local_reverse_roots(object, &[]).iter().any(|n| {
            self.directory
                .tag_of(n)
                .map(|t| t.searchable_from_object())
                .unwrap_or(false)
        });
        match (fwd, rev) {
            (true, true) => SearchMode::Bidirectional,
            (true, false) => SearchMode::Forward,
            (false, true) => SearchMode::Reverse,
            (false, false) => SearchMode::LocalOnly,
        }
    }

    /// Everything the local wallet already proves the subject can reach.
    fn local_forward_roots(&self, subject: &Node, constraints: &[AttrConstraint]) -> Vec<Node> {
        let mut roots = vec![subject.clone()];
        for proof in self.local.query_subject(subject, constraints) {
            roots.push(proof.object().clone());
        }
        roots
    }

    /// Everything the local wallet already proves can reach the object.
    fn local_reverse_roots(&self, object: &Node, constraints: &[AttrConstraint]) -> Vec<Node> {
        let mut roots = vec![object.clone()];
        for proof in self.local.query_object(object, constraints) {
            roots.push(proof.subject().clone());
        }
        roots
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_forward(
        &mut self,
        node: &Node,
        subject: &Node,
        object: &Node,
        constraints: &[AttrConstraint],
        trace: &mut Vec<DiscoveryStep>,
        contacted: &mut BTreeSet<WalletAddr>,
        frontier: &mut VecDeque<Node>,
        seen: &mut BTreeSet<Node>,
    ) -> Option<ProofMonitor> {
        let home = self.home_of(node)?;
        if &home == self.local.addr() {
            return None;
        }
        drbac_obs::static_counter!("drbac.net.discovery.hop.count").inc();
        drbac_obs::event!(
            "drbac.net.discovery.hop",
            "direction" => "forward",
            "wallet" => home.to_string(),
            "node" => node.to_string(),
        );
        self.prepare_wallet(&home, trace, contacted);

        // Paper: "a direct query for Sub => Obj directed towards Sub's
        // home wallet" first, then a subject query.
        let direct = self.rpc(
            &home,
            Request::DirectQuery {
                subject: node.clone(),
                object: object.clone(),
                constraints: constraints.to_vec(),
            },
        );
        if let Some(Reply::Proofs(proofs)) = direct {
            let found = !proofs.is_empty();
            trace.push(DiscoveryStep::RemoteDirect {
                wallet: home.clone(),
                node: node.to_string(),
                found,
            });
            if found {
                self.absorb(&proofs, &home, trace);
                if let Some(m) = self.local.query_direct(subject, object, constraints) {
                    return Some(m);
                }
            }
        }

        let reply = self.rpc(
            &home,
            Request::SubjectQuery {
                subject: node.clone(),
                constraints: constraints.to_vec(),
            },
        );
        if let Some(Reply::Proofs(proofs)) = reply {
            trace.push(DiscoveryStep::RemoteSubjectQuery {
                wallet: home.clone(),
                node: node.to_string(),
                proofs: proofs.len(),
            });
            self.absorb(&proofs, &home, trace);
            for p in &proofs {
                let next = p.object().clone();
                if seen.insert(next.clone()) {
                    frontier.push_back(next);
                }
            }
            if let Some(m) = self.local.query_direct(subject, object, constraints) {
                return Some(m);
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_reverse(
        &mut self,
        node: &Node,
        subject: &Node,
        object: &Node,
        constraints: &[AttrConstraint],
        trace: &mut Vec<DiscoveryStep>,
        contacted: &mut BTreeSet<WalletAddr>,
        frontier: &mut VecDeque<Node>,
        seen: &mut BTreeSet<Node>,
    ) -> Option<ProofMonitor> {
        let home = self.home_of(node)?;
        if &home == self.local.addr() {
            return None;
        }
        drbac_obs::static_counter!("drbac.net.discovery.hop.count").inc();
        drbac_obs::event!(
            "drbac.net.discovery.hop",
            "direction" => "reverse",
            "wallet" => home.to_string(),
            "node" => node.to_string(),
        );
        self.prepare_wallet(&home, trace, contacted);

        let direct = self.rpc(
            &home,
            Request::DirectQuery {
                subject: subject.clone(),
                object: node.clone(),
                constraints: constraints.to_vec(),
            },
        );
        if let Some(Reply::Proofs(proofs)) = direct {
            let found = !proofs.is_empty();
            trace.push(DiscoveryStep::RemoteDirect {
                wallet: home.clone(),
                node: node.to_string(),
                found,
            });
            if found {
                self.absorb(&proofs, &home, trace);
                if let Some(m) = self.local.query_direct(subject, object, constraints) {
                    return Some(m);
                }
            }
        }

        let reply = self.rpc(
            &home,
            Request::ObjectQuery {
                object: node.clone(),
                constraints: constraints.to_vec(),
            },
        );
        if let Some(Reply::Proofs(proofs)) = reply {
            trace.push(DiscoveryStep::RemoteObjectQuery {
                wallet: home.clone(),
                node: node.to_string(),
                proofs: proofs.len(),
            });
            self.absorb(&proofs, &home, trace);
            for p in &proofs {
                let next = p.subject().clone();
                if seen.insert(next.clone()) {
                    frontier.push_back(next);
                }
            }
            if let Some(m) = self.local.query_direct(subject, object, constraints) {
                return Some(m);
            }
        }
        None
    }

    /// Resolves a frontier node's home wallet. A tag whose TTL lapsed
    /// mid-discovery is *not* followed — the hint is stale — and the run
    /// is marked degraded so a miss is reported as weaker evidence.
    fn home_of(&mut self, node: &Node) -> Option<WalletAddr> {
        let now = self.local.now();
        match self.directory.lookup(node, now) {
            TagLookup::Fresh(tag) => Some(tag.home().clone()),
            TagLookup::Expired(tag) => {
                drbac_obs::static_counter!("drbac.net.discovery.tag_expired.count").inc();
                drbac_obs::event!(
                    "drbac.net.discovery.tag_expired",
                    "node" => node.to_string(),
                    "home" => tag.home().to_string(),
                );
                self.run_degraded = true;
                None
            }
            TagLookup::Unknown => None,
        }
    }

    /// First contact with a wallet: pull its attribute declarations so
    /// the local wallet can compute effective values and constraints.
    fn prepare_wallet(
        &mut self,
        home: &WalletAddr,
        trace: &mut Vec<DiscoveryStep>,
        contacted: &mut BTreeSet<WalletAddr>,
    ) {
        if !contacted.insert(home.clone()) {
            return;
        }
        if let Some(Reply::Declarations(decls)) = self.rpc(home, Request::FetchDeclarations) {
            trace.push(DiscoveryStep::FetchedDeclarations {
                wallet: home.clone(),
                count: decls.len(),
            });
            for d in decls {
                let _ = self.local.publish_declaration(&d);
            }
        }
    }

    /// Inserts remote sub-proofs into the local wallet, learns their
    /// discovery tags, and subscribes at the source for coherence.
    fn absorb(&mut self, proofs: &[Proof], source: &WalletAddr, trace: &mut Vec<DiscoveryStep>) {
        let mut certs = 0;
        for proof in proofs {
            if self.local.absorb_proof(proof, source).is_ok() {
                let now = self.local.now();
                self.directory.learn_from_proof_at(proof, now);
                for id in proof.delegation_ids() {
                    certs += 1;
                    if self.auto_subscribe {
                        let subscriber = self.local.addr().clone();
                        let _ = self.rpc(
                            source,
                            Request::Subscribe {
                                delegation: id,
                                subscriber,
                            },
                        );
                    }
                }
            }
        }
        if certs > 0 {
            drbac_obs::static_counter!("drbac.net.discovery.absorbed.certs.count")
                .add(certs as u64);
            trace.push(DiscoveryStep::Absorbed { certs });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimNet, WalletHost};
    use drbac_core::{LocalEntity, ObjectFlag, SimClock, SubjectFlag, Ticks};
    use drbac_crypto::SchnorrGroup;
    use drbac_wallet::Wallet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct World {
        clock: SimClock,
        net: SimNet,
        a: LocalEntity,
        b: LocalEntity,
        maria: LocalEntity,
    }

    fn world() -> World {
        let mut rng = StdRng::seed_from_u64(91);
        let g = SchnorrGroup::test_256();
        let clock = SimClock::new();
        World {
            net: SimNet::new(clock.clone(), Ticks(1)),
            clock,
            a: LocalEntity::generate("A", g.clone(), &mut rng),
            b: LocalEntity::generate("B", g.clone(), &mut rng),
            maria: LocalEntity::generate("Maria", g, &mut rng),
        }
    }

    fn host(w: &World, addr: &str) -> WalletHost {
        w.net.add_host(addr, Wallet::new(addr, w.clock.clone()))
    }

    fn search_tag(home: &str) -> DiscoveryTag {
        DiscoveryTag::new(home)
            .with_subject_flag(SubjectFlag::Search)
            .with_object_flag(ObjectFlag::Search)
    }

    #[test]
    fn local_hit_requires_no_network() {
        let w = world();
        let local = host(&w, "local");
        let cert =
            w.a.delegate(Node::entity(&w.maria), Node::role(w.a.role("r")))
                .sign(&w.a)
                .unwrap();
        local.wallet().publish(cert, vec![]).unwrap();

        let mut agent = DiscoveryAgent::new(w.net.clone(), local, Directory::new());
        let outcome = agent.discover(&Node::entity(&w.maria), &Node::role(w.a.role("r")), &[]);
        assert!(outcome.found());
        assert_eq!(
            outcome.trace,
            vec![DiscoveryStep::LocalQuery { found: true }]
        );
        assert!(outcome.wallets_contacted.is_empty());
        assert_eq!(w.net.stats().total_messages, 0);
    }

    #[test]
    fn forward_discovery_across_two_wallets() {
        // local knows Maria => A.r1; wallet-a knows A.r1 => A.r2 (its home);
        // discovery stitches Maria => A.r2.
        let w = world();
        let local = host(&w, "local");
        let wallet_a = host(&w, "wallet.a");

        let r1 = w.a.role("r1");
        let r2 = w.a.role("r2");
        local
            .wallet()
            .publish(
                w.a.delegate(Node::entity(&w.maria), Node::role(r1.clone()))
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        wallet_a
            .wallet()
            .publish(
                w.a.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();

        let mut dir = Directory::new();
        dir.register(Node::role(r1.clone()), search_tag("wallet.a"));
        let mut agent = DiscoveryAgent::new(w.net.clone(), local.clone(), dir);
        let outcome = agent.discover(&Node::entity(&w.maria), &Node::role(r2.clone()), &[]);
        assert!(outcome.found(), "trace: {:?}", outcome.trace);
        assert_eq!(outcome.mode, SearchMode::Forward);
        assert!(outcome
            .wallets_contacted
            .contains(&WalletAddr::new("wallet.a")));
        let proof = outcome.monitor.as_ref().unwrap().proof();
        assert_eq!(proof.subject(), &Node::entity(&w.maria));
        assert_eq!(proof.object(), &Node::role(r2));
        // The remote credential is now cached locally with coherence
        // subscription registered at the source.
        assert_eq!(local.wallet().len(), 2);
        assert_eq!(w.net.stats().requests("subscribe"), 1);
    }

    #[test]
    fn reverse_discovery_when_only_object_searchable() {
        let w = world();
        let local = host(&w, "local");
        let wallet_a = host(&w, "wallet.a");

        let r1 = w.a.role("r1");
        let r2 = w.a.role("r2");
        // Local knows the tail end r1 => r2; remote home of r1 knows Maria => r1.
        local
            .wallet()
            .publish(
                w.a.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        wallet_a
            .wallet()
            .publish(
                w.a.delegate(Node::entity(&w.maria), Node::role(r1.clone()))
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();

        let mut dir = Directory::new();
        // Only object-side searchability: r1 (and r2) live at wallet.a.
        let tag = DiscoveryTag::new("wallet.a").with_object_flag(ObjectFlag::Search);
        dir.register(Node::role(r1.clone()), tag.clone());
        dir.register(Node::role(r2.clone()), tag);
        let mut agent = DiscoveryAgent::new(w.net.clone(), local, dir);
        let outcome = agent.discover(&Node::entity(&w.maria), &Node::role(r2), &[]);
        assert_eq!(outcome.mode, SearchMode::Reverse);
        assert!(outcome.found(), "trace: {:?}", outcome.trace);
    }

    #[test]
    fn bidirectional_mode_selected_when_both_flags_set() {
        let w = world();
        let local = host(&w, "local");
        let wallet_a = host(&w, "wallet.a");
        let wallet_b = host(&w, "wallet.b");

        // Chain Maria => r1 (wallet.a) ; r1 => r2 (wallet.b holds it, r2's home).
        let r1 = w.a.role("r1");
        let r2 = w.b.role("r2");
        wallet_a
            .wallet()
            .publish(
                w.a.delegate(Node::entity(&w.maria), Node::role(r1.clone()))
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        let grant =
            w.b.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                .sign(&w.b)
                .unwrap();
        wallet_b.wallet().publish(grant, vec![]).unwrap();

        let mut dir = Directory::new();
        dir.register(Node::entity(&w.maria), search_tag("wallet.a"));
        dir.register(Node::role(r1.clone()), search_tag("wallet.a"));
        dir.register(Node::role(r2.clone()), search_tag("wallet.b"));
        let mut agent = DiscoveryAgent::new(w.net.clone(), local, dir);
        let outcome = agent.discover(&Node::entity(&w.maria), &Node::role(r2), &[]);
        assert_eq!(outcome.mode, SearchMode::Bidirectional);
        assert!(outcome.found(), "trace: {:?}", outcome.trace);
    }

    #[test]
    fn no_tags_means_local_only() {
        let w = world();
        let local = host(&w, "local");
        let mut agent = DiscoveryAgent::new(w.net.clone(), local, Directory::new());
        let outcome = agent.discover(&Node::entity(&w.maria), &Node::role(w.a.role("r")), &[]);
        assert_eq!(outcome.mode, SearchMode::LocalOnly);
        assert!(!outcome.found());
        assert_eq!(w.net.stats().total_messages, 0);
    }

    #[test]
    fn unreachable_target_exhausts_frontier() {
        let w = world();
        let local = host(&w, "local");
        let wallet_a = host(&w, "wallet.a");
        let r1 = w.a.role("r1");
        wallet_a
            .wallet()
            .publish(
                w.a.delegate(Node::entity(&w.maria), Node::role(r1.clone()))
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        let mut dir = Directory::new();
        dir.register(Node::entity(&w.maria), search_tag("wallet.a"));
        dir.register(Node::role(r1), search_tag("wallet.a"));
        let mut agent = DiscoveryAgent::new(w.net.clone(), local, dir);
        let outcome = agent.discover(
            &Node::entity(&w.maria),
            &Node::role(w.a.role("unrelated")),
            &[],
        );
        assert!(!outcome.found());
        assert!(!outcome.wallets_contacted.is_empty());
    }

    #[test]
    fn revoked_support_is_rediscovered_via_acting_as_hints() {
        // §4.2.1: "it may become necessary at some point to discover new
        // supporting delegations" — a third-party delegation's support is
        // revoked, the issuer regains authority through a fresh grant at
        // the owner's home wallet, and discovery repairs the support
        // using the delegation's acting-as hint.
        let w = world();
        let local = host(&w, "local");
        let wallet_a = host(&w, "wallet.a");
        let owner = &w.a; // controls the role namespace
        let broker = &w.b; // third-party issuer
        let admins = owner.role("admins");
        let role = owner.role("r");

        // Original authority chain.
        let grant_v1 = owner
            .delegate(Node::entity(broker), Node::role(admins.clone()))
            .sign(owner)
            .unwrap();
        let admin_right = owner
            .delegate(Node::role(admins.clone()), Node::role_admin(role.clone()))
            .sign(owner)
            .unwrap();
        let support = Proof::from_steps(vec![
            drbac_core::ProofStep::new(grant_v1.clone()),
            drbac_core::ProofStep::new(admin_right.clone()),
        ])
        .unwrap();

        // The third-party enrollment, with its acting-as hint, lives in
        // the local wallet together with the (soon stale) support.
        let enrollment = broker
            .delegate(Node::entity(&w.maria), Node::role(role.clone()))
            .acting_as(Node::role(admins.clone()))
            .sign(broker)
            .unwrap();
        local.wallet().publish(enrollment, vec![support]).unwrap();

        // The owner's home wallet keeps the authority material.
        wallet_a
            .wallet()
            .publish(admin_right.clone(), vec![])
            .unwrap();

        // Sanity: access works.
        let mut dir = Directory::new();
        dir.register_entity(owner.id(), search_tag("wallet.a"));
        dir.register_entity(broker.id(), search_tag("wallet.a"));
        let mut agent = DiscoveryAgent::new(w.net.clone(), local.clone(), dir.clone());
        assert!(agent
            .discover(&Node::entity(&w.maria), &Node::role(role.clone()), &[])
            .found());

        // The owner revokes the broker's admin grant; the local wallet
        // learns of it.
        let revocation =
            drbac_core::SignedRevocation::revoke(&grant_v1, owner, w.clock.now()).unwrap();
        local.wallet().publish(grant_v1.clone(), vec![]).unwrap();
        local.wallet().revoke(&revocation).unwrap();
        assert!(
            local
                .wallet()
                .query_direct(&Node::entity(&w.maria), &Node::role(role.clone()), &[])
                .is_none(),
            "revoked support must invalidate the local answer"
        );
        assert_eq!(local.wallet().unsupported_third_party().len(), 1);

        // Without fresh authority anywhere, repair fails...
        let mut agent = DiscoveryAgent::new(w.net.clone(), local.clone(), dir.clone());
        assert!(!agent
            .discover(&Node::entity(&w.maria), &Node::role(role.clone()), &[])
            .found());

        // ...the owner re-grants at its home wallet, and discovery heals.
        let grant_v2 = owner
            .delegate(Node::entity(broker), Node::role(admins))
            .serial(2)
            .sign(owner)
            .unwrap();
        wallet_a.wallet().publish(grant_v2, vec![]).unwrap();

        let mut agent = DiscoveryAgent::new(w.net.clone(), local.clone(), dir);
        let outcome = agent.discover(&Node::entity(&w.maria), &Node::role(role), &[]);
        assert!(outcome.found(), "support repaired: {:?}", outcome.trace);
        assert!(local.wallet().unsupported_third_party().is_empty());
    }

    #[test]
    fn expired_tag_is_not_followed_and_degrades_the_run() {
        // Chain: Maria => r1 (local), r1 => r2 (wallet.a), r2 => r3
        // (wallet.b). r2's home is advertised only by a TTL'd object tag
        // on the r1 => r2 credential. Each RPC costs one tick per
        // direction, so by the time the frontier reaches r2 the tag has
        // lapsed — it must NOT be followed (no contact with wallet.b) and
        // the run must be marked degraded.
        let w = world();
        let local = host(&w, "local");
        let wallet_a = host(&w, "wallet.a");
        let wallet_b = host(&w, "wallet.b");

        let r1 = w.a.role("r1");
        let r2 = w.a.role("r2");
        let r3 = w.a.role("r3");
        local
            .wallet()
            .publish(
                w.a.delegate(Node::entity(&w.maria), Node::role(r1.clone()))
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        let stale_tag = DiscoveryTag::new("wallet.b")
            .with_subject_flag(SubjectFlag::Search)
            .with_ttl(Ticks(1));
        wallet_a
            .wallet()
            .publish(
                w.a.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                    .object_tag(stale_tag)
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        wallet_b
            .wallet()
            .publish(
                w.a.delegate(Node::role(r2.clone()), Node::role(r3.clone()))
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();

        let mut dir = Directory::new();
        dir.register(Node::role(r1.clone()), search_tag("wallet.a"));
        let mut agent = DiscoveryAgent::new(w.net.clone(), local.clone(), dir);
        let outcome = agent.discover(&Node::entity(&w.maria), &Node::role(r3.clone()), &[]);
        assert!(!outcome.found(), "trace: {:?}", outcome.trace);
        assert!(
            outcome.degraded,
            "an expired tag must mark the run degraded"
        );
        assert!(
            !outcome
                .wallets_contacted
                .contains(&WalletAddr::new("wallet.b")),
            "the stale home hint must not be followed"
        );

        // Control run: the same topology with a generous TTL completes.
        // (A separate intermediate host so the stale-tag credential from
        // the first run can't shadow the fresh tag.)
        let local2 = host(&w, "local2");
        let wallet_a2 = host(&w, "wallet.a2");
        local2
            .wallet()
            .publish(
                w.a.delegate(Node::entity(&w.maria), Node::role(r1.clone()))
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        let fresh_tag = DiscoveryTag::new("wallet.b")
            .with_subject_flag(SubjectFlag::Search)
            .with_ttl(Ticks(1000));
        wallet_a2
            .wallet()
            .publish(
                w.a.delegate(Node::role(r1.clone()), Node::role(r2.clone()))
                    .serial(2)
                    .object_tag(fresh_tag)
                    .sign(&w.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        let mut dir = Directory::new();
        dir.register(Node::role(r1), search_tag("wallet.a2"));
        let mut agent = DiscoveryAgent::new(w.net.clone(), local2, dir);
        let outcome = agent.discover(&Node::entity(&w.maria), &Node::role(r3), &[]);
        assert!(outcome.found(), "trace: {:?}", outcome.trace);
        assert!(!outcome.degraded);
        assert!(outcome
            .wallets_contacted
            .contains(&WalletAddr::new("wallet.b")));
    }

    #[test]
    fn directory_lookup_distinguishes_fresh_expired_unknown() {
        let w = world();
        let r1 = w.a.role("r1");
        let cert =
            w.a.delegate(Node::entity(&w.maria), Node::role(r1.clone()))
                .object_tag(search_tag("a.home").with_ttl(Ticks(5)))
                .sign(&w.a)
                .unwrap();
        let proof = Proof::from_steps(vec![drbac_core::ProofStep::new(cert)]).unwrap();
        let mut dir = Directory::new();
        dir.learn_from_proof_at(&proof, drbac_core::Timestamp(10));
        let node = Node::role(r1);
        assert!(matches!(
            dir.lookup(&node, drbac_core::Timestamp(15)),
            TagLookup::Fresh(_)
        ));
        assert!(matches!(
            dir.lookup(&node, drbac_core::Timestamp(16)),
            TagLookup::Expired(_)
        ));
        assert!(matches!(
            dir.lookup(&Node::role(w.b.role("x")), drbac_core::Timestamp(0)),
            TagLookup::Unknown
        ));
        // Out-of-band registrations never lapse.
        let reg = Node::role(w.a.role("reg"));
        dir.register(reg.clone(), search_tag("somewhere"));
        assert!(matches!(
            dir.lookup(&reg, drbac_core::Timestamp(1_000_000)),
            TagLookup::Fresh(_)
        ));
        // tag_of keeps answering regardless of expiry (diagnostics).
        assert!(dir.tag_of(&node).is_some());
    }

    #[test]
    fn directory_learns_tags_from_proofs() {
        let w = world();
        let r1 = w.a.role("r1");
        let cert =
            w.a.delegate(Node::entity(&w.maria), Node::role(r1.clone()))
                .subject_tag(search_tag("maria.home"))
                .object_tag(search_tag("a.home"))
                .issuer_tag(search_tag("a.home"))
                .sign(&w.a)
                .unwrap();
        let proof = Proof::from_steps(vec![drbac_core::ProofStep::new(cert)]).unwrap();
        let mut dir = Directory::new();
        assert!(dir.is_empty());
        dir.learn_from_proof(&proof);
        assert_eq!(
            dir.tag_of(&Node::entity(&w.maria)).unwrap().home().as_str(),
            "maria.home"
        );
        assert_eq!(
            dir.tag_of(&Node::role(r1)).unwrap().home().as_str(),
            "a.home"
        );
        // Entity fallback: an unregistered role in A's namespace resolves
        // via the issuer tag.
        assert_eq!(
            dir.tag_of(&Node::role(w.a.role("other")))
                .unwrap()
                .home()
                .as_str(),
            "a.home"
        );
        assert_eq!(dir.len(), 3);
    }
}
