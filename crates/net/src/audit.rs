//! Public-registry auditing (paper §6).
//!
//! The paper proposes that "a scheme which leverages 'S' and 'O'
//! discovery tags to *require* public registry of further delegation may
//! provide an alternative mechanism to audit and restrict re-delegation":
//! because `s`/`S` (`o`/`O`) tags **require** every delegation with that
//! subject (object) to be stored in its home wallet, an auditor can
//! enumerate the home wallet to see *all* re-delegations — and anything
//! found elsewhere but missing from the registry is a compliance
//! violation.
//!
//! [`audit_store_compliance`] sweeps every host in a [`SimNet`] and
//! reports delegations that their own discovery tags say should be
//! registered at a home wallet but are not. [`redelegations_of`] is the
//! audit query itself: everything the registry knows about a role's
//! onward delegation.

use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::sync::Arc;

use drbac_core::{DiscoveryTag, Node, ObjectFlag, SignedDelegation, SubjectFlag, WalletAddr};

use crate::sim::SimNet;

/// One compliance violation: a delegation whose tag requires registry at
/// `home`, observed at `observed_at`, but absent from `home`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreViolation {
    /// The delegation (rendered) that escaped the registry.
    pub delegation: String,
    /// Where the auditor saw it.
    pub observed_at: WalletAddr,
    /// The home wallet that should hold it.
    pub home: WalletAddr,
    /// Which endpoint's tag imposed the requirement.
    pub endpoint: AuditEndpoint,
}

/// Which endpoint's flag triggered the requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditEndpoint {
    /// The subject's `s`/`S` flag.
    Subject,
    /// The object's `o`/`O` flag.
    Object,
}

impl fmt::Display for StoreViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let endpoint = match self.endpoint {
            AuditEndpoint::Subject => "subject",
            AuditEndpoint::Object => "object",
        };
        write!(
            f,
            "{} (seen at {}) must be registered at {} per its {endpoint} tag",
            self.delegation, self.observed_at, self.home
        )
    }
}

fn requires_subject_registry(tag: &DiscoveryTag) -> bool {
    !matches!(tag.subject_flag(), SubjectFlag::None)
}

fn requires_object_registry(tag: &DiscoveryTag) -> bool {
    !matches!(tag.object_flag(), ObjectFlag::None)
}

/// Sweeps every host on the network and reports store-flag violations.
///
/// `hosts` names the wallets to sweep (the auditor's view of the world).
/// Each `(delegation, endpoint)` pair is reported at most once, at the
/// first host (in sweep order) where the auditor observed it — a
/// credential cached at many wallets is still one covert re-delegation.
pub fn audit_store_compliance(net: &SimNet, hosts: &[WalletAddr]) -> Vec<StoreViolation> {
    let mut violations = Vec::new();
    let mut seen: HashSet<(drbac_core::DelegationId, AuditEndpoint)> = HashSet::new();
    for addr in hosts {
        let Some(host) = net.host(addr) else { continue };
        let certs: Vec<Arc<SignedDelegation>> =
            host.wallet().with_graph(|g| g.iter().cloned().collect());
        for cert in certs {
            let d = cert.delegation();
            if let Some(tag) = d.subject_tag() {
                if requires_subject_registry(tag) && seen.insert((cert.id(), AuditEndpoint::Subject))
                {
                    let home = tag.home().clone();
                    if !wallet_holds(net, &home, &cert) {
                        violations.push(StoreViolation {
                            delegation: d.to_string(),
                            observed_at: addr.clone(),
                            home,
                            endpoint: AuditEndpoint::Subject,
                        });
                    }
                }
            }
            if let Some(tag) = d.object_tag() {
                if requires_object_registry(tag) && seen.insert((cert.id(), AuditEndpoint::Object)) {
                    let home = tag.home().clone();
                    if !wallet_holds(net, &home, &cert) {
                        violations.push(StoreViolation {
                            delegation: d.to_string(),
                            observed_at: addr.clone(),
                            home,
                            endpoint: AuditEndpoint::Object,
                        });
                    }
                }
            }
        }
    }
    drbac_obs::static_counter!("drbac.net.audit.sweep.count").inc();
    drbac_obs::static_counter!("drbac.net.audit.violation.count").add(violations.len() as u64);
    violations
}

fn wallet_holds(net: &SimNet, home: &WalletAddr, cert: &SignedDelegation) -> bool {
    net.host(home)
        .map(|h| h.wallet().contains(cert.id()))
        .unwrap_or(false)
}

/// The audit query the registry enables: every delegation registered at
/// `registry` whose *subject* is `node` — i.e. all onward (re-)delegation
/// of that role that the `S` flag forced into the open.
pub fn redelegations_of(net: &SimNet, registry: &WalletAddr, node: &Node) -> Vec<String> {
    let Some(host) = net.host(registry) else {
        return Vec::new();
    };
    let now = host.wallet().now();
    let mut out: BTreeSet<String> = BTreeSet::new();
    host.wallet().with_graph(|g| {
        for cert in g.outgoing(node, now) {
            out.insert(cert.delegation().to_string());
        }
    });
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{LocalEntity, SimClock, Ticks};
    use drbac_crypto::SchnorrGroup;
    use drbac_wallet::Wallet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fx {
        net: SimNet,
        a: LocalEntity,
        m: LocalEntity,
    }

    fn fx() -> Fx {
        let mut rng = StdRng::seed_from_u64(0xa1d17);
        let g = SchnorrGroup::test_256();
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), Ticks(1));
        for addr in ["home", "elsewhere"] {
            net.add_host(addr, Wallet::new(addr, clock.clone()));
        }
        Fx {
            net,
            a: LocalEntity::generate("A", g.clone(), &mut rng),
            m: LocalEntity::generate("M", g, &mut rng),
        }
    }

    fn store_tag(home: &str) -> DiscoveryTag {
        DiscoveryTag::new(home).with_subject_flag(SubjectFlag::Store)
    }

    #[test]
    fn compliant_network_has_no_violations() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .subject_tag(store_tag("home"))
                .sign(&f.a)
                .unwrap();
        f.net
            .host(&"home".into())
            .unwrap()
            .wallet()
            .publish(cert, vec![])
            .unwrap();
        let violations = audit_store_compliance(&f.net, &["home".into(), "elsewhere".into()]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn unregistered_delegation_is_flagged() {
        let f = fx();
        // The tag says "store at home", but the credential only lives at
        // "elsewhere" — a covert re-delegation.
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .subject_tag(store_tag("home"))
                .sign(&f.a)
                .unwrap();
        f.net
            .host(&"elsewhere".into())
            .unwrap()
            .wallet()
            .publish(cert, vec![])
            .unwrap();
        let violations = audit_store_compliance(&f.net, &["home".into(), "elsewhere".into()]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].endpoint, AuditEndpoint::Subject);
        assert_eq!(violations[0].home.as_str(), "home");
        assert!(violations[0].to_string().contains("must be registered"));
    }

    #[test]
    fn object_flags_audited_too() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .object_tag(DiscoveryTag::new("home").with_object_flag(ObjectFlag::Search))
                .sign(&f.a)
                .unwrap();
        f.net
            .host(&"elsewhere".into())
            .unwrap()
            .wallet()
            .publish(cert, vec![])
            .unwrap();
        let violations = audit_store_compliance(&f.net, &["elsewhere".into()]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].endpoint, AuditEndpoint::Object);
    }

    #[test]
    fn violation_reported_once_per_delegation_endpoint_pair() {
        // Regression: the same escaped credential cached at several
        // non-home wallets is ONE violation per triggering endpoint, not
        // one per host it was seen at.
        let f = fx();
        f.net.add_host(
            "elsewhere2",
            Wallet::new("elsewhere2", f.net.clock().clone()),
        );
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .subject_tag(store_tag("home"))
                .object_tag(DiscoveryTag::new("home").with_object_flag(ObjectFlag::Search))
                .sign(&f.a)
                .unwrap();
        for addr in ["elsewhere", "elsewhere2"] {
            f.net
                .host(&addr.into())
                .unwrap()
                .wallet()
                .publish(cert.clone(), vec![])
                .unwrap();
        }
        let hosts: Vec<WalletAddr> =
            vec!["home".into(), "elsewhere".into(), "elsewhere2".into()];
        let violations = audit_store_compliance(&f.net, &hosts);
        // Both endpoints' tags fire, each exactly once, attributed to the
        // first host in sweep order that revealed the credential.
        assert_eq!(violations.len(), 2, "{violations:?}");
        let endpoints: Vec<AuditEndpoint> = violations.iter().map(|v| v.endpoint).collect();
        assert!(endpoints.contains(&AuditEndpoint::Subject));
        assert!(endpoints.contains(&AuditEndpoint::Object));
        for v in &violations {
            assert_eq!(v.observed_at.as_str(), "elsewhere");
        }
        // Sweeping twice is idempotent — same set again, no accumulation.
        assert_eq!(audit_store_compliance(&f.net, &hosts), violations);
    }

    #[test]
    fn violation_display_is_stable() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .subject_tag(store_tag("home"))
                .sign(&f.a)
                .unwrap();
        f.net
            .host(&"elsewhere".into())
            .unwrap()
            .wallet()
            .publish(cert.clone(), vec![])
            .unwrap();
        let violations = audit_store_compliance(&f.net, &["elsewhere".into()]);
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].to_string(),
            format!(
                "{} (seen at elsewhere) must be registered at home per its subject tag",
                cert.delegation()
            )
        );
    }

    #[test]
    fn untagged_delegations_are_unconstrained() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        f.net
            .host(&"elsewhere".into())
            .unwrap()
            .wallet()
            .publish(cert, vec![])
            .unwrap();
        assert!(audit_store_compliance(&f.net, &["elsewhere".into()]).is_empty());
    }

    #[test]
    fn registry_enumerates_redelegations() {
        let f = fx();
        let role = Node::role(f.a.role("shared"));
        let home = f.net.host(&"home".into()).unwrap();
        for i in 0..3 {
            home.wallet()
                .publish(
                    f.a.delegate(role.clone(), Node::role(f.a.role(&format!("onward{i}"))))
                        .subject_tag(store_tag("home"))
                        .sign(&f.a)
                        .unwrap(),
                    vec![],
                )
                .unwrap();
        }
        let listed = redelegations_of(&f.net, &"home".into(), &role);
        assert_eq!(listed.len(), 3, "{listed:?}");
        assert!(redelegations_of(&f.net, &"nowhere".into(), &role).is_empty());
    }
}
