//! Credentialed secure communication channels, modelled after the
//! Switchboard abstraction the dRBAC prototype builds on (paper §4.3,
//! reference [8]).
//!
//! A [`Channel`] is established by a mutual challenge–response handshake
//! with real Schnorr signatures, keyed by a Diffie–Hellman shared secret,
//! and optionally *gated on a dRBAC role*: the initiating entity must
//! prove the required role against the responder's wallet, and the
//! channel stays open only while that proof's monitor remains valid —
//! exactly the "continuous monitoring of trust relationships over
//! long-lived interactions" the paper motivates.

use std::fmt;

use drbac_core::{EntityId, LocalEntity, Node, Role, Timestamp, WalletAddr};
use drbac_crypto::{sha256, PublicKey};
use drbac_wallet::{ProofMonitor, Wallet};
use rand::Rng;

use crate::proto::{Reply, Request};
use crate::transport::{RetryPolicy, Transport};

/// Errors establishing or using a channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// Handshake signature verification failed or keys are incompatible.
    AuthenticationFailed,
    /// The initiator could not prove the required role.
    RoleNotProven(String),
    /// The channel's authorizing proof was invalidated.
    Closed,
    /// A sealed message failed its integrity check (tampered or
    /// truncated).
    IntegrityFailure,
    /// The responder's wallet stayed unreachable after the retry budget,
    /// so the role gate could not be evaluated either way.
    Unreachable(String),
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::AuthenticationFailed => f.write_str("handshake authentication failed"),
            ChannelError::RoleNotProven(r) => write!(f, "initiator lacks required role {r}"),
            ChannelError::Closed => f.write_str("channel closed (authorizing proof invalidated)"),
            ChannelError::IntegrityFailure => f.write_str("sealed message failed integrity check"),
            ChannelError::Unreachable(e) => write!(f, "responder wallet unreachable: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Establishes channels between entities.
#[derive(Debug, Clone, Copy, Default)]
pub struct Switchboard;

impl Switchboard {
    /// Creates a switchboard.
    pub fn new() -> Self {
        Switchboard
    }

    /// Mutual-authentication handshake between two local endpoints.
    ///
    /// Each side signs `H(tag ‖ nonce_a ‖ nonce_b ‖ fp_a ‖ fp_b)` and
    /// verifies the peer's signature; the channel key is the DH shared
    /// secret mixed with both nonces.
    ///
    /// # Errors
    ///
    /// [`ChannelError::AuthenticationFailed`] on signature or group
    /// mismatch.
    pub fn connect<R: Rng + ?Sized>(
        &self,
        initiator: &LocalEntity,
        responder: &LocalEntity,
        now: Timestamp,
        rng: &mut R,
    ) -> Result<Channel, ChannelError> {
        let _span = drbac_obs::span!("drbac.net.switchboard.connect");
        let _timer =
            drbac_obs::static_histogram!("drbac.net.switchboard.connect.ns").start_timer();
        drbac_obs::static_counter!("drbac.net.switchboard.connect.count").inc();
        let nonce_a: [u8; 32] = rng.gen();
        let nonce_b: [u8; 32] = rng.gen();
        let transcript = handshake_transcript(
            &nonce_a,
            &nonce_b,
            initiator.public_key(),
            responder.public_key(),
        );

        // Each side signs the transcript; each verifies the other.
        let sig_a = initiator.sign_bytes(&transcript);
        let sig_b = responder.sign_bytes(&transcript);
        if !initiator.public_key().verify(&transcript, &sig_a)
            || !responder.public_key().verify(&transcript, &sig_b)
        {
            return Err(ChannelError::AuthenticationFailed);
        }

        let dh = initiator
            .shared_secret(responder.public_key())
            .ok_or(ChannelError::AuthenticationFailed)?;
        // Both sides can derive the same key; check agreement explicitly
        // (this is where a real deployment would detect a group mismatch).
        let dh_b = responder
            .shared_secret(initiator.public_key())
            .ok_or(ChannelError::AuthenticationFailed)?;
        if dh != dh_b {
            return Err(ChannelError::AuthenticationFailed);
        }

        let mut key_material = Vec::with_capacity(96);
        key_material.extend_from_slice(&dh);
        key_material.extend_from_slice(&nonce_a);
        key_material.extend_from_slice(&nonce_b);
        let key = sha256(&key_material);

        Ok(Channel {
            initiator: initiator.id(),
            responder: responder.id(),
            established_at: now,
            key,
            monitor: None,
        })
    }

    /// As [`Switchboard::connect`], additionally requiring the initiator
    /// to hold `required_role` according to `responder_wallet`. The
    /// returned channel carries the proof monitor and reports
    /// [`Channel::is_open`] `false` the moment the proof is invalidated.
    ///
    /// # Errors
    ///
    /// [`ChannelError::RoleNotProven`] when no valid proof exists;
    /// otherwise as [`Switchboard::connect`].
    pub fn connect_role_gated<R: Rng + ?Sized>(
        &self,
        initiator: &LocalEntity,
        responder: &LocalEntity,
        responder_wallet: &Wallet,
        required_role: Role,
        now: Timestamp,
        rng: &mut R,
    ) -> Result<Channel, ChannelError> {
        let _span = drbac_obs::span!(
            "drbac.net.switchboard.connect_role_gated",
            "role" => required_role.to_string(),
        );
        let monitor = responder_wallet
            .query_direct(
                &Node::entity(initiator),
                &Node::role(required_role.clone()),
                &[],
            )
            .ok_or_else(|| {
                drbac_obs::static_counter!("drbac.net.switchboard.role_rejected.count").inc();
                ChannelError::RoleNotProven(required_role.to_string())
            })?;
        let mut channel = self.connect(initiator, responder, now, rng)?;
        channel.monitor = Some(monitor);
        Ok(channel)
    }

    /// As [`Switchboard::connect_role_gated`], but with the responder's
    /// wallet reached over a [`Transport`] rather than in-process: the
    /// role lookup is retried under `retry`, the returned proof is
    /// re-validated by the local `verifier` wallet (never trusted on the
    /// remote's word), and a coherence subscription is registered at the
    /// responder wallet so a later revocation push closes the channel.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Unreachable`] when the responder wallet cannot be
    /// reached within the retry budget — distinct from
    /// [`ChannelError::RoleNotProven`], which is an authoritative "no";
    /// otherwise as [`Switchboard::connect_role_gated`].
    #[allow(clippy::too_many_arguments)]
    pub fn connect_role_gated_remote<R: Rng + ?Sized>(
        &self,
        initiator: &LocalEntity,
        responder: &LocalEntity,
        transport: &dyn Transport,
        responder_wallet: &WalletAddr,
        verifier: &Wallet,
        required_role: Role,
        retry: &RetryPolicy,
        now: Timestamp,
        rng: &mut R,
    ) -> Result<Channel, ChannelError> {
        let _span = drbac_obs::span!(
            "drbac.net.switchboard.connect_role_gated_remote",
            "role" => required_role.to_string(),
            "wallet" => responder_wallet.to_string(),
        );
        let outcome = retry.run(
            transport,
            responder_wallet,
            &Request::DirectQuery {
                subject: Node::entity(initiator),
                object: Node::role(required_role.clone()),
                constraints: vec![],
            },
        );
        let proofs = match outcome.reply {
            Ok(Reply::Proofs(proofs)) => proofs,
            Ok(other) => return Err(ChannelError::Unreachable(format!("bad reply {other:?}"))),
            Err(e) => return Err(ChannelError::Unreachable(e.to_string())),
        };
        let not_proven = || {
            drbac_obs::static_counter!("drbac.net.switchboard.role_rejected.count").inc();
            ChannelError::RoleNotProven(required_role.to_string())
        };
        // Re-validate locally, never on the remote's word: a usable proof
        // must bind *this* initiator to *this* role and its chain must
        // validate against the verifier's own revocation knowledge. Any
        // returned proof that passes both opens the gate; a remote wallet
        // returning unrelated (even individually valid) proofs does not.
        let expected_subject = Node::entity(initiator);
        let expected_object = Node::role(required_role.clone());
        let mut accepted = None;
        for candidate in proofs {
            if candidate.subject() != &expected_subject || candidate.object() != &expected_object {
                continue;
            }
            if let Ok(monitor) = verifier.monitor_external_proof(candidate.clone()) {
                accepted = Some((candidate, monitor));
                break;
            }
        }
        let (proof, monitor) = accepted.ok_or_else(not_proven)?;
        // Keep the gate live: subscribe at the responder wallet so its
        // revocation pushes reach the verifier and close the channel.
        for id in proof.delegation_ids() {
            let _ = retry.run(
                transport,
                responder_wallet,
                &Request::Subscribe {
                    delegation: id,
                    subscriber: verifier.addr().clone(),
                },
            );
        }
        let mut channel = self.connect(initiator, responder, now, rng)?;
        channel.monitor = Some(monitor);
        Ok(channel)
    }
}

/// An established channel: authenticated endpoints, a shared key, and an
/// optional authorizing proof monitor.
pub struct Channel {
    initiator: EntityId,
    responder: EntityId,
    established_at: Timestamp,
    key: [u8; 32],
    monitor: Option<ProofMonitor>,
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("initiator", &self.initiator)
            .field("responder", &self.responder)
            .field("established_at", &self.established_at)
            .field("open", &self.is_open())
            .finish()
    }
}

impl Channel {
    /// The initiating entity.
    pub fn initiator(&self) -> EntityId {
        self.initiator
    }

    /// The responding entity.
    pub fn responder(&self) -> EntityId {
        self.responder
    }

    /// When the channel was established.
    pub fn established_at(&self) -> Timestamp {
        self.established_at
    }

    /// The authorizing proof monitor, for role-gated channels.
    pub fn monitor(&self) -> Option<&ProofMonitor> {
        self.monitor.as_ref()
    }

    /// `true` while the channel may be used. Role-gated channels close
    /// automatically when their authorizing proof is invalidated.
    pub fn is_open(&self) -> bool {
        self.monitor.as_ref().is_none_or(|m| m.is_valid())
    }

    /// Encrypt-then-MAC: XORs `plaintext` with a `SHA-256(key_enc ‖
    /// counter)` keystream (an illustrative cipher standing in for an
    /// AEAD; see DESIGN.md) and appends an HMAC-SHA-256 tag over the
    /// ciphertext under an independently derived MAC key.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Closed`] if the channel is no longer open.
    pub fn seal(&self, plaintext: &[u8]) -> Result<Vec<u8>, ChannelError> {
        if !self.is_open() {
            return Err(ChannelError::Closed);
        }
        let mut out = self.xor_keystream(plaintext);
        let tag = drbac_crypto::hmac_sha256(&self.mac_key(), &out);
        out.extend_from_slice(&tag);
        Ok(out)
    }

    /// Verifies and decrypts a [`Channel::seal`]ed message.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Closed`] if the channel is no longer open;
    /// [`ChannelError::IntegrityFailure`] if the tag does not verify.
    pub fn open(&self, sealed: &[u8]) -> Result<Vec<u8>, ChannelError> {
        if !self.is_open() {
            return Err(ChannelError::Closed);
        }
        if sealed.len() < 32 {
            return Err(ChannelError::IntegrityFailure);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - 32);
        if !drbac_crypto::verify_hmac_sha256(&self.mac_key(), ciphertext, tag) {
            return Err(ChannelError::IntegrityFailure);
        }
        Ok(self.xor_keystream(ciphertext))
    }

    fn enc_key(&self) -> [u8; 32] {
        let mut material = self.key.to_vec();
        material.extend_from_slice(b"enc");
        sha256(&material)
    }

    fn mac_key(&self) -> [u8; 32] {
        let mut material = self.key.to_vec();
        material.extend_from_slice(b"mac");
        sha256(&material)
    }

    fn xor_keystream(&self, data: &[u8]) -> Vec<u8> {
        let key = self.enc_key();
        let mut out = Vec::with_capacity(data.len());
        let mut counter: u64 = 0;
        let mut block = [0u8; 32];
        for (i, byte) in data.iter().enumerate() {
            if i % 32 == 0 {
                let mut material = Vec::with_capacity(40);
                material.extend_from_slice(&key);
                material.extend_from_slice(&counter.to_be_bytes());
                block = sha256(&material);
                counter += 1;
            }
            out.push(byte ^ block[i % 32]);
        }
        out
    }
}

fn handshake_transcript(
    nonce_a: &[u8; 32],
    nonce_b: &[u8; 32],
    pk_a: &PublicKey,
    pk_b: &PublicKey,
) -> Vec<u8> {
    let mut t = Vec::new();
    t.extend_from_slice(b"drbac-switchboard-v1");
    t.extend_from_slice(nonce_a);
    t.extend_from_slice(nonce_b);
    t.extend_from_slice(pk_a.fingerprint().as_bytes());
    t.extend_from_slice(pk_b.fingerprint().as_bytes());
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{SignedRevocation, SimClock};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entities() -> (LocalEntity, LocalEntity, StdRng) {
        let mut rng = StdRng::seed_from_u64(101);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let b = LocalEntity::generate("B", g, &mut rng);
        (a, b, rng)
    }

    #[test]
    fn handshake_establishes_working_channel() {
        let (a, b, mut rng) = entities();
        let channel = Switchboard::new()
            .connect(&a, &b, Timestamp(0), &mut rng)
            .unwrap();
        assert!(channel.is_open());
        assert_eq!(channel.initiator(), a.id());
        assert_eq!(channel.responder(), b.id());
        let msg = b"continuous data feed payload";
        let sealed = channel.seal(msg).unwrap();
        assert_ne!(&sealed, msg);
        assert_eq!(channel.open(&sealed).unwrap(), msg);
    }

    #[test]
    fn keystream_varies_across_blocks() {
        let (a, b, mut rng) = entities();
        let channel = Switchboard::new()
            .connect(&a, &b, Timestamp(0), &mut rng)
            .unwrap();
        let zeros = vec![0u8; 100];
        let sealed = channel.seal(&zeros).unwrap();
        assert_ne!(&sealed[..32], &sealed[32..64], "blocks must differ");
    }

    #[test]
    fn tampered_or_truncated_messages_rejected() {
        let (a, b, mut rng) = entities();
        let channel = Switchboard::new()
            .connect(&a, &b, Timestamp(0), &mut rng)
            .unwrap();
        let sealed = channel.seal(b"market data").unwrap();
        assert_eq!(sealed.len(), 11 + 32, "ciphertext plus 32-byte tag");

        // Flip a ciphertext bit.
        let mut tampered = sealed.clone();
        tampered[0] ^= 1;
        assert_eq!(
            channel.open(&tampered).unwrap_err(),
            ChannelError::IntegrityFailure
        );
        // Flip a tag bit.
        let mut tampered = sealed.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 1;
        assert_eq!(
            channel.open(&tampered).unwrap_err(),
            ChannelError::IntegrityFailure
        );
        // Truncate below tag size.
        assert_eq!(
            channel.open(&sealed[..16]).unwrap_err(),
            ChannelError::IntegrityFailure
        );
        // Untampered still opens.
        assert_eq!(channel.open(&sealed).unwrap(), b"market data");
    }

    #[test]
    fn messages_from_another_channel_rejected() {
        let (a, b, mut rng) = entities();
        let c = LocalEntity::generate("C", SchnorrGroup::test_256(), &mut rng);
        let ab = Switchboard::new()
            .connect(&a, &b, Timestamp(0), &mut rng)
            .unwrap();
        let ac = Switchboard::new()
            .connect(&a, &c, Timestamp(0), &mut rng)
            .unwrap();
        let sealed = ab.seal(b"for b only").unwrap();
        assert_eq!(
            ac.open(&sealed).unwrap_err(),
            ChannelError::IntegrityFailure
        );
    }

    #[test]
    fn cross_group_handshake_fails() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = LocalEntity::generate("A", SchnorrGroup::test_256(), &mut rng);
        let b = LocalEntity::from_keypair(
            "B",
            drbac_crypto::KeyPair::from_secret_exponent(
                SchnorrGroup::modp_2048(),
                drbac_bignum_shim(),
            ),
        );
        let err = Switchboard::new().connect(&a, &b, Timestamp(0), &mut rng);
        assert_eq!(err.unwrap_err(), ChannelError::AuthenticationFailed);
    }

    fn drbac_bignum_shim() -> drbac_bignum::BigUint {
        drbac_bignum::BigUint::from(12345u64)
    }

    #[test]
    fn role_gated_channel_closes_on_revocation() {
        let (a, b, mut rng) = entities();
        let clock = SimClock::new();
        let wallet = Wallet::new("resp.wallet", clock.clone());
        let role = b.role("feed-subscriber");
        let cert = b
            .delegate(Node::entity(&a), Node::role(role.clone()))
            .sign(&b)
            .unwrap();
        wallet.publish(cert.clone(), vec![]).unwrap();

        let channel = Switchboard::new()
            .connect_role_gated(&a, &b, &wallet, role.clone(), clock.now(), &mut rng)
            .unwrap();
        assert!(channel.is_open());
        assert!(channel.seal(b"x").is_ok());

        // Revocation at the wallet closes the channel via its monitor.
        let revocation = SignedRevocation::revoke(&cert, &b, clock.now()).unwrap();
        wallet.revoke(&revocation).unwrap();
        assert!(!channel.is_open());
        assert_eq!(channel.seal(b"x").unwrap_err(), ChannelError::Closed);
        assert_eq!(channel.open(b"x").unwrap_err(), ChannelError::Closed);
    }

    #[test]
    fn remote_role_gate_survives_loss_and_closes_on_revocation() {
        use crate::sim::{FaultPlan, SimNet};
        use crate::transport::RetryPolicy;
        use drbac_core::Ticks;

        let (a, b, mut rng) = entities();
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), Ticks(1));
        let resp = net.add_host("resp.wallet", Wallet::new("resp.wallet", clock.clone()));
        let verifier = net
            .add_host("init.wallet", Wallet::new("init.wallet", clock.clone()))
            .wallet()
            .clone();
        let role = b.role("feed-subscriber");
        let cert = b
            .delegate(Node::entity(&a), Node::role(role.clone()))
            .sign(&b)
            .unwrap();
        resp.wallet().publish(cert.clone(), vec![]).unwrap();

        // Lossy but not hopeless: the bounded retry rides it out
        // (seed 3 loses the first lookup attempt).
        net.set_fault_plan(Some(FaultPlan::seeded(3).with_request_loss(0.4)));
        let channel = Switchboard::new()
            .connect_role_gated_remote(
                &a,
                &b,
                &net,
                &"resp.wallet".into(),
                &verifier,
                role.clone(),
                &RetryPolicy::standard(),
                clock.now(),
                &mut rng,
            )
            .unwrap();
        assert!(channel.is_open());
        net.set_fault_plan(None);

        // Revocation at the responder wallet pushes to the verifier's
        // host and closes the channel through its monitor.
        let revocation = SignedRevocation::revoke(&cert, &b, clock.now()).unwrap();
        net.request(
            &"resp.wallet".into(),
            crate::proto::Request::Revoke(revocation),
        )
        .unwrap();
        net.run_until_idle();
        assert!(!channel.is_open(), "revocation push closed the channel");

        // An unreachable responder wallet is a distinct, retriable-later
        // error — not an authoritative role rejection.
        net.partition_host(&"resp.wallet".into());
        let err = Switchboard::new().connect_role_gated_remote(
            &a,
            &b,
            &net,
            &"resp.wallet".into(),
            &verifier,
            role,
            &RetryPolicy::standard(),
            clock.now(),
            &mut rng,
        );
        assert!(matches!(err, Err(ChannelError::Unreachable(_))));
    }

    /// A transport whose responder wallet answers every role lookup with
    /// a fixed set of proofs — stands in for a buggy or compromised
    /// remote wallet that returns whatever it likes.
    struct CannedProofs(Vec<drbac_core::Proof>);

    impl Transport for CannedProofs {
        fn request(&self, _to: &WalletAddr, req: Request) -> Result<Reply, crate::sim::NetError> {
            match req {
                Request::DirectQuery { .. } => Ok(Reply::Proofs(self.0.clone())),
                _ => Ok(Reply::Subscribed),
            }
        }
    }

    #[test]
    fn remote_role_gate_rejects_proofs_for_wrong_endpoints() {
        use drbac_core::{Proof, ProofStep};

        let (a, b, mut rng) = entities();
        let c = LocalEntity::generate("C", SchnorrGroup::test_256(), &mut rng);
        let clock = SimClock::new();
        let verifier = Wallet::new("init.wallet", clock.clone());
        let role = b.role("feed-subscriber");
        // Both proofs validate as chains, but neither binds *this*
        // initiator to *this* role: one proves C holds the role, the
        // other proves A holds a different role.
        let wrong_subject = b
            .delegate(Node::entity(&c), Node::role(role.clone()))
            .sign(&b)
            .unwrap();
        let wrong_object = b
            .delegate(Node::entity(&a), Node::role(b.role("other-role")))
            .sign(&b)
            .unwrap();
        let transport = CannedProofs(vec![
            Proof::from_steps(vec![ProofStep::new(wrong_subject)]).unwrap(),
            Proof::from_steps(vec![ProofStep::new(wrong_object)]).unwrap(),
        ]);
        let err = Switchboard::new().connect_role_gated_remote(
            &a,
            &b,
            &transport,
            &"resp.wallet".into(),
            &verifier,
            role,
            &RetryPolicy::none(),
            clock.now(),
            &mut rng,
        );
        assert!(matches!(err, Err(ChannelError::RoleNotProven(_))));
    }

    #[test]
    fn remote_role_gate_tries_later_proofs_when_first_fails_locally() {
        use drbac_core::{Proof, ProofStep};

        let (a, b, mut rng) = entities();
        let clock = SimClock::new();
        let verifier = Wallet::new("init.wallet", clock.clone());
        let role = b.role("feed-subscriber");
        let cert1 = b
            .delegate(Node::entity(&a), Node::role(role.clone()))
            .serial(1)
            .sign(&b)
            .unwrap();
        let cert2 = b
            .delegate(Node::entity(&a), Node::role(role.clone()))
            .serial(2)
            .sign(&b)
            .unwrap();
        // The verifier knows the first delegation is revoked; the
        // responder doesn't, and returns its stale proof first.
        verifier.publish(cert1.clone(), vec![]).unwrap();
        let revocation = SignedRevocation::revoke(&cert1, &b, clock.now()).unwrap();
        verifier.revoke(&revocation).unwrap();
        let stale = Proof::from_steps(vec![ProofStep::new(cert1)]).unwrap();
        let good = Proof::from_steps(vec![ProofStep::new(cert2)]).unwrap();
        let transport = CannedProofs(vec![stale, good]);
        let channel = Switchboard::new()
            .connect_role_gated_remote(
                &a,
                &b,
                &transport,
                &"resp.wallet".into(),
                &verifier,
                role,
                &RetryPolicy::none(),
                clock.now(),
                &mut rng,
            )
            .expect("the second, still-valid proof opens the gate");
        assert!(channel.is_open());
    }

    #[test]
    fn role_gate_rejects_unproven_initiator() {
        let (a, b, mut rng) = entities();
        let clock = SimClock::new();
        let wallet = Wallet::new("resp.wallet", clock);
        let role = b.role("feed-subscriber");
        let err =
            Switchboard::new().connect_role_gated(&a, &b, &wallet, role, Timestamp(0), &mut rng);
        assert!(matches!(err, Err(ChannelError::RoleNotProven(_))));
    }
}
