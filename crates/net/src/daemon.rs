//! TCP wallet daemon and the persistent subscriber connection.
//!
//! [`WalletDaemon`] is the socket-facing counterpart of the simulator's
//! [`WalletHost`](crate::WalletHost): it serves one wallet's
//! [`Request`]/[`Reply`](crate::proto::Reply) protocol over
//! [`wire`](crate::wire) frames. Since the multiplexing rewrite
//! (DESIGN.md §4.10, `docs/PROTOCOL.md`) the hot path is built for
//! heavy traffic instead of thread-per-connection request/reply:
//!
//! * **Bounded worker pool.** Pipelined (wire v3) requests are decoded
//!   and executed by a fixed pool of [`DaemonConfig::workers`] threads
//!   fed from one bounded job queue — connection count no longer
//!   dictates handler concurrency.
//! * **Per-connection read/write pumps.** Each accepted connection gets
//!   a reader thread (frames in) and a writer pump (frames out). All
//!   writes serialize through one `BufWriter` behind a mutex whose
//!   holder always flushes before releasing: workers write runs of
//!   pipelined replies directly (no handoff), while pushes, v1/v2
//!   replies, and overload notices drain through the pump — either
//!   way consecutive frames coalesce into few syscalls
//!   (`drbac.net.tcp.write.coalesced.count`).
//! * **Explicit backpressure.** A connection may have at most
//!   [`DaemonConfig::max_inflight`] pipelined requests outstanding and
//!   the daemon at most [`DaemonConfig::queue_capacity`] queued jobs;
//!   beyond either bound the daemon answers
//!   [`Reply::overloaded`](crate::proto::Reply::overloaded) immediately
//!   (`drbac.net.tcp.overload.count`) instead of queueing silently.
//!   Beyond [`DaemonConfig::max_connections`] concurrent connections,
//!   new accepts are closed on arrival
//!   (`drbac.net.tcp.conn.rejected.count`).
//! * **Version compatibility.** v1/v2 frames keep their strict
//!   request/reply semantics: they are served inline on the reader
//!   thread, in order, with byte-identical reply frames — an old peer
//!   cannot tell the daemons apart. Only v3 frames enter the
//!   multiplexed path. See `docs/PROTOCOL.md` §6 for the matrix.
//!
//! Delegation-subscription pushes (paper §4.2.2) travel over a
//! *persistent subscriber connection*: a client opens a dedicated
//! stream, sends a push-register frame naming its wallet address, and
//! the daemon writes [`OneWay::Invalidate`] frames down that stream's
//! writer pump whenever a delegation the client subscribed to is
//! invalidated — pushes and any replies on the same connection
//! serialize through the single pump, so they can never interleave
//! mid-frame.
//!
//! [`SubscriberLink`] is the client side of that connection. When the
//! daemon dies mid-subscription the link notices (read error),
//! reconnects with backoff, re-registers, and **resubscribes** every
//! cached credential from that home — mirroring the simulator's
//! `resubscribe_cached` recovery: the daemon's subscriber registry is
//! volatile, so a daemon restart silently unsubscribed us, and any
//! invalidation issued before we re-register would otherwise be lost.
//! Each recovery increments `drbac.net.tcp.reconnect.count`.
//!
//! Shutdown joins every pump and worker: sockets are shut down to
//! unblock readers, queues are closed to unblock writers and workers,
//! and remaining threads are joined under
//! [`DaemonConfig::shutdown_deadline`]. A thread still live past the
//! deadline (e.g. wedged in a blocking syscall a peer refuses to
//! complete) is abandoned and counted in
//! `drbac.net.tcp.shutdown.abandoned.count` — shutdown always returns.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use drbac_core::{DelegationId, WalletAddr};
use drbac_wallet::{DelegationEvent, InvalidationReason, Wallet};
use parking_lot::Mutex;

use crate::proto::{HealthReport, OneWay, Reply, Request};
use crate::sim::NetError;
use crate::tcp::{TcpConfig, TcpTransport};
use crate::transport::{RetryPolicy, Transport};
use crate::wire::{self, FrameKind, TraceContext};

/// Front-door sizing and backpressure knobs for [`WalletDaemon`].
///
/// The tuning guidance — what to raise first under reconnect storms,
/// overload replies, or stale pools — lives in `docs/OPERATIONS.md`.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker threads executing pipelined (wire v3) requests. `0`
    /// means auto: one per available core (minimum 1).
    pub workers: usize,
    /// Global cap on concurrent connections; accepts beyond it are
    /// closed immediately (`drbac.net.tcp.conn.rejected.count`).
    pub max_connections: usize,
    /// Per-connection cap on outstanding pipelined requests; the
    /// excess gets an immediate overload reply.
    pub max_inflight: usize,
    /// Bound on the global pending-job queue; when full, new pipelined
    /// requests get an immediate overload reply.
    pub queue_capacity: usize,
    /// How long [`WalletDaemon::shutdown`] waits for pumps and workers
    /// to join before abandoning stragglers.
    pub shutdown_deadline: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 0,
            max_connections: 1024,
            max_inflight: 128,
            queue_capacity: 4096,
            shutdown_deadline: Duration::from_secs(5),
        }
    }
}

impl DaemonConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        // One worker per core. On a single-core host a second worker
        // never runs concurrently anyway — it only adds wakeups that
        // find an empty queue and splits request batches in half.
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(1)
    }

    /// Writer-queue bound: replies are capped by `max_inflight`, the
    /// rest is headroom for pushes to a slow subscriber before the
    /// daemon gives up on the link.
    fn out_capacity(&self) -> usize {
        (2 * self.max_inflight + 16).max(64)
    }
}

/// One frame awaiting the connection's writer pump.
struct OutFrame {
    kind: FrameKind,
    /// `Some` → emit a wire v3 frame echoing this request id; `None` →
    /// emit a plain v1 frame (replies to v1/v2 peers, pushes).
    request_id: Option<u64>,
    payload: Vec<u8>,
}

/// State of one accepted connection, shared between its reader pump,
/// its writer pump, the worker pool, and the push fan-out.
struct Conn {
    id: u64,
    /// Outbound frames; drained in batches by the writer pump.
    out: StdMutex<OutState>,
    out_cv: Condvar,
    out_capacity: usize,
    /// The buffered write half of the socket. Both the writer pump and
    /// workers (replying directly) take this lock per batch; every
    /// holder flushes before releasing, so the buffer never carries
    /// another thread's partial frames.
    sock: StdMutex<Option<BufWriter<TcpStream>>>,
    /// Outstanding pipelined requests (incremented at admission,
    /// decremented when the reply is queued).
    inflight: AtomicUsize,
}

struct OutState {
    items: VecDeque<OutFrame>,
    closed: bool,
}

impl Conn {
    fn new(id: u64, out_capacity: usize, write_half: TcpStream) -> Conn {
        Conn {
            id,
            out: StdMutex::new(OutState {
                items: VecDeque::new(),
                closed: false,
            }),
            out_cv: Condvar::new(),
            out_capacity,
            sock: StdMutex::new(Some(BufWriter::with_capacity(64 * 1024, write_half))),
            inflight: AtomicUsize::new(0),
        }
    }

    /// Writes a batch of frames straight to the socket and flushes —
    /// the worker fast path, which skips the writer-pump handoff (one
    /// lock instead of a queue, a wakeup, and a thread switch). `false`
    /// when the connection is gone or the write fails; failure shuts
    /// the socket down and closes the outbound queue so both pumps
    /// unwind.
    fn write_now(&self, frames: impl ExactSizeIterator<Item = OutFrame>) -> bool {
        let Ok(mut sock) = self.sock.lock() else {
            return false;
        };
        let Some(writer) = sock.as_mut() else {
            return false;
        };
        let coalesced = frames.len().saturating_sub(1);
        let mut tx: u64 = 0;
        let mut push_tx: u64 = 0;
        let mut healthy = true;
        for frame in frames {
            let written = match frame.request_id {
                Some(id) => wire::write_frame_mux(writer, frame.kind, &frame.payload, id, None),
                None => wire::write_frame(writer, frame.kind, &frame.payload),
            };
            if written.is_err() {
                healthy = false;
                break;
            }
            match frame.kind {
                FrameKind::Push => push_tx += 1,
                _ => tx += 1,
            }
        }
        if healthy {
            healthy = writer.flush().is_ok();
        }
        if tx > 0 {
            drbac_obs::static_counter!("drbac.net.tcp.frame.tx.count").add(tx);
        }
        if push_tx > 0 {
            drbac_obs::static_counter!("drbac.net.tcp.push.tx.count").add(push_tx);
        }
        if coalesced > 0 {
            drbac_obs::static_counter!("drbac.net.tcp.write.coalesced.count")
                .add(coalesced as u64);
        }
        if !healthy {
            // The peer stopped reading: drop the write half and unblock
            // our reader/writer twins.
            let _ = writer.get_ref().shutdown(Shutdown::Both);
            *sock = None;
            drop(sock);
            self.close_out();
            return false;
        }
        true
    }

    /// Queues a frame for the writer pump. `false` when the connection
    /// is closed or its writer queue is full — the frame was dropped.
    fn send(&self, frame: OutFrame) -> bool {
        self.send_batch(std::iter::once(frame))
    }

    /// Queues a batch under one lock with one writer wakeup — workers
    /// completing a run of jobs for the same connection hand the whole
    /// run over at once, which is what lets the writer coalesce them
    /// into one flush. `false` when the connection is closed or the
    /// batch would overflow the queue (nothing is enqueued).
    fn send_batch(&self, frames: impl ExactSizeIterator<Item = OutFrame>) -> bool {
        let mut state = match self.out.lock() {
            Ok(s) => s,
            Err(_) => return false,
        };
        if state.closed || state.items.len() + frames.len() > self.out_capacity {
            return false;
        }
        state.items.extend(frames);
        self.out_cv.notify_one();
        true
    }

    /// Closes the writer queue; the pump exits after draining what it
    /// already holds.
    fn close_out(&self) {
        if let Ok(mut state) = self.out.lock() {
            state.closed = true;
        }
        self.out_cv.notify_all();
    }

    /// Blocks for the next batch of outbound frames; `None` once the
    /// queue is closed and drained.
    fn next_batch(&self) -> Option<VecDeque<OutFrame>> {
        let mut state = self.out.lock().ok()?;
        loop {
            if !state.items.is_empty() {
                return Some(std::mem::take(&mut state.items));
            }
            if state.closed {
                return None;
            }
            state = self.out_cv.wait(state).ok()?;
        }
    }
}

/// A decoded-but-unexecuted pipelined request, queued for the worker
/// pool.
struct Job {
    conn: Arc<Conn>,
    request_id: u64,
    payload: Vec<u8>,
    trace: Option<TraceContext>,
    rx: Instant,
}

/// The global bounded job queue feeding the worker pool.
struct JobQueue {
    state: StdMutex<JobState>,
    cv: Condvar,
    capacity: usize,
}

struct JobState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: StdMutex::new(JobState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Admits as many of `batch` as capacity allows in one lock and one
    /// wakeup, returning how many were taken (the caller owes overload
    /// replies for the rest). Zero when the queue is closed.
    fn push_batch(&self, batch: &mut Vec<Job>) -> usize {
        let Ok(mut state) = self.state.lock() else {
            return 0;
        };
        if state.closed {
            return 0;
        }
        let room = self.capacity.saturating_sub(state.jobs.len());
        let take = room.min(batch.len());
        state.jobs.extend(batch.drain(..take));
        drbac_obs::static_gauge!("drbac.net.tcp.queue.depth").set(state.jobs.len() as i64);
        drop(state);
        // Wake one worker per WORKER_BATCH of new work: a worker drains
        // up to that many jobs in one pop, so waking the whole pool for
        // a small batch just schedules threads that find an empty queue.
        // (A missed wakeup is impossible — workers re-check the queue
        // before waiting.)
        for _ in 0..take.div_ceil(WORKER_BATCH) {
            self.cv.notify_one();
        }
        take
    }

    /// Blocks for work, then takes up to `max` queued jobs in one
    /// lock: a worker serving a burst back-to-back skips the per-job
    /// wakeup round trip and can batch its replies per connection.
    /// `None` once the queue is closed and drained.
    fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().ok()?;
        loop {
            if !state.jobs.is_empty() {
                let n = state.jobs.len().min(max);
                return Some(state.jobs.drain(..n).collect());
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).ok()?;
        }
    }

    fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.closed = true;
        }
        self.cv.notify_all();
    }
}

/// State shared between the accept loop, pumps, workers, and the
/// daemon handle.
struct DaemonShared {
    wallet: Wallet,
    config: DaemonConfig,
    /// delegation id → subscriber wallet addresses (volatile, like the
    /// simulator host's registry — subscribers recover it by
    /// resubscribing after a restart).
    subscribers: Mutex<HashMap<DelegationId, BTreeSet<WalletAddr>>>,
    /// subscriber wallet address → the connection whose writer pump
    /// carries its pushes.
    push_links: Mutex<HashMap<WalletAddr, Arc<Conn>>>,
    /// Events already fanned out (loop guard for cascaded pushes).
    seen_events: Mutex<HashSet<DelegationEvent>>,
    /// Live connections: socket handle (for shutdown) + state.
    conns: Mutex<HashMap<u64, (TcpStream, Arc<Conn>)>>,
    /// Pending pipelined requests for the worker pool.
    jobs: JobQueue,
    /// Pump/worker threads still running (readers, writers, workers).
    live: AtomicUsize,
    /// Join handles for everything `live` counts. Finished handles are
    /// reaped opportunistically so the vec stays proportional to live
    /// connections, not lifetime accepts.
    threads: Mutex<Vec<JoinHandle<()>>>,
    closed: AtomicBool,
    /// When the daemon started accepting (for health uptime).
    start: Instant,
    /// Requests served since start (all kinds).
    served: AtomicU64,
}

impl DaemonShared {
    /// Handles one request. The dispatch mirrors the simulator's
    /// `WalletHost::handle` so SimNet and TCP answer identically.
    fn handle(&self, req: Request) -> Reply {
        match req {
            Request::DirectQuery {
                subject,
                object,
                constraints,
            } => match self.wallet.find_proof(&subject, &object, &constraints) {
                Some(p) => Reply::Proofs(vec![p]),
                None => Reply::Proofs(vec![]),
            },
            Request::SubjectQuery {
                subject,
                constraints,
            } => Reply::Proofs(self.wallet.query_subject(&subject, &constraints)),
            Request::ObjectQuery {
                object,
                constraints,
            } => Reply::Proofs(self.wallet.query_object(&object, &constraints)),
            Request::Publish { cert, supports } => match self.wallet.publish(cert, supports) {
                Ok(id) => Reply::Published(id),
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::PublishDeclaration(decl) => match self.wallet.publish_declaration(&decl) {
                Ok(()) => Reply::DeclarationPublished,
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::Subscribe {
                delegation,
                subscriber,
            } => {
                self.subscribers
                    .lock()
                    .entry(delegation)
                    .or_default()
                    .insert(subscriber);
                Reply::Subscribed
            }
            Request::Unsubscribe {
                delegation,
                subscriber,
            } => {
                if let Some(set) = self.subscribers.lock().get_mut(&delegation) {
                    set.remove(&subscriber);
                }
                Reply::Subscribed
            }
            Request::Revoke(revocation) => match self.wallet.revoke(&revocation) {
                Ok(delivered) => {
                    let event = DelegationEvent {
                        delegation: revocation.delegation_id(),
                        reason: InvalidationReason::Revoked,
                    };
                    self.seen_events.lock().insert(event);
                    self.push_to_subscribers(event);
                    Reply::Revoked(delivered)
                }
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::FetchDeclarations => Reply::Declarations(self.wallet.signed_declarations()),
            Request::FetchDelegation(id) => {
                let now = self.wallet.now();
                let live = self
                    .wallet
                    .get(id)
                    .filter(|c| !self.wallet.is_revoked(id) && !c.delegation().is_expired(now));
                Reply::Delegation(live)
            }
            Request::Stats => Reply::Stats(drbac_obs::global().snapshot()),
            Request::Health => Reply::Health(HealthReport {
                ok: !self.closed.load(Ordering::SeqCst),
                wallet: self.wallet.addr().to_string(),
                uptime_ns: self.start.elapsed().as_nanos() as u64,
                delegations: self.wallet.len() as u64,
                subscribers: self.push_links.lock().len() as u64,
                served_requests: self.served.load(Ordering::Relaxed),
            }),
        }
    }

    /// Decodes and executes one request payload: trace adoption, serve
    /// span, served accounting, and the service-time histogram
    /// (frame-rx → reply-encoded; the async write is not included).
    fn serve(&self, payload: &[u8], trace: Option<TraceContext>, rx: Instant) -> Reply {
        if let Some(ctx) = trace {
            drbac_obs::set_current_trace(ctx.trace_id, ctx.parent_span);
        }
        let reply = match wire::decode_request(payload) {
            Ok(req) => {
                let span = drbac_obs::span!(
                    "drbac.net.tcp.serve",
                    "req" => req.kind(),
                );
                let reply = self.handle(req);
                drop(span);
                reply
            }
            Err(e) => Reply::Error(format!("undecodable request: {e}")),
        };
        self.served.fetch_add(1, Ordering::Relaxed);
        drbac_obs::static_histogram!("drbac.net.tcp.service.ns")
            .record(rx.elapsed().as_nanos() as u64);
        drbac_obs::clear_current_trace();
        reply
    }

    /// Queues `event` as a push frame on every subscriber's writer
    /// pump. A link whose queue is closed or full is dropped — the
    /// subscriber's [`SubscriberLink`] will reconnect and resubscribe,
    /// recovering anything it missed by revalidation.
    fn push_to_subscribers(&self, event: DelegationEvent) {
        let targets = self
            .subscribers
            .lock()
            .get(&event.delegation)
            .cloned()
            .unwrap_or_default();
        let payload = wire::encode_push(&OneWay::Invalidate(event));
        for target in targets {
            let link = self.push_links.lock().get(&target).cloned();
            let Some(link) = link else { continue };
            let queued = link.send(OutFrame {
                kind: FrameKind::Push,
                request_id: None,
                payload: payload.clone(),
            });
            if !queued {
                self.push_links.lock().remove(&target);
            }
        }
    }

    /// Spawns a tracked thread: counted in `live`, handle registered
    /// for shutdown join, finished handles reaped on the way in.
    fn spawn_tracked(
        self: &Arc<Self>,
        name: String,
        f: impl FnOnce() + Send + 'static,
    ) -> io::Result<()> {
        self.live.fetch_add(1, Ordering::SeqCst);
        let guard_shared = Arc::clone(self);
        let spawned = std::thread::Builder::new().name(name).spawn(move || {
            struct LiveGuard(Arc<DaemonShared>);
            impl Drop for LiveGuard {
                fn drop(&mut self) {
                    self.0.live.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let _guard = LiveGuard(guard_shared);
            f();
        });
        match spawned {
            Ok(handle) => {
                let mut threads = self.threads.lock();
                threads.retain(|t| !t.is_finished());
                threads.push(handle);
                Ok(())
            }
            Err(e) => {
                self.live.fetch_sub(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }
}

/// A multiplexed TCP daemon serving one wallet.
///
/// ```no_run
/// # use drbac_net::{WalletDaemon, TcpConfig};
/// # use drbac_wallet::Wallet;
/// # use drbac_core::SimClock;
/// let wallet = Wallet::new("coalition.example:7070", SimClock::new());
/// let daemon = WalletDaemon::bind("127.0.0.1:7070", wallet, TcpConfig::default()).unwrap();
/// println!("serving on {}", daemon.local_addr());
/// # daemon.shutdown();
/// ```
pub struct WalletDaemon {
    shared: Arc<DaemonShared>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for WalletDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalletDaemon")
            .field("local_addr", &self.local_addr)
            .field("wallet", self.shared.wallet.addr())
            .finish()
    }
}

impl WalletDaemon {
    /// Binds `listen` (e.g. `127.0.0.1:7070`, or port `0` for an
    /// ephemeral test port) and starts serving `wallet` with the
    /// default [`DaemonConfig`].
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the listener cannot bind.
    pub fn bind(
        listen: impl ToSocketAddrs,
        wallet: Wallet,
        config: TcpConfig,
    ) -> io::Result<WalletDaemon> {
        Self::bind_with(listen, wallet, config, DaemonConfig::default())
    }

    /// Binds with explicit front-door sizing (workers, connection cap,
    /// in-flight cap, queue bound — see [`DaemonConfig`]).
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the listener cannot bind or the worker pool
    /// cannot spawn.
    pub fn bind_with(
        listen: impl ToSocketAddrs,
        wallet: Wallet,
        tcp: TcpConfig,
        daemon: DaemonConfig,
    ) -> io::Result<WalletDaemon> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let workers = daemon.effective_workers();
        let shared = Arc::new(DaemonShared {
            wallet,
            jobs: JobQueue::new(daemon.queue_capacity),
            config: daemon,
            subscribers: Mutex::new(HashMap::new()),
            push_links: Mutex::new(HashMap::new()),
            seen_events: Mutex::new(HashSet::new()),
            conns: Mutex::new(HashMap::new()),
            live: AtomicUsize::new(0),
            threads: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            start: Instant::now(),
            served: AtomicU64::new(0),
        });
        for w in 0..workers {
            let worker_shared = Arc::clone(&shared);
            shared.spawn_tracked(format!("drbac-daemon-worker-{w}"), move || {
                worker_loop(worker_shared)
            })?;
        }
        let accept_shared = Arc::clone(&shared);
        let write_timeout = tcp.write_timeout;
        let accept_thread = std::thread::Builder::new()
            .name(format!("drbac-daemon-{local_addr}"))
            .spawn(move || accept_loop(listener, accept_shared, write_timeout))?;
        drbac_obs::event!(
            "drbac.net.tcp.daemon.start",
            "addr" => local_addr.to_string(),
        );
        Ok(WalletDaemon {
            shared,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound socket address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served wallet (shared state).
    pub fn wallet(&self) -> &Wallet {
        &self.shared.wallet
    }

    /// Subscriber wallet addresses currently registered for `id`.
    pub fn subscribers_of(&self, id: DelegationId) -> BTreeSet<WalletAddr> {
        self.shared
            .subscribers
            .lock()
            .get(&id)
            .cloned()
            .unwrap_or_default()
    }

    /// Live pump/worker threads (for shutdown-accounting tests).
    pub fn live_threads(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// Fans a locally observed invalidation (e.g. an expiry sweep) out
    /// to subscribers, once per event.
    pub fn broadcast_invalidation(&self, event: DelegationEvent) {
        if self.shared.seen_events.lock().insert(event) {
            self.shared.push_to_subscribers(event);
        }
    }

    /// Stops accepting, closes every open connection, joins the worker
    /// pool and all per-connection pumps (abandoning any thread still
    /// wedged past [`DaemonConfig::shutdown_deadline`]). Idempotent.
    pub fn shutdown(&self) {
        if self.shared.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(500));
        // Stop the worker pool: no new jobs, queued jobs abandoned.
        self.shared.jobs.close();
        self.shared.push_links.lock().clear();
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        // Close live connections (shutdown unblocks readers, queue
        // close unblocks writers), re-draining until every pump exits:
        // a connection accepted in the shutdown race appears late.
        let deadline = Instant::now() + self.shared.config.shutdown_deadline;
        loop {
            for (_, (stream, conn)) in self.shared.conns.lock().drain() {
                let _ = stream.shutdown(Shutdown::Both);
                conn.close_out();
            }
            if self.shared.live.load(Ordering::SeqCst) == 0 || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let abandoned = self.shared.live.load(Ordering::SeqCst);
        let mut threads = self.shared.threads.lock();
        if abandoned == 0 {
            for t in threads.drain(..) {
                let _ = t.join();
            }
        } else {
            // Deadline-close: the sockets are already shut down; a
            // thread still live is wedged in a call only its peer can
            // complete. Abandon it rather than hang shutdown.
            drbac_obs::static_counter!("drbac.net.tcp.shutdown.abandoned.count")
                .add(abandoned as u64);
            threads.clear();
        }
        drop(threads);
        drbac_obs::event!(
            "drbac.net.tcp.daemon.stop",
            "addr" => self.local_addr.to_string(),
        );
    }
}

impl Drop for WalletDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How many jobs one worker takes from the queue per wakeup. Bounds
/// the head-of-line delay a deep burst imposes on jobs behind it while
/// still amortizing the queue and writer wakeups across the run.
const WORKER_BATCH: usize = 32;

/// Executes pipelined requests from the shared job queue until the
/// queue closes at shutdown. Jobs are taken in batches, their replies
/// grouped per connection and written straight to each socket — one
/// lock, one flush per run, no writer-pump handoff.
fn worker_loop(shared: Arc<DaemonShared>) {
    while let Some(jobs) = shared.jobs.pop_batch(WORKER_BATCH) {
        // Serve in arrival order, grouping replies per connection.
        // A burst is usually one connection's window, so the grouping
        // degenerates to a single batched write.
        let mut runs: Vec<(Arc<Conn>, Vec<OutFrame>)> = Vec::new();
        for job in jobs {
            let reply = shared.serve(&job.payload, job.trace, job.rx);
            let frame = OutFrame {
                kind: FrameKind::Reply,
                request_id: Some(job.request_id),
                payload: wire::encode_reply(&reply),
            };
            match runs.iter_mut().find(|(c, _)| Arc::ptr_eq(c, &job.conn)) {
                Some((_, frames)) => frames.push(frame),
                None => runs.push((job.conn, vec![frame])),
            }
        }
        for (conn, frames) in runs {
            let n = frames.len();
            // A batch that cannot be written means the connection died;
            // the client will observe the close and resubmit elsewhere.
            let _ = conn.write_now(frames.into_iter());
            conn.inflight.fetch_sub(n, Ordering::SeqCst);
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<DaemonShared>,
    write_timeout: Option<Duration>,
) {
    let mut next_conn_id: u64 = 0;
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if shared.closed.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.closed.load(Ordering::SeqCst) {
            return;
        }
        drbac_obs::static_counter!("drbac.net.tcp.accept.count").inc();
        if shared.conns.lock().len() >= shared.config.max_connections {
            // Over the connection cap: close immediately. We cannot
            // send an overload reply before reading a request, and
            // reading would hold the very resources the cap protects.
            drbac_obs::static_counter!("drbac.net.tcp.conn.rejected.count").inc();
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        // Serving reads block indefinitely (idle pooled client
        // connections stay alive); writes keep the configured deadline
        // so one stuck subscriber cannot wedge the writer pump.
        let _ = stream.set_read_timeout(None);
        let _ = stream.set_write_timeout(write_timeout);
        let _ = stream.set_nodelay(true);
        next_conn_id += 1;
        let (Ok(write_half), Ok(shutdown_handle)) = (stream.try_clone(), stream.try_clone())
        else {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        };
        let conn = Arc::new(Conn::new(
            next_conn_id,
            shared.config.out_capacity(),
            write_half,
        ));
        shared
            .conns
            .lock()
            .insert(conn.id, (shutdown_handle, Arc::clone(&conn)));
        let writer_conn = Arc::clone(&conn);
        let writer_ok = shared
            .spawn_tracked("drbac-daemon-write".into(), move || writer_pump(writer_conn))
            .is_ok();
        let reader_shared = Arc::clone(&shared);
        let reader_conn = Arc::clone(&conn);
        let reader_ok = writer_ok
            && shared
                .spawn_tracked("drbac-daemon-read".into(), move || {
                    reader_pump(stream, reader_conn, reader_shared)
                })
                .is_ok();
        if !reader_ok {
            shared.conns.lock().remove(&conn.id);
            conn.close_out();
        }
    }
}

/// Drains the connection's outbound queue — pushes, v1 replies,
/// overload replies — in batches: every frame in a batch goes through
/// the shared `BufWriter` under one lock, then one flush. Worker
/// replies bypass this queue entirely via [`Conn::write_now`].
fn writer_pump(conn: Arc<Conn>) {
    while let Some(batch) = conn.next_batch() {
        if !conn.write_now(batch.into_iter()) {
            // write_now already shut the socket down and closed the
            // queue; nothing left to drain.
            return;
        }
    }
    // Queue closed cleanly; write_now leaves the stream flushed.
}

/// Reads frames off one connection until the peer hangs up, a frame is
/// malformed, or the daemon shuts down. Never panics on bad input — a
/// protocol violation just drops the connection.
///
/// v1/v2 requests are served inline here (strict request/reply order);
/// v3 requests are admitted against the in-flight and queue bounds and
/// handed to the worker pool.
fn reader_pump(stream: TcpStream, conn: Arc<Conn>, shared: Arc<DaemonShared>) {
    // Buffered reads: one syscall slurps every frame a pipelining
    // client flushed in a batch, instead of 2+ syscalls per frame.
    let mut reader = io::BufReader::with_capacity(64 * 1024, stream);
    // The wallet address this connection push-registered, if any.
    let mut registered: Option<WalletAddr> = None;
    // v3 jobs accumulated across one drain of the read buffer, admitted
    // to the worker queue in a single lock + wakeup.
    let mut jobs: Vec<Job> = Vec::new();
    'conn: loop {
        let Ok(first) = wire::read_frame(&mut reader) else {
            break 'conn;
        };
        if shared.closed.load(Ordering::SeqCst) {
            break 'conn;
        }
        let mut rx_count: u64 = 1;
        let mut mux_count: u64 = 0;
        let mut dead = false;
        let mut pending = Some(first);
        loop {
            let frame = match pending.take() {
                Some(f) => f,
                None => {
                    // Keep draining only frames that are *completely*
                    // buffered: a torn frame would otherwise block this
                    // batch behind a trickling peer.
                    if jobs.len() >= WORKER_BATCH {
                        break;
                    }
                    let buf = reader.buffer();
                    match wire::buffered_frame_len(buf) {
                        Some(total) if buf.len() >= total => {
                            match wire::read_frame(&mut reader) {
                                Ok(f) => {
                                    rx_count += 1;
                                    f
                                }
                                Err(_) => {
                                    dead = true;
                                    break;
                                }
                            }
                        }
                        _ => break,
                    }
                }
            };
            match frame.kind {
                FrameKind::Request => match frame.request_id {
                    Some(request_id) => {
                        mux_count += 1;
                        // Backpressure: per-connection in-flight cap, then
                        // the global queue bound. Either rejection is an
                        // immediate overload reply, never a silent queue.
                        if conn.inflight.load(Ordering::SeqCst) >= shared.config.max_inflight {
                            if !send_overload(&conn, request_id, "per-connection in-flight cap") {
                                dead = true;
                                break;
                            }
                            continue;
                        }
                        conn.inflight.fetch_add(1, Ordering::SeqCst);
                        jobs.push(Job {
                            conn: Arc::clone(&conn),
                            request_id,
                            payload: frame.payload,
                            trace: frame.trace,
                            rx: Instant::now(),
                        });
                    }
                    None => {
                        // Strict request/reply (wire v1/v2): serve inline on
                        // this thread so replies keep arrival order, and
                        // route the reply through the writer pump so it
                        // serializes with any pushes on this connection.
                        let reply = shared.serve(&frame.payload, frame.trace, Instant::now());
                        let queued = conn.send(OutFrame {
                            kind: FrameKind::Reply,
                            request_id: None,
                            payload: wire::encode_reply(&reply),
                        });
                        if !queued {
                            dead = true;
                            break;
                        }
                    }
                },
                FrameKind::PushRegister => {
                    let Ok(subscriber) = wire::decode_push_register(&frame.payload) else {
                        dead = true;
                        break;
                    };
                    shared
                        .push_links
                        .lock()
                        .insert(subscriber.clone(), Arc::clone(&conn));
                    registered = Some(subscriber);
                }
                // Clients never push to the daemon; replies make no sense
                // inbound. Treat as a protocol violation and hang up.
                FrameKind::Push | FrameKind::Reply => {
                    dead = true;
                    break;
                }
            }
        }
        drbac_obs::static_counter!("drbac.net.tcp.frame.rx.count").add(rx_count);
        if mux_count > 0 {
            drbac_obs::static_counter!("drbac.net.tcp.mux.rx.count").add(mux_count);
        }
        if !jobs.is_empty() {
            shared.jobs.push_batch(&mut jobs);
            // Whatever the queue had no room for is still in `jobs`.
            for job in jobs.drain(..) {
                job.conn.inflight.fetch_sub(1, Ordering::SeqCst);
                if !send_overload(&job.conn, job.request_id, "job queue full") {
                    dead = true;
                }
            }
        }
        if dead {
            break 'conn;
        }
    }
    // Deregister our push link, but only if the registry still holds
    // *this* connection — a reconnected subscriber may have already
    // replaced it.
    if let Some(subscriber) = registered {
        let mut links = shared.push_links.lock();
        if links
            .get(&subscriber)
            .is_some_and(|c| Arc::ptr_eq(c, &conn))
        {
            links.remove(&subscriber);
        }
    }
    shared.conns.lock().remove(&conn.id);
    conn.close_out();
    let _ = reader.get_ref().shutdown(Shutdown::Both);
}

/// Queues an overload reply for `request_id`; `false` when the
/// connection is already unwritable.
fn send_overload(conn: &Arc<Conn>, request_id: u64, what: &str) -> bool {
    drbac_obs::static_counter!("drbac.net.tcp.overload.count").inc();
    conn.send(OutFrame {
        kind: FrameKind::Reply,
        request_id: Some(request_id),
        payload: wire::encode_reply(&Reply::overloaded(what)),
    })
}

/// Client side of the persistent push connection: registers with a
/// wallet daemon, applies incoming [`OneWay::Invalidate`] events to the
/// local wallet, and — when the connection drops — reconnects,
/// re-registers, and resubscribes every tracked delegation, mirroring
/// the simulator's `resubscribe_cached` recovery semantics.
pub struct SubscriberLink {
    inner: Arc<LinkInner>,
    reader: Mutex<Option<JoinHandle<()>>>,
}

struct LinkInner {
    /// Wallet address of the daemon we subscribe at.
    home: WalletAddr,
    /// The local wallet events are applied to (and whose cached
    /// credentials are revalidated after a reconnect).
    wallet: Wallet,
    /// Transport used for resubscribe/revalidate requests and for
    /// resolving `home` to a socket address.
    transport: Arc<TcpTransport>,
    /// Delegations to resubscribe beyond what the wallet's cache
    /// records (e.g. ids a switchboard gate monitors).
    tracked: Mutex<BTreeSet<DelegationId>>,
    /// Current connection, so `close` can unblock the reader.
    current: Mutex<Option<TcpStream>>,
    closed: AtomicBool,
}

impl std::fmt::Debug for SubscriberLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriberLink")
            .field("home", &self.inner.home)
            .field("subscriber", self.inner.wallet.addr())
            .finish()
    }
}

impl SubscriberLink {
    /// Opens the persistent connection to the daemon serving `home`
    /// and starts the reader thread. Returns once the link is
    /// registered (or has started its first reconnect attempts).
    ///
    /// # Errors
    ///
    /// [`NetError`] if the first connection cannot be established —
    /// the link does not start in a disconnected state.
    pub fn open(
        home: impl Into<WalletAddr>,
        wallet: Wallet,
        transport: Arc<TcpTransport>,
    ) -> Result<SubscriberLink, NetError> {
        let inner = Arc::new(LinkInner {
            home: home.into(),
            wallet,
            transport,
            tracked: Mutex::new(BTreeSet::new()),
            current: Mutex::new(None),
            closed: AtomicBool::new(false),
        });
        let stream = inner.establish()?;
        *inner.current.lock() = Some(stream.try_clone().map_err(|e| {
            NetError::Protocol(format!("cannot clone subscriber stream: {e}"))
        })?);
        let reader_inner = Arc::clone(&inner);
        let reader = std::thread::Builder::new()
            .name(format!("drbac-sublink-{}", inner.home))
            .spawn(move || reader_loop(stream, reader_inner))
            .map_err(|e| NetError::Protocol(format!("cannot spawn reader: {e}")))?;
        Ok(SubscriberLink {
            inner,
            reader: Mutex::new(Some(reader)),
        })
    }

    /// The daemon-side wallet this link subscribes at.
    pub fn home(&self) -> &WalletAddr {
        &self.inner.home
    }

    /// Adds a delegation id to the resubscribe set (beyond the
    /// wallet's cached credentials), and subscribes it now.
    pub fn track(&self, id: DelegationId) {
        self.inner.tracked.lock().insert(id);
        let _ = RetryPolicy::standard().run(
            self.inner.transport.as_ref(),
            &self.inner.home,
            &Request::Subscribe {
                delegation: id,
                subscriber: self.inner.wallet.addr().clone(),
            },
        );
    }

    /// Stops the reader thread and closes the connection. Idempotent.
    pub fn close(&self) {
        if self.inner.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(stream) = self.inner.current.lock().take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.reader.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for SubscriberLink {
    fn drop(&mut self) {
        self.close();
    }
}

impl LinkInner {
    /// Connects to the daemon and sends the push-register frame.
    fn establish(&self) -> Result<TcpStream, NetError> {
        let mut stream = self.transport.connect_raw(&self.home)?;
        // Push frames arrive whenever the daemon has something to say;
        // the reader must block past any read deadline.
        stream
            .set_read_timeout(None)
            .map_err(|e| NetError::Protocol(format!("cannot clear read deadline: {e}")))?;
        let payload = wire::encode_push_register(self.wallet.addr());
        wire::write_frame(&mut stream, FrameKind::PushRegister, &payload)
            .map_err(|e| NetError::Protocol(format!("push-register failed: {e}")))?;
        stream
            .flush()
            .map_err(|e| NetError::Protocol(format!("push-register flush failed: {e}")))?;
        Ok(stream)
    }

    /// Re-registers every subscription this link is responsible for —
    /// cached credentials sourced from `home` plus explicitly tracked
    /// ids — then revalidates each cached credential. Entries the home
    /// disowns are invalidated locally (the push we missed while
    /// disconnected is reconstructed from state, not replayed).
    fn resubscribe(&self) {
        let retry = RetryPolicy::standard();
        let subscriber = self.wallet.addr().clone();
        let mut ids: BTreeSet<DelegationId> = self.tracked.lock().clone();
        let cached: Vec<(DelegationId, drbac_wallet::CacheEntry)> = self
            .wallet
            .cache_entries()
            .into_iter()
            .filter(|(_, entry)| entry.source == self.home)
            .collect();
        ids.extend(cached.iter().map(|(id, _)| *id));
        for id in &ids {
            let _ = retry.run(
                self.transport.as_ref(),
                &self.home,
                &Request::Subscribe {
                    delegation: *id,
                    subscriber: subscriber.clone(),
                },
            );
        }
        for (id, _) in cached {
            match retry
                .run(self.transport.as_ref(), &self.home, &Request::FetchDelegation(id))
                .reply
            {
                Ok(Reply::Delegation(Some(_))) => {
                    self.wallet.mark_refreshed(id);
                }
                Ok(Reply::Delegation(None)) => {
                    // The home disowned it while we were out of touch.
                    self.wallet.push_event(DelegationEvent {
                        delegation: id,
                        reason: InvalidationReason::Expired,
                    });
                }
                _ => {} // still unreachable: TTL refresh remains the backstop
            }
        }
    }
}

/// Reads push frames, applying each invalidation to the local wallet;
/// on connection loss, reconnects with backoff and resubscribes.
fn reader_loop(mut stream: TcpStream, inner: Arc<LinkInner>) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(frame) if frame.kind == FrameKind::Push => {
                if let Ok(OneWay::Invalidate(event)) = wire::decode_push(&frame.payload) {
                    drbac_obs::static_counter!("drbac.net.tcp.push.rx.count").inc();
                    inner.wallet.push_event(event);
                }
            }
            Ok(_) => {} // unexpected kind: ignore, keep the link up
            Err(_) => {
                if inner.closed.load(Ordering::SeqCst) {
                    return;
                }
                // Connection lost: reconnect with backoff, re-register,
                // resubscribe-and-revalidate.
                drbac_obs::static_counter!("drbac.net.tcp.reconnect.count").inc();
                drbac_obs::event!(
                    "drbac.net.tcp.reconnect",
                    "home" => inner.home.to_string(),
                    "subscriber" => inner.wallet.addr().to_string(),
                );
                let mut attempt: u64 = 0;
                let next = loop {
                    if inner.closed.load(Ordering::SeqCst) {
                        return;
                    }
                    match inner.establish() {
                        Ok(s) => break s,
                        Err(_) => {
                            inner
                                .transport
                                .backoff(drbac_core::Ticks(1u64 << attempt.min(6)));
                            attempt += 1;
                        }
                    }
                };
                match next.try_clone() {
                    Ok(clone) => *inner.current.lock() = Some(clone),
                    Err(_) => return,
                }
                stream = next;
                inner.resubscribe();
            }
        }
    }
}
