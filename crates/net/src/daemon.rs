//! TCP wallet daemon and the persistent subscriber connection.
//!
//! [`WalletDaemon`] is the socket-facing counterpart of the simulator's
//! [`WalletHost`](crate::WalletHost): a threaded accept loop that
//! serves one wallet's [`Request`]/[`Reply`](crate::proto::Reply)
//! protocol over [`wire`](crate::wire) frames. Delegation-subscription
//! pushes (paper §4.2.2) travel over a *persistent subscriber
//! connection*: a client opens a dedicated stream, sends a
//! push-register frame naming its wallet address, and the daemon
//! writes [`OneWay::Invalidate`] frames down that stream whenever a
//! delegation the client subscribed to is invalidated.
//!
//! [`SubscriberLink`] is the client side of that connection. When the
//! daemon dies mid-subscription the link notices (read error),
//! reconnects with backoff, re-registers, and **resubscribes** every
//! cached credential from that home — mirroring the simulator's
//! `resubscribe_cached` recovery: the daemon's subscriber registry is
//! volatile, so a daemon restart silently unsubscribed us, and any
//! invalidation issued before we re-register would otherwise be lost.
//! Each recovery increments `drbac.net.tcp.reconnect.count`.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use drbac_core::{DelegationId, WalletAddr};
use drbac_wallet::{DelegationEvent, InvalidationReason, Wallet};
use parking_lot::Mutex;

use crate::proto::{HealthReport, OneWay, Reply, Request};
use crate::sim::NetError;
use crate::tcp::{TcpConfig, TcpTransport};
use crate::transport::{RetryPolicy, Transport};
use crate::wire::{self, FrameKind};

/// State shared between the accept loop, connection handlers, and the
/// daemon handle.
struct DaemonShared {
    wallet: Wallet,
    /// delegation id → subscriber wallet addresses (volatile, like the
    /// simulator host's registry — subscribers recover it by
    /// resubscribing after a restart).
    subscribers: Mutex<HashMap<DelegationId, BTreeSet<WalletAddr>>>,
    /// subscriber wallet address → write half of its persistent push
    /// connection.
    push_links: Mutex<HashMap<WalletAddr, Arc<Mutex<TcpStream>>>>,
    /// Events already fanned out (loop guard for cascaded pushes).
    seen_events: Mutex<HashSet<DelegationEvent>>,
    /// Streams currently open, so shutdown can unblock their readers.
    conns: Mutex<Vec<TcpStream>>,
    closed: AtomicBool,
    /// When the daemon started accepting (for health uptime).
    start: Instant,
    /// Requests served since start (all kinds).
    served: AtomicU64,
}

impl DaemonShared {
    /// Handles one request. The dispatch mirrors the simulator's
    /// `WalletHost::handle` so SimNet and TCP answer identically.
    fn handle(&self, req: Request) -> Reply {
        match req {
            Request::DirectQuery {
                subject,
                object,
                constraints,
            } => match self.wallet.find_proof(&subject, &object, &constraints) {
                Some(p) => Reply::Proofs(vec![p]),
                None => Reply::Proofs(vec![]),
            },
            Request::SubjectQuery {
                subject,
                constraints,
            } => Reply::Proofs(self.wallet.query_subject(&subject, &constraints)),
            Request::ObjectQuery {
                object,
                constraints,
            } => Reply::Proofs(self.wallet.query_object(&object, &constraints)),
            Request::Publish { cert, supports } => match self.wallet.publish(cert, supports) {
                Ok(id) => Reply::Published(id),
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::PublishDeclaration(decl) => match self.wallet.publish_declaration(&decl) {
                Ok(()) => Reply::DeclarationPublished,
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::Subscribe {
                delegation,
                subscriber,
            } => {
                self.subscribers
                    .lock()
                    .entry(delegation)
                    .or_default()
                    .insert(subscriber);
                Reply::Subscribed
            }
            Request::Unsubscribe {
                delegation,
                subscriber,
            } => {
                if let Some(set) = self.subscribers.lock().get_mut(&delegation) {
                    set.remove(&subscriber);
                }
                Reply::Subscribed
            }
            Request::Revoke(revocation) => match self.wallet.revoke(&revocation) {
                Ok(delivered) => {
                    let event = DelegationEvent {
                        delegation: revocation.delegation_id(),
                        reason: InvalidationReason::Revoked,
                    };
                    self.seen_events.lock().insert(event);
                    self.push_to_subscribers(event);
                    Reply::Revoked(delivered)
                }
                Err(e) => Reply::Error(e.to_string()),
            },
            Request::FetchDeclarations => Reply::Declarations(self.wallet.signed_declarations()),
            Request::FetchDelegation(id) => {
                let now = self.wallet.now();
                let live = self
                    .wallet
                    .get(id)
                    .filter(|c| !self.wallet.is_revoked(id) && !c.delegation().is_expired(now));
                Reply::Delegation(live)
            }
            Request::Stats => Reply::Stats(drbac_obs::global().snapshot()),
            Request::Health => Reply::Health(HealthReport {
                ok: !self.closed.load(Ordering::SeqCst),
                wallet: self.wallet.addr().to_string(),
                uptime_ns: self.start.elapsed().as_nanos() as u64,
                delegations: self.wallet.len() as u64,
                subscribers: self.push_links.lock().len() as u64,
                served_requests: self.served.load(Ordering::Relaxed),
            }),
        }
    }

    /// Writes `event` as a push frame down every subscriber's
    /// persistent connection. A link whose write fails is dropped —
    /// the subscriber's [`SubscriberLink`] will reconnect and
    /// resubscribe, recovering anything it missed by revalidation.
    fn push_to_subscribers(&self, event: DelegationEvent) {
        let targets = self
            .subscribers
            .lock()
            .get(&event.delegation)
            .cloned()
            .unwrap_or_default();
        let payload = wire::encode_push(&OneWay::Invalidate(event));
        for target in targets {
            let link = self.push_links.lock().get(&target).cloned();
            let Some(link) = link else { continue };
            let ok = {
                let mut stream = link.lock();
                wire::write_frame(&mut *stream, FrameKind::Push, &payload).is_ok()
            };
            if ok {
                drbac_obs::static_counter!("drbac.net.tcp.push.tx.count").inc();
            } else {
                self.push_links.lock().remove(&target);
            }
        }
    }
}

/// A threaded TCP daemon serving one wallet.
///
/// ```no_run
/// # use drbac_net::{WalletDaemon, TcpConfig};
/// # use drbac_wallet::Wallet;
/// # use drbac_core::SimClock;
/// let wallet = Wallet::new("coalition.example:7070", SimClock::new());
/// let daemon = WalletDaemon::bind("127.0.0.1:7070", wallet, TcpConfig::default()).unwrap();
/// println!("serving on {}", daemon.local_addr());
/// # daemon.shutdown();
/// ```
pub struct WalletDaemon {
    shared: Arc<DaemonShared>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for WalletDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalletDaemon")
            .field("local_addr", &self.local_addr)
            .field("wallet", self.shared.wallet.addr())
            .finish()
    }
}

impl WalletDaemon {
    /// Binds `listen` (e.g. `127.0.0.1:7070`, or port `0` for an
    /// ephemeral test port) and starts serving `wallet`.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the listener cannot bind.
    pub fn bind(
        listen: impl ToSocketAddrs,
        wallet: Wallet,
        config: TcpConfig,
    ) -> io::Result<WalletDaemon> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(DaemonShared {
            wallet,
            subscribers: Mutex::new(HashMap::new()),
            push_links: Mutex::new(HashMap::new()),
            seen_events: Mutex::new(HashSet::new()),
            conns: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            start: Instant::now(),
            served: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let write_timeout = config.write_timeout;
        let accept_thread = std::thread::Builder::new()
            .name(format!("drbac-daemon-{local_addr}"))
            .spawn(move || accept_loop(listener, accept_shared, write_timeout))?;
        drbac_obs::event!(
            "drbac.net.tcp.daemon.start",
            "addr" => local_addr.to_string(),
        );
        Ok(WalletDaemon {
            shared,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound socket address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served wallet (shared state).
    pub fn wallet(&self) -> &Wallet {
        &self.shared.wallet
    }

    /// Subscriber wallet addresses currently registered for `id`.
    pub fn subscribers_of(&self, id: DelegationId) -> BTreeSet<WalletAddr> {
        self.shared
            .subscribers
            .lock()
            .get(&id)
            .cloned()
            .unwrap_or_default()
    }

    /// Fans a locally observed invalidation (e.g. an expiry sweep) out
    /// to subscribers, once per event.
    pub fn broadcast_invalidation(&self, event: DelegationEvent) {
        if self.shared.seen_events.lock().insert(event) {
            self.shared.push_to_subscribers(event);
        }
    }

    /// Stops accepting, closes every open connection, and joins the
    /// accept loop. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(500));
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        self.shared.push_links.lock().clear();
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        drbac_obs::event!(
            "drbac.net.tcp.daemon.stop",
            "addr" => self.local_addr.to_string(),
        );
    }
}

impl Drop for WalletDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<DaemonShared>,
    write_timeout: Option<Duration>,
) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if shared.closed.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.closed.load(Ordering::SeqCst) {
            return;
        }
        drbac_obs::static_counter!("drbac.net.tcp.accept.count").inc();
        // Serving reads block indefinitely (idle pooled client
        // connections stay alive); writes keep the configured deadline
        // so one stuck subscriber cannot wedge a handler.
        let _ = stream.set_read_timeout(None);
        let _ = stream.set_write_timeout(write_timeout);
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().push(clone);
        }
        let conn_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("drbac-daemon-conn".into())
            .spawn(move || serve_connection(stream, conn_shared));
    }
}

/// Serves one connection until the peer hangs up, a frame is
/// malformed, or the daemon shuts down. Never panics on bad input —
/// a protocol violation just drops the connection.
fn serve_connection(mut stream: TcpStream, shared: Arc<DaemonShared>) {
    // The wallet address this connection push-registered, if any, and
    // the shared write half the registry holds for it.
    let mut registered: Option<(WalletAddr, Arc<Mutex<TcpStream>>)> = None;
    while let Ok(frame) = wire::read_frame(&mut stream) {
        if shared.closed.load(Ordering::SeqCst) {
            break;
        }
        drbac_obs::static_counter!("drbac.net.tcp.frame.rx.count").inc();
        match frame.kind {
            FrameKind::Request => {
                // Service time is frame-rx → reply-tx: the clock starts
                // the moment the request frame is fully read and stops
                // after the reply frame is written back.
                let rx = Instant::now();
                // Adopt the client's trace context (if any) so daemon
                // spans stitch into the same distributed trace.
                if let Some(ctx) = frame.trace {
                    drbac_obs::set_current_trace(ctx.trace_id, ctx.parent_span);
                }
                let reply = match wire::decode_request(&frame.payload) {
                    Ok(req) => {
                        let span = drbac_obs::span!(
                            "drbac.net.tcp.serve",
                            "req" => req.kind(),
                        );
                        let reply = shared.handle(req);
                        drop(span);
                        reply
                    }
                    Err(e) => Reply::Error(format!("undecodable request: {e}")),
                };
                shared.served.fetch_add(1, Ordering::Relaxed);
                let payload = wire::encode_reply(&reply);
                let sent = wire::write_frame(&mut stream, FrameKind::Reply, &payload).is_ok();
                drbac_obs::static_histogram!("drbac.net.tcp.service.ns")
                    .record(rx.elapsed().as_nanos() as u64);
                drbac_obs::clear_current_trace();
                if !sent {
                    break;
                }
                drbac_obs::static_counter!("drbac.net.tcp.frame.tx.count").inc();
            }
            FrameKind::PushRegister => {
                let Ok(subscriber) = wire::decode_push_register(&frame.payload) else {
                    break;
                };
                let Ok(write_half) = stream.try_clone() else {
                    break;
                };
                let link = Arc::new(Mutex::new(write_half));
                shared
                    .push_links
                    .lock()
                    .insert(subscriber.clone(), Arc::clone(&link));
                registered = Some((subscriber, link));
            }
            // Clients never push to the daemon; replies make no sense
            // inbound. Treat as a protocol violation and hang up.
            FrameKind::Push | FrameKind::Reply => break,
        }
    }
    // Deregister our push link, but only if the registry still holds
    // *this* connection's write half — a reconnected subscriber may
    // have already replaced it.
    if let Some((subscriber, link)) = registered {
        let mut links = shared.push_links.lock();
        if links.get(&subscriber).is_some_and(|l| Arc::ptr_eq(l, &link)) {
            links.remove(&subscriber);
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Client side of the persistent push connection: registers with a
/// wallet daemon, applies incoming [`OneWay::Invalidate`] events to the
/// local wallet, and — when the connection drops — reconnects,
/// re-registers, and resubscribes every tracked delegation, mirroring
/// the simulator's `resubscribe_cached` recovery semantics.
pub struct SubscriberLink {
    inner: Arc<LinkInner>,
    reader: Mutex<Option<JoinHandle<()>>>,
}

struct LinkInner {
    /// Wallet address of the daemon we subscribe at.
    home: WalletAddr,
    /// The local wallet events are applied to (and whose cached
    /// credentials are revalidated after a reconnect).
    wallet: Wallet,
    /// Transport used for resubscribe/revalidate requests and for
    /// resolving `home` to a socket address.
    transport: Arc<TcpTransport>,
    /// Delegations to resubscribe beyond what the wallet's cache
    /// records (e.g. ids a switchboard gate monitors).
    tracked: Mutex<BTreeSet<DelegationId>>,
    /// Current connection, so `close` can unblock the reader.
    current: Mutex<Option<TcpStream>>,
    closed: AtomicBool,
}

impl std::fmt::Debug for SubscriberLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriberLink")
            .field("home", &self.inner.home)
            .field("subscriber", self.inner.wallet.addr())
            .finish()
    }
}

impl SubscriberLink {
    /// Opens the persistent connection to the daemon serving `home`
    /// and starts the reader thread. Returns once the link is
    /// registered (or has started its first reconnect attempts).
    ///
    /// # Errors
    ///
    /// [`NetError`] if the first connection cannot be established —
    /// the link does not start in a disconnected state.
    pub fn open(
        home: impl Into<WalletAddr>,
        wallet: Wallet,
        transport: Arc<TcpTransport>,
    ) -> Result<SubscriberLink, NetError> {
        let inner = Arc::new(LinkInner {
            home: home.into(),
            wallet,
            transport,
            tracked: Mutex::new(BTreeSet::new()),
            current: Mutex::new(None),
            closed: AtomicBool::new(false),
        });
        let stream = inner.establish()?;
        *inner.current.lock() = Some(stream.try_clone().map_err(|e| {
            NetError::Protocol(format!("cannot clone subscriber stream: {e}"))
        })?);
        let reader_inner = Arc::clone(&inner);
        let reader = std::thread::Builder::new()
            .name(format!("drbac-sublink-{}", inner.home))
            .spawn(move || reader_loop(stream, reader_inner))
            .map_err(|e| NetError::Protocol(format!("cannot spawn reader: {e}")))?;
        Ok(SubscriberLink {
            inner,
            reader: Mutex::new(Some(reader)),
        })
    }

    /// The daemon-side wallet this link subscribes at.
    pub fn home(&self) -> &WalletAddr {
        &self.inner.home
    }

    /// Adds a delegation id to the resubscribe set (beyond the
    /// wallet's cached credentials), and subscribes it now.
    pub fn track(&self, id: DelegationId) {
        self.inner.tracked.lock().insert(id);
        let _ = RetryPolicy::standard().run(
            self.inner.transport.as_ref(),
            &self.inner.home,
            &Request::Subscribe {
                delegation: id,
                subscriber: self.inner.wallet.addr().clone(),
            },
        );
    }

    /// Stops the reader thread and closes the connection. Idempotent.
    pub fn close(&self) {
        if self.inner.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(stream) = self.inner.current.lock().take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.reader.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for SubscriberLink {
    fn drop(&mut self) {
        self.close();
    }
}

impl LinkInner {
    /// Connects to the daemon and sends the push-register frame.
    fn establish(&self) -> Result<TcpStream, NetError> {
        let mut stream = self.transport.connect_raw(&self.home)?;
        // Push frames arrive whenever the daemon has something to say;
        // the reader must block past any read deadline.
        stream
            .set_read_timeout(None)
            .map_err(|e| NetError::Protocol(format!("cannot clear read deadline: {e}")))?;
        let payload = wire::encode_push_register(self.wallet.addr());
        wire::write_frame(&mut stream, FrameKind::PushRegister, &payload)
            .map_err(|e| NetError::Protocol(format!("push-register failed: {e}")))?;
        Ok(stream)
    }

    /// Re-registers every subscription this link is responsible for —
    /// cached credentials sourced from `home` plus explicitly tracked
    /// ids — then revalidates each cached credential. Entries the home
    /// disowns are invalidated locally (the push we missed while
    /// disconnected is reconstructed from state, not replayed).
    fn resubscribe(&self) {
        let retry = RetryPolicy::standard();
        let subscriber = self.wallet.addr().clone();
        let mut ids: BTreeSet<DelegationId> = self.tracked.lock().clone();
        let cached: Vec<(DelegationId, drbac_wallet::CacheEntry)> = self
            .wallet
            .cache_entries()
            .into_iter()
            .filter(|(_, entry)| entry.source == self.home)
            .collect();
        ids.extend(cached.iter().map(|(id, _)| *id));
        for id in &ids {
            let _ = retry.run(
                self.transport.as_ref(),
                &self.home,
                &Request::Subscribe {
                    delegation: *id,
                    subscriber: subscriber.clone(),
                },
            );
        }
        for (id, _) in cached {
            match retry
                .run(self.transport.as_ref(), &self.home, &Request::FetchDelegation(id))
                .reply
            {
                Ok(Reply::Delegation(Some(_))) => {
                    self.wallet.mark_refreshed(id);
                }
                Ok(Reply::Delegation(None)) => {
                    // The home disowned it while we were out of touch.
                    self.wallet.push_event(DelegationEvent {
                        delegation: id,
                        reason: InvalidationReason::Expired,
                    });
                }
                _ => {} // still unreachable: TTL refresh remains the backstop
            }
        }
    }
}

/// Reads push frames, applying each invalidation to the local wallet;
/// on connection loss, reconnects with backoff and resubscribes.
fn reader_loop(mut stream: TcpStream, inner: Arc<LinkInner>) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(frame) if frame.kind == FrameKind::Push => {
                if let Ok(OneWay::Invalidate(event)) = wire::decode_push(&frame.payload) {
                    drbac_obs::static_counter!("drbac.net.tcp.push.rx.count").inc();
                    inner.wallet.push_event(event);
                }
            }
            Ok(_) => {} // unexpected kind: ignore, keep the link up
            Err(_) => {
                if inner.closed.load(Ordering::SeqCst) {
                    return;
                }
                // Connection lost: reconnect with backoff, re-register,
                // resubscribe-and-revalidate.
                drbac_obs::static_counter!("drbac.net.tcp.reconnect.count").inc();
                drbac_obs::event!(
                    "drbac.net.tcp.reconnect",
                    "home" => inner.home.to_string(),
                    "subscriber" => inner.wallet.addr().to_string(),
                );
                let mut attempt: u64 = 0;
                let next = loop {
                    if inner.closed.load(Ordering::SeqCst) {
                        return;
                    }
                    match inner.establish() {
                        Ok(s) => break s,
                        Err(_) => {
                            inner
                                .transport
                                .backoff(drbac_core::Ticks(1u64 << attempt.min(6)));
                            attempt += 1;
                        }
                    }
                };
                match next.try_clone() {
                    Ok(clone) => *inner.current.lock() = Some(clone),
                    Err(_) => return,
                }
                stream = next;
                inner.resubscribe();
            }
        }
    }
}
