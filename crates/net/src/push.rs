//! Asynchronous event-push delivery: a threaded pub/sub hub.
//!
//! The simulator ([`crate::SimNet`]) delivers subscription pushes
//! deterministically for tests; this hub demonstrates the same *event
//! push model* (paper §4.2.2 — "minimize polling") with real threads and
//! channels, as a long-running service would deploy it. Subscribers
//! receive [`DelegationEvent`]s on a crossbeam channel the moment a
//! publisher posts them — no polling loop anywhere.

use std::collections::HashMap;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use drbac_core::DelegationId;
use drbac_wallet::DelegationEvent;

enum Command {
    Subscribe(DelegationId, Sender<DelegationEvent>),
    SubscribeAll(Sender<DelegationEvent>),
    Publish(DelegationEvent),
    Shutdown,
}

/// A threaded pub/sub fan-out hub for delegation events.
///
/// # Example
///
/// ```
/// use drbac_core::DelegationId;
/// use drbac_net::PushHub;
/// use drbac_wallet::{DelegationEvent, InvalidationReason};
///
/// let hub = PushHub::new();
/// let id = DelegationId([1; 32]);
/// let rx = hub.subscribe(id);
/// hub.publish(DelegationEvent { delegation: id, reason: InvalidationReason::Revoked });
/// let event = rx.recv().unwrap();
/// assert_eq!(event.delegation, id);
/// hub.shutdown();
/// ```
#[derive(Debug)]
pub struct PushHub {
    tx: Sender<Command>,
    worker: Option<JoinHandle<()>>,
}

impl PushHub {
    /// Starts the hub's worker thread.
    pub fn new() -> Self {
        let (tx, rx) = unbounded::<Command>();
        let worker = std::thread::Builder::new()
            .name("drbac-push-hub".into())
            .spawn(move || Self::run(rx))
            .expect("spawn push hub worker");
        PushHub {
            tx,
            worker: Some(worker),
        }
    }

    fn run(rx: Receiver<Command>) {
        let mut by_id: HashMap<DelegationId, Vec<Sender<DelegationEvent>>> = HashMap::new();
        let mut all: Vec<Sender<DelegationEvent>> = Vec::new();
        while let Ok(cmd) = rx.recv() {
            match cmd {
                Command::Subscribe(id, tx) => {
                    drbac_obs::static_counter!("drbac.net.push.subscribe.count").inc();
                    by_id.entry(id).or_default().push(tx);
                }
                Command::SubscribeAll(tx) => {
                    drbac_obs::static_counter!("drbac.net.push.subscribe.count").inc();
                    all.push(tx);
                }
                Command::Publish(event) => {
                    drbac_obs::static_counter!("drbac.net.push.publish.count").inc();
                    let mut delivered = 0u64;
                    if let Some(subs) = by_id.get_mut(&event.delegation) {
                        let before = subs.len();
                        subs.retain(|tx| tx.send(event).is_ok());
                        delivered += subs.len() as u64;
                        let pruned = (before - subs.len()) as u64;
                        if pruned > 0 {
                            drbac_obs::static_counter!("drbac.net.push.pruned.count").add(pruned);
                        }
                    }
                    let before = all.len();
                    all.retain(|tx| tx.send(event).is_ok());
                    delivered += all.len() as u64;
                    let pruned = (before - all.len()) as u64;
                    if pruned > 0 {
                        drbac_obs::static_counter!("drbac.net.push.pruned.count").add(pruned);
                    }
                    if delivered > 0 {
                        drbac_obs::static_counter!("drbac.net.push.delivered.count")
                            .add(delivered);
                    }
                }
                Command::Shutdown => break,
            }
        }
    }

    /// Subscribes to events for one delegation; events arrive on the
    /// returned channel.
    pub fn subscribe(&self, id: DelegationId) -> Receiver<DelegationEvent> {
        let (tx, rx) = unbounded();
        let _ = self.tx.send(Command::Subscribe(id, tx));
        rx
    }

    /// Subscribes to every published event (directory-cache style).
    pub fn subscribe_all(&self) -> Receiver<DelegationEvent> {
        let (tx, rx) = unbounded();
        let _ = self.tx.send(Command::SubscribeAll(tx));
        rx
    }

    /// Publishes an event to all matching subscribers.
    pub fn publish(&self, event: DelegationEvent) {
        let _ = self.tx.send(Command::Publish(event));
    }

    /// A cheap, cloneable publishing handle — hand these to wallet
    /// callbacks or other threads without sharing the hub itself.
    pub fn publisher(&self) -> PushPublisher {
        PushPublisher {
            tx: self.tx.clone(),
        }
    }

    /// Stops the worker and waits for it to exit. Prefer this to relying
    /// on `Drop`, which only signals shutdown without blocking.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Command::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Default for PushHub {
    fn default() -> Self {
        Self::new()
    }
}

/// A cloneable handle that can publish into a [`PushHub`].
#[derive(Debug, Clone)]
pub struct PushPublisher {
    tx: Sender<Command>,
}

impl PushPublisher {
    /// Publishes an event; silently dropped if the hub has shut down.
    pub fn publish(&self, event: DelegationEvent) {
        let _ = self.tx.send(Command::Publish(event));
    }
}

impl Drop for PushHub {
    /// Signals shutdown without blocking (C-DTOR-BLOCK); use
    /// [`PushHub::shutdown`] for a synchronous stop.
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Shutdown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_wallet::InvalidationReason;
    use std::time::Duration;

    fn event(b: u8) -> DelegationEvent {
        DelegationEvent {
            delegation: DelegationId([b; 32]),
            reason: InvalidationReason::Revoked,
        }
    }

    #[test]
    fn push_reaches_matching_subscribers_only() {
        let hub = PushHub::new();
        let rx1 = hub.subscribe(DelegationId([1; 32]));
        let rx2 = hub.subscribe(DelegationId([2; 32]));
        hub.publish(event(1));
        assert_eq!(rx1.recv_timeout(Duration::from_secs(2)).unwrap(), event(1));
        assert!(rx2.recv_timeout(Duration::from_millis(50)).is_err());
        hub.shutdown();
    }

    #[test]
    fn subscribe_all_sees_everything() {
        let hub = PushHub::new();
        let rx = hub.subscribe_all();
        hub.publish(event(1));
        hub.publish(event(2));
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), event(1));
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), event(2));
        hub.shutdown();
    }

    #[test]
    fn multiple_subscribers_fan_out() {
        let hub = PushHub::new();
        let id = DelegationId([3; 32]);
        let rxs: Vec<_> = (0..4).map(|_| hub.subscribe(id)).collect();
        hub.publish(event(3));
        for rx in rxs {
            assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), event(3));
        }
        hub.shutdown();
    }

    #[test]
    fn publisher_handles_work_across_threads() {
        let hub = PushHub::new();
        let id = DelegationId([5; 32]);
        let rx = hub.subscribe(id);
        let publishers: Vec<_> = (0..4).map(|_| hub.publisher()).collect();
        let handles: Vec<_> = publishers
            .into_iter()
            .map(|p| std::thread::spawn(move || p.publish(event(5))))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for _ in 0..4 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), event(5));
        }
        hub.shutdown();
    }

    #[test]
    fn publisher_after_shutdown_is_silent() {
        let hub = PushHub::new();
        let publisher = hub.publisher();
        hub.shutdown();
        publisher.publish(event(6)); // must not panic
    }

    #[test]
    fn resubscription_after_hub_restart_restores_delivery() {
        // A hub restart (process crash) loses the subscriber table, just
        // like a WalletHost crash loses its subscriber registry: events
        // published before anyone re-registers vanish, and delivery only
        // resumes once subscribers re-subscribe against the new hub.
        let hub = PushHub::new();
        let id = DelegationId([7; 32]);
        let rx = hub.subscribe(id);
        hub.publish(event(7));
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), event(7));
        hub.shutdown();

        let hub = PushHub::new();
        hub.publish(event(7)); // nobody re-registered yet: lost
        let rx2 = hub.subscribe(id); // the recovery step
        hub.publish(event(7));
        assert_eq!(rx2.recv_timeout(Duration::from_secs(2)).unwrap(), event(7));
        assert!(
            rx2.recv_timeout(Duration::from_millis(50)).is_err(),
            "the pre-resubscription event was lost, not queued"
        );
        // The old channel is dead wood from the previous incarnation.
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        hub.shutdown();
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let hub = PushHub::new();
        let id = DelegationId([4; 32]);
        drop(hub.subscribe(id));
        let rx = hub.subscribe(id);
        hub.publish(event(4)); // must not wedge on the dropped receiver
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), event(4));
        hub.shutdown();
    }
}
