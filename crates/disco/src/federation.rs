//! A second coalition scenario: the paper's *governmental/military*
//! setting (§1: "governmental/military, in which several nations work
//! together to achieve a common goal").
//!
//! Three nations — Alpha, Bravo, Charlie — form a joint task force.
//! Alpha shares its intelligence feed with Bravo's command under tight
//! controls:
//!
//! * the grant is **depth-limited** (`<depth: 2>`): Bravo command may
//!   enroll its officers (one extension), but officers cannot re-delegate
//!   further — the transitive-trust extension sketched in the paper's §6;
//! * a **clearance** valued attribute caps what Bravo-side principals can
//!   see (`Alpha.clearance <= 2` of a declared base 3);
//! * Charlie is in the coalition but receives **no** delegation from
//!   Alpha: no chain, no access — each nation keeps what it doesn't
//!   share.

use drbac_core::{
    AttrDeclaration, AttrOp, AttrRef, DiscoveryTag, LocalEntity, Node, Role, SignedAttrDeclaration,
    SimClock, SubjectFlag, Ticks,
};
use drbac_crypto::SchnorrGroup;
use drbac_net::{Directory, DiscoveryAgent, SimNet, WalletHost};
use drbac_wallet::Wallet;
use rand::Rng;

/// Wallet addresses.
pub const ALPHA_WALLET: &str = "wallet.alpha.mil";
/// Bravo's home wallet.
pub const BRAVO_WALLET: &str = "wallet.bravo.mil";
/// The task-force server's local wallet.
pub const TASKFORCE_WALLET: &str = "wallet.taskforce.mil";

/// The constructed federation world.
pub struct FederationScenario {
    /// Shared logical clock.
    pub clock: SimClock,
    /// The simulated network.
    pub net: SimNet,
    /// Nation Alpha (owns the intel feed).
    pub alpha: LocalEntity,
    /// Nation Bravo (trusted partner).
    pub bravo: LocalEntity,
    /// Nation Charlie (coalition member without intel access).
    pub charlie: LocalEntity,
    /// A Bravo officer enrolled by Bravo command.
    pub bravo_officer: LocalEntity,
    /// A recruit the officer will (illegally) try to enroll.
    pub recruit: LocalEntity,
    /// A Charlie analyst.
    pub charlie_analyst: LocalEntity,
    /// Alpha's home wallet host.
    pub alpha_home: WalletHost,
    /// Bravo's home wallet host.
    pub bravo_home: WalletHost,
    /// The task-force server host (runs the feed).
    pub taskforce: WalletHost,
    /// `Alpha.clearance` (`<=`, base 3).
    pub clearance: AttrRef,
}

impl FederationScenario {
    /// Builds nations, wallets, tags, and the delegation structure.
    pub fn build<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let group = SchnorrGroup::test_256();
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), Ticks(1));

        let alpha = LocalEntity::generate("Alpha", group.clone(), rng);
        let bravo = LocalEntity::generate("Bravo", group.clone(), rng);
        let charlie = LocalEntity::generate("Charlie", group.clone(), rng);
        let bravo_officer = LocalEntity::generate("BravoOfficer", group.clone(), rng);
        let recruit = LocalEntity::generate("Recruit", group.clone(), rng);
        let charlie_analyst = LocalEntity::generate("CharlieAnalyst", group, rng);

        let alpha_home = net.add_host(ALPHA_WALLET, Wallet::new(ALPHA_WALLET, clock.clone()));
        let bravo_home = net.add_host(BRAVO_WALLET, Wallet::new(BRAVO_WALLET, clock.clone()));
        let taskforce = net.add_host(
            TASKFORCE_WALLET,
            Wallet::new(TASKFORCE_WALLET, clock.clone()),
        );

        let intel = alpha.role("intel-feed");
        let command = bravo.role("command");
        let officers = bravo.role("officers");
        let clearance = alpha.attr("clearance", AttrOp::Min);

        let tag = |home: &str| {
            DiscoveryTag::new(home)
                .with_ttl(Ticks(60))
                .with_subject_flag(SubjectFlag::Search)
        };

        // Alpha declares the clearance base.
        let decl = SignedAttrDeclaration::sign(
            AttrDeclaration::new(clearance.clone(), 3.0).expect("finite"),
            &alpha,
        )
        .expect("alpha owns clearance");
        alpha_home
            .wallet()
            .publish_declaration(&decl)
            .expect("verifies");
        // The task-force server also needs the base to compute grants.
        taskforce
            .wallet()
            .publish_declaration(&decl)
            .expect("verifies");

        // The intergovernmental grant, depth-limited and clearance-capped:
        // [Bravo.command -> Alpha.intel-feed with Alpha.clearance <= 2
        //  <depth: 2>] Alpha.
        let grant = alpha
            .delegate(Node::role(command.clone()), Node::role(intel.clone()))
            .with_attr(clearance.clone(), 2.0)
            .expect("min operand")
            .max_extension_depth(2)
            .subject_tag(tag(BRAVO_WALLET))
            .object_tag(tag(ALPHA_WALLET))
            .sign(&alpha)
            .expect("self-certified");
        // Stored at the subject's home wallet (Bravo's), like Figure 2(a).
        bravo_home
            .wallet()
            .publish(grant, vec![])
            .expect("publishes");

        // Bravo runs its own RBAC: officers roll up into command.
        bravo_home
            .wallet()
            .publish(
                bravo
                    .delegate(Node::role(officers.clone()), Node::role(command))
                    .subject_tag(tag(BRAVO_WALLET))
                    .sign(&bravo)
                    .expect("self-certified"),
                vec![],
            )
            .expect("publishes");
        // Bravo command enrolls the officer.
        bravo_home
            .wallet()
            .publish(
                bravo
                    .delegate(Node::entity(&bravo_officer), Node::role(officers))
                    .subject_tag(tag(BRAVO_WALLET))
                    .sign(&bravo)
                    .expect("self-certified"),
                vec![],
            )
            .expect("publishes");

        FederationScenario {
            clock,
            net,
            alpha,
            bravo,
            charlie,
            bravo_officer,
            recruit,
            charlie_analyst,
            alpha_home,
            bravo_home,
            taskforce,
            clearance,
        }
    }

    /// The protected role.
    pub fn intel_role(&self) -> Role {
        self.alpha.role("intel-feed")
    }

    /// A task-force discovery agent seeded with the nations' tags.
    pub fn taskforce_agent(&self) -> DiscoveryAgent {
        let mut directory = Directory::new();
        let tag = |home: &str| {
            DiscoveryTag::new(home)
                .with_ttl(Ticks(60))
                .with_subject_flag(SubjectFlag::Search)
        };
        directory.register_entity(self.alpha.id(), tag(ALPHA_WALLET));
        directory.register_entity(self.bravo.id(), tag(BRAVO_WALLET));
        // Bravo personnel carry credentials whose subject tags point at
        // Bravo's wallet (as Maria's did at BigISP in the case study).
        directory.register(Node::entity(&self.bravo_officer), tag(BRAVO_WALLET));
        directory.register(Node::entity(&self.recruit), tag(BRAVO_WALLET));
        DiscoveryAgent::new(self.net.clone(), self.taskforce.clone(), directory)
    }

    /// The officer requests the feed; expected to succeed with clearance 2
    /// through the chain officer → officers → command → intel-feed
    /// (3 hops: the depth-2 grant is extended by exactly 2 delegations).
    pub fn officer_access(&self) -> drbac_net::DiscoveryOutcome {
        let mut agent = self.taskforce_agent();
        agent.discover(
            &Node::entity(&self.bravo_officer),
            &Node::role(self.intel_role()),
            &[],
        )
    }

    /// The officer tries to pass the feed to a recruit: Bravo's namespace
    /// can mint the delegation, but the resulting 4-hop chain exceeds the
    /// grant's depth limit and must be refused.
    pub fn recruit_extension_blocked(&self) -> bool {
        // Bravo command happily creates a "recruits" layer…
        let recruits = self.bravo.role("recruits");
        self.bravo_home
            .wallet()
            .publish(
                self.bravo
                    .delegate(
                        Node::role(recruits.clone()),
                        Node::role(self.bravo.role("officers")),
                    )
                    .sign(&self.bravo)
                    .expect("self-certified"),
                vec![],
            )
            .expect("publishes");
        self.bravo_home
            .wallet()
            .publish(
                self.bravo
                    .delegate(Node::entity(&self.recruit), Node::role(recruits))
                    .sign(&self.bravo)
                    .expect("self-certified"),
                vec![],
            )
            .expect("publishes");
        // …but no proof for the recruit exists within the depth limit.
        let mut agent = self.taskforce_agent();
        let outcome = agent.discover(
            &Node::entity(&self.recruit),
            &Node::role(self.intel_role()),
            &[],
        );
        !outcome.found()
    }
}

impl std::fmt::Debug for FederationScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederationScenario")
            .field("alpha_home", &self.alpha_home)
            .field("bravo_home", &self.bravo_home)
            .field("taskforce", &self.taskforce)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario() -> FederationScenario {
        FederationScenario::build(&mut StdRng::seed_from_u64(1944))
    }

    #[test]
    fn officer_gets_feed_with_capped_clearance() {
        let s = scenario();
        let outcome = s.officer_access();
        assert!(outcome.found(), "trace: {:?}", outcome.trace);
        let monitor = outcome.monitor.unwrap();
        assert_eq!(monitor.proof().chain_len(), 3);
        assert_eq!(
            monitor.summary().get(&s.clearance),
            Some(2.0),
            "clearance capped at 2 of 3"
        );
    }

    #[test]
    fn recruit_extension_exceeds_depth_limit() {
        let s = scenario();
        assert!(s.officer_access().found());
        assert!(
            s.recruit_extension_blocked(),
            "depth-2 grant must not stretch to 4 hops"
        );
    }

    #[test]
    fn charlie_has_no_path() {
        let s = scenario();
        let mut agent = s.taskforce_agent();
        let outcome = agent.discover(
            &Node::entity(&s.charlie_analyst),
            &Node::role(s.intel_role()),
            &[],
        );
        assert!(!outcome.found());
        // Even Charlie itself (the nation) has no chain.
        let mut agent = s.taskforce_agent();
        let outcome = agent.discover(&Node::entity(&s.charlie), &Node::role(s.intel_role()), &[]);
        assert!(!outcome.found());
    }

    #[test]
    fn alpha_can_sever_bravo_entirely() {
        let s = scenario();
        let outcome = s.officer_access();
        let monitor = outcome.monitor.expect("granted");
        // Find the intergovernmental grant inside the proof and revoke it.
        let grant = monitor
            .proof()
            .all_certs()
            .into_iter()
            .find(|c| c.delegation().issuer() == s.alpha.id())
            .expect("alpha's grant is in the chain");
        let revocation =
            drbac_core::SignedRevocation::revoke(&grant, &s.alpha, s.clock.now()).unwrap();
        s.net
            .request(
                &BRAVO_WALLET.into(),
                drbac_net::proto::Request::Revoke(revocation),
            )
            .unwrap();
        s.net.run_until_idle();
        assert!(
            !monitor.is_valid(),
            "severing the grant kills live sessions"
        );
        assert!(!s.officer_access().found(), "and future requests");
    }
}
