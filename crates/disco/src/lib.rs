#![warn(missing_docs)]

//! DisCo-style application layer over dRBAC (paper §1, "Project
//! Context").
//!
//! DisCo "presents a simple, unified interface for application
//! deployment" and "utilizes dRBAC to manage authentication and access
//! control. Application developers reference dRBAC to register new
//! protected resources whose access is regulated using dRBAC roles."
//!
//! * [`ProtectedResource`] — registers a resource behind a role (plus
//!   optional attribute constraints) and hands out monitored
//!   [`AccessSession`]s;
//! * [`scenario`] — the paper's complete BigISP/AirNet case study
//!   (Table 3, Figure 2, §5), reconstructed end to end: every delegation,
//!   wallet, discovery tag, and the expected effective attribute values
//!   (BW = 100, storage = 30, hours = 18).

pub mod federation;
mod resource;
pub mod scenario;

pub use federation::FederationScenario;
pub use resource::{AccessError, AccessSession, ProtectedResource, ResilientSession};
pub use scenario::CoalitionScenario;
