//! Protected resources and monitored access sessions.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use drbac_core::{AttrConstraint, AttrSummary, Node, Role, Timestamp};
use drbac_net::DiscoveryAgent;
use drbac_wallet::{MonitorStatus, ProofMonitor, Wallet};

/// Errors from authorization attempts.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessError {
    /// No satisfying proof exists (locally or via discovery).
    Denied {
        /// The principal that was refused.
        principal: String,
        /// The role the resource requires.
        required: String,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::Denied {
                principal,
                required,
            } => {
                write!(
                    f,
                    "access denied: no proof that {principal} holds {required}"
                )
            }
        }
    }
}

impl std::error::Error for AccessError {}

/// A resource registered behind a dRBAC role.
///
/// # Example
///
/// ```
/// use drbac_core::{LocalEntity, Node, SimClock};
/// use drbac_crypto::SchnorrGroup;
/// use drbac_disco::ProtectedResource;
/// use drbac_wallet::Wallet;
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(121);
/// # let g = SchnorrGroup::test_256();
/// let airnet = LocalEntity::generate("AirNet", g.clone(), &mut rng);
/// let maria = LocalEntity::generate("Maria", g, &mut rng);
/// let wallet = Wallet::new("server", SimClock::new());
/// wallet.publish(
///     airnet.delegate(Node::entity(&maria), Node::role(airnet.role("access"))).sign(&airnet)?,
///     vec![],
/// )?;
///
/// let resource = ProtectedResource::new("internet-uplink", airnet.role("access"), wallet);
/// let session = resource.authorize(&Node::entity(&maria))?;
/// assert!(session.is_active());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProtectedResource {
    name: String,
    required_role: Role,
    constraints: Vec<AttrConstraint>,
    wallet: Wallet,
}

impl ProtectedResource {
    /// Registers a resource requiring `role`, authorized against
    /// `wallet`.
    pub fn new(name: impl Into<String>, role: Role, wallet: Wallet) -> Self {
        ProtectedResource {
            name: name.into(),
            required_role: role,
            constraints: Vec::new(),
            wallet,
        }
    }

    /// Adds an attribute constraint every session must satisfy.
    pub fn with_constraint(mut self, c: AttrConstraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// The resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The role required for access.
    pub fn required_role(&self) -> &Role {
        &self.required_role
    }

    /// Authorizes `principal` against the local wallet only.
    ///
    /// # Errors
    ///
    /// [`AccessError::Denied`] when no satisfying proof exists.
    pub fn authorize(&self, principal: &Node) -> Result<AccessSession, AccessError> {
        let monitor = self
            .wallet
            .query_direct(
                principal,
                &Node::role(self.required_role.clone()),
                &self.constraints,
            )
            .ok_or_else(|| self.denied(principal))?;
        Ok(self.session(principal, monitor))
    }

    /// Authorizes `principal`, running tag-directed distributed discovery
    /// if the local wallet cannot prove the relationship.
    ///
    /// # Errors
    ///
    /// [`AccessError::Denied`] when discovery also fails.
    pub fn authorize_with_discovery(
        &self,
        principal: &Node,
        agent: &mut DiscoveryAgent,
    ) -> Result<AccessSession, AccessError> {
        let outcome = agent.discover(
            principal,
            &Node::role(self.required_role.clone()),
            &self.constraints,
        );
        let monitor = outcome.monitor.ok_or_else(|| self.denied(principal))?;
        Ok(self.session(principal, monitor))
    }

    fn denied(&self, principal: &Node) -> AccessError {
        AccessError::Denied {
            principal: principal.to_string(),
            required: self.required_role.to_string(),
        }
    }

    fn session(&self, principal: &Node, monitor: ProofMonitor) -> AccessSession {
        let terminated = Arc::new(AtomicBool::new(false));
        let t2 = Arc::clone(&terminated);
        monitor.on_invalidate(move |_| t2.store(true, Ordering::SeqCst));
        AccessSession {
            resource: self.name.clone(),
            principal: principal.clone(),
            granted: monitor.summary().clone(),
            started_at: self.wallet.now(),
            monitor,
            terminated,
        }
    }
}

/// A self-healing session: when its authorizing proof is invalidated, it
/// immediately tries to re-authorize through any alternate delegation
/// path, and failing that registers a pending-proof watch so service
/// resumes the moment a new path is published.
///
/// This composes the paper's two recovery mechanisms (§4.2.2): "the
/// entity can request an alternate proof", and "if the wallet initially
/// cannot provide a proof ... register a callback that will be activated
/// when such a proof is available".
#[derive(Debug, Clone)]
pub struct ResilientSession {
    driver: Arc<SessionDriver>,
}

#[derive(Debug)]
struct SessionDriver {
    resource: ProtectedResource,
    principal: Node,
    current: parking_lot::Mutex<Option<AccessSession>>,
    /// How many times the session has been (re-)established.
    generation: std::sync::atomic::AtomicU64,
}

impl ResilientSession {
    /// `true` while some authorizing proof is valid.
    pub fn is_active(&self) -> bool {
        self.driver
            .current
            .lock()
            .as_ref()
            .is_some_and(|s| s.is_active())
    }

    /// How many times the session has been established (1 = initial).
    pub fn generation(&self) -> u64 {
        self.driver.generation.load(Ordering::SeqCst)
    }

    /// The current grants, while active.
    pub fn grants(&self) -> Option<AttrSummary> {
        let guard = self.driver.current.lock();
        guard
            .as_ref()
            .filter(|s| s.is_active())
            .map(|s| s.grants().clone())
    }
}

impl SessionDriver {
    /// Installs `session` as current and arms re-establishment on its
    /// invalidation.
    fn arm(self: &Arc<Self>, session: AccessSession) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        let monitor = session.monitor().clone();
        *self.current.lock() = Some(session);
        let driver = Arc::clone(self);
        monitor.on_invalidate(move |_| driver.reestablish());
    }

    /// Tries an alternate path now; otherwise waits for one.
    fn reestablish(self: &Arc<Self>) {
        match self.resource.authorize(&self.principal) {
            Ok(session) => self.arm(session),
            Err(_) => {
                let driver = Arc::clone(self);
                let wallet = self.resource.wallet.clone();
                wallet.watch_for_proof(
                    self.principal.clone(),
                    Node::role(self.resource.required_role.clone()),
                    self.resource.constraints.clone(),
                    move |monitor| {
                        let session = driver.resource.session(&driver.principal, monitor);
                        driver.arm(session);
                    },
                );
            }
        }
    }
}

impl ProtectedResource {
    /// Authorizes `principal` with automatic re-establishment across
    /// revocations (see [`ResilientSession`]).
    ///
    /// # Errors
    ///
    /// [`AccessError::Denied`] if no proof exists *now* (the resilient
    /// machinery only takes over once a session exists).
    pub fn authorize_resilient(&self, principal: &Node) -> Result<ResilientSession, AccessError> {
        let session = self.authorize(principal)?;
        let driver = Arc::new(SessionDriver {
            resource: self.clone(),
            principal: principal.clone(),
            current: parking_lot::Mutex::new(None),
            generation: std::sync::atomic::AtomicU64::new(0),
        });
        driver.arm(session);
        Ok(ResilientSession { driver })
    }
}

/// A granted, continuously monitored access session.
///
/// The session terminates automatically (and [`AccessSession::is_active`]
/// flips to `false`) the moment any delegation in its authorizing proof
/// is revoked or expires — the paper's prolonged-interaction guarantee.
#[derive(Debug, Clone)]
pub struct AccessSession {
    resource: String,
    principal: Node,
    granted: AttrSummary,
    started_at: Timestamp,
    monitor: ProofMonitor,
    terminated: Arc<AtomicBool>,
}

impl AccessSession {
    /// The resource being accessed.
    pub fn resource(&self) -> &str {
        &self.resource
    }

    /// The accessing principal.
    pub fn principal(&self) -> &Node {
        &self.principal
    }

    /// Effective attribute values granted at establishment (e.g. the
    /// paper's BW = 100, storage = 30, hours = 18).
    pub fn grants(&self) -> &AttrSummary {
        &self.granted
    }

    /// When the session began.
    pub fn started_at(&self) -> Timestamp {
        self.started_at
    }

    /// `true` while the authorizing proof remains valid.
    pub fn is_active(&self) -> bool {
        !self.terminated.load(Ordering::SeqCst) && self.monitor.is_valid()
    }

    /// The underlying proof monitor.
    pub fn monitor(&self) -> &ProofMonitor {
        &self.monitor
    }

    /// Registers a callback fired when the session terminates.
    pub fn on_termination(&self, cb: impl Fn(&MonitorStatus) + Send + Sync + 'static) {
        self.monitor.on_invalidate(cb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{AttrOp, LocalEntity, SignedRevocation, SimClock};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fx {
        airnet: LocalEntity,
        maria: LocalEntity,
        clock: SimClock,
        wallet: Wallet,
    }

    fn fx() -> Fx {
        let mut rng = StdRng::seed_from_u64(131);
        let g = SchnorrGroup::test_256();
        let clock = SimClock::new();
        Fx {
            airnet: LocalEntity::generate("AirNet", g.clone(), &mut rng),
            maria: LocalEntity::generate("Maria", g, &mut rng),
            wallet: Wallet::new("server", clock.clone()),
            clock,
        }
    }

    #[test]
    fn denied_without_credentials() {
        let f = fx();
        let resource = ProtectedResource::new("uplink", f.airnet.role("access"), f.wallet.clone());
        let err = resource.authorize(&Node::entity(&f.maria)).unwrap_err();
        assert!(matches!(err, AccessError::Denied { .. }));
        assert!(err.to_string().contains("access denied"));
    }

    #[test]
    fn session_reflects_revocation() {
        let f = fx();
        let cert = f
            .airnet
            .delegate(Node::entity(&f.maria), Node::role(f.airnet.role("access")))
            .sign(&f.airnet)
            .unwrap();
        f.wallet.publish(cert.clone(), vec![]).unwrap();
        let resource = ProtectedResource::new("uplink", f.airnet.role("access"), f.wallet.clone());
        let session = resource.authorize(&Node::entity(&f.maria)).unwrap();
        assert!(session.is_active());
        assert_eq!(session.resource(), "uplink");

        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = Arc::clone(&fired);
        session.on_termination(move |status| {
            assert!(!status.is_valid());
            fired2.store(true, Ordering::SeqCst);
        });

        let revocation = SignedRevocation::revoke(&cert, &f.airnet, f.clock.now()).unwrap();
        f.wallet.revoke(&revocation).unwrap();
        assert!(!session.is_active());
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn constraints_gate_authorization() {
        let f = fx();
        let bw = f.airnet.attr("BW", AttrOp::Min);
        let cert = f
            .airnet
            .delegate(Node::entity(&f.maria), Node::role(f.airnet.role("access")))
            .with_attr(bw.clone(), 50.0)
            .unwrap()
            .sign(&f.airnet)
            .unwrap();
        f.wallet.publish(cert, vec![]).unwrap();

        let generous = ProtectedResource::new("uplink", f.airnet.role("access"), f.wallet.clone())
            .with_constraint(AttrConstraint::at_least(bw.clone(), 50.0));
        assert!(generous.authorize(&Node::entity(&f.maria)).is_ok());

        let demanding = ProtectedResource::new("uplink", f.airnet.role("access"), f.wallet.clone())
            .with_constraint(AttrConstraint::at_least(bw, 51.0));
        assert!(demanding.authorize(&Node::entity(&f.maria)).is_err());
    }

    #[test]
    fn resilient_session_recovers_through_alternate_paths() {
        let f = fx();
        let access = f.airnet.role("access");
        let resource = ProtectedResource::new("uplink", access.clone(), f.wallet.clone());

        // Two independent grants exist up front.
        let direct = f
            .airnet
            .delegate(Node::entity(&f.maria), Node::role(access.clone()))
            .serial(1)
            .sign(&f.airnet)
            .unwrap();
        let backup = f
            .airnet
            .delegate(Node::entity(&f.maria), Node::role(access.clone()))
            .serial(2)
            .sign(&f.airnet)
            .unwrap();
        f.wallet.publish(direct.clone(), vec![]).unwrap();
        f.wallet.publish(backup.clone(), vec![]).unwrap();

        let session = resource
            .authorize_resilient(&Node::entity(&f.maria))
            .unwrap();
        assert!(session.is_active());
        assert_eq!(session.generation(), 1);

        // Kill whichever grant the session uses; it must re-establish on
        // the other immediately.
        let first = SignedRevocation::revoke(&direct, &f.airnet, f.clock.now()).unwrap();
        f.wallet.revoke(&first).unwrap();
        assert!(
            session.is_active(),
            "alternate path keeps the session alive"
        );
        assert_eq!(session.generation(), 2);

        // Kill the backup too: the session goes dormant...
        let second = SignedRevocation::revoke(&backup, &f.airnet, f.clock.now()).unwrap();
        f.wallet.revoke(&second).unwrap();
        assert!(!session.is_active());

        // ...and resumes when a new grant is published (pending-proof
        // watch).
        f.wallet
            .publish(
                f.airnet
                    .delegate(Node::entity(&f.maria), Node::role(access))
                    .serial(3)
                    .sign(&f.airnet)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        assert!(session.is_active(), "watch re-established the session");
        assert!(session.generation() >= 3);
        assert!(session.grants().is_some());
    }

    #[test]
    fn session_grants_expose_attr_summary() {
        let f = fx();
        let bw = f.airnet.attr("BW", AttrOp::Min);
        let cert = f
            .airnet
            .delegate(Node::entity(&f.maria), Node::role(f.airnet.role("access")))
            .with_attr(bw.clone(), 75.0)
            .unwrap()
            .sign(&f.airnet)
            .unwrap();
        f.wallet.publish(cert, vec![]).unwrap();
        let resource = ProtectedResource::new("uplink", f.airnet.role("access"), f.wallet.clone());
        let session = resource.authorize(&Node::entity(&f.maria)).unwrap();
        assert_eq!(session.grants().get(&bw), Some(75.0));
    }
}
