//! The paper's extended example, end to end (§1.1, Table 3, Figure 2,
//! §5).
//!
//! "BigISP and AirNet strike up a marketing partnership in which BigISP
//! members can use AirNet's services in a limited fashion ... Sheila, who
//! works in the marketing department at AirNet, administers the deal.
//! Maria, a BigISP member, will attempt to access AirNet facilities."
//!
//! ## Reconstructed Table 3
//!
//! The published paper's Table 3 lists the five supporting delegations;
//! reconstructed here (with the §5 numbers) as:
//!
//! 1. `[Maria → BigISP.member] Mark` — third-party, supported by Mark's
//!    `memberServices` chain (Table 1 delegations (1)–(2)),
//! 2. `[BigISP.member → AirNet.member with AirNet.BW <= 100 and
//!    AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila` — the
//!    coalition delegation, third-party with foreign attribute clauses,
//! 3. `[Sheila → AirNet.mktg] AirNet` — self-certified,
//! 4. `[AirNet.mktg → AirNet.member'] AirNet` — assignment delegation,
//! 5. `[AirNet.mktg → AirNet.BW <=' / storage -=' / hours *='] AirNet` —
//!    attribute-assignment delegations (the paper shows the `storage`
//!    one as its delegation (5)),
//! 6. `[AirNet.member → AirNet.access] AirNet` — the self-certified root
//!    the AirNet server's direct query returns in Figure 2 step 4.
//!
//! AirNet's declared base values — BW 200, storage 50, hours 60 — come
//! from §5 step 5: "a BW (bandwidth) of 100 units (≤ 200), server storage
//! of 30 units (= 50 − 20), and a limit of 18 hours (= 60 × 0.3)".

use std::sync::Arc;

use drbac_core::{
    AttrDeclaration, AttrOp, AttrRef, DiscoveryTag, LocalEntity, Node, Proof, ProofStep, Role,
    SignedAttrDeclaration, SignedDelegation, SignedRevocation, SimClock, SubjectFlag, Ticks,
};
use drbac_crypto::SchnorrGroup;
use drbac_net::{
    proto::Request, Directory, DiscoveryAgent, DiscoveryOutcome, FaultPlan, RetryPolicy, SimNet,
    WalletHost,
};
use drbac_wallet::Wallet;
use rand::Rng;

/// Wallet addresses used by the scenario.
pub const SERVER_WALLET: &str = "wallet.server.airnet.example";
/// BigISP's home wallet address.
pub const BIGISP_WALLET: &str = "wallet.bigisp.example";
/// AirNet's home wallet address.
pub const AIRNET_WALLET: &str = "wallet.airnet.example";

/// The fully constructed coalition world.
pub struct CoalitionScenario {
    /// Shared logical clock.
    pub clock: SimClock,
    /// The simulated network.
    pub net: SimNet,
    /// BigISP (Maria's regular ISP).
    pub big_isp: LocalEntity,
    /// AirNet (the airport network operator).
    pub air_net: LocalEntity,
    /// Maria, the roaming BigISP member.
    pub maria: LocalEntity,
    /// Mark, BigISP's member-services agent.
    pub mark: LocalEntity,
    /// Sheila, AirNet marketing, who administers the deal.
    pub sheila: LocalEntity,
    /// The AirNet access server's local (initially empty) wallet host.
    pub server: WalletHost,
    /// BigISP's home wallet host.
    pub bigisp_home: WalletHost,
    /// AirNet's home wallet host.
    pub airnet_home: WalletHost,
    /// Delegation (1): Maria's membership credential with its support.
    pub maria_cert: Arc<SignedDelegation>,
    /// Support proof for delegation (1) (Mark ⇒ BigISP.member').
    pub maria_support: Proof,
    /// Delegation (2): the coalition delegation issued by Sheila.
    pub partnership_cert: Arc<SignedDelegation>,
    /// Delegation (6): the AirNet access root.
    pub access_cert: Arc<SignedDelegation>,
    /// AirNet.BW (`<=`, base 200).
    pub bw: AttrRef,
    /// AirNet.storage (`-=`, base 50).
    pub storage: AttrRef,
    /// AirNet.hours (`*=`, base 60).
    pub hours: AttrRef,
}

impl CoalitionScenario {
    /// Builds the whole world: entities, wallets, tags, declarations, and
    /// every delegation of the reconstructed Table 3, each published in
    /// its subject's home wallet exactly as Figure 2(a) shows.
    pub fn build<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let group = SchnorrGroup::test_256();
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), Ticks(1));

        let big_isp = LocalEntity::generate("BigISP", group.clone(), rng);
        let air_net = LocalEntity::generate("AirNet", group.clone(), rng);
        let maria = LocalEntity::generate("Maria", group.clone(), rng);
        let mark = LocalEntity::generate("Mark", group.clone(), rng);
        let sheila = LocalEntity::generate("Sheila", group, rng);

        let server = net.add_host(SERVER_WALLET, Wallet::new(SERVER_WALLET, clock.clone()));
        let bigisp_home = net.add_host(BIGISP_WALLET, Wallet::new(BIGISP_WALLET, clock.clone()));
        let airnet_home = net.add_host(AIRNET_WALLET, Wallet::new(AIRNET_WALLET, clock.clone()));

        // Roles.
        let member = big_isp.role("member");
        let member_services = big_isp.role("memberServices");
        let airnet_member = air_net.role("member");
        let airnet_access = air_net.role("access");
        let mktg = air_net.role("mktg");

        // Valued attributes, each bound to its single operator (§3.2.1).
        let bw = air_net.attr("BW", AttrOp::Min);
        let storage = air_net.attr("storage", AttrOp::Subtract);
        let hours = air_net.attr("hours", AttrOp::Scale);

        // Discovery tags: "All entities and roles in our example are
        // assumed to be tagged with the subject discovery type 'S'".
        // Learned tags lapse after their TTL, so it must exceed the
        // worst-case discovery latency of the chaos runs (retries and
        // timeouts burn simulated ticks); expiry behaviour itself is
        // exercised by the dedicated TTL tests in `drbac-net`.
        let tag = |home: &str| {
            DiscoveryTag::new(home)
                .with_ttl(Ticks(240))
                .with_subject_flag(SubjectFlag::Search)
        };
        let bigisp_tag = tag(BIGISP_WALLET);
        let airnet_tag = tag(AIRNET_WALLET);

        // AirNet declares the attribute bases (§5 step 5 numbers).
        for (attr, base) in [(&bw, 200.0), (&storage, 50.0), (&hours, 60.0)] {
            let decl = SignedAttrDeclaration::sign(
                AttrDeclaration::new(attr.clone(), base).expect("finite base"),
                &air_net,
            )
            .expect("AirNet owns its attributes");
            airnet_home
                .wallet()
                .publish_declaration(&decl)
                .expect("verifies");
        }

        // Table 1 delegations (1)-(2): Mark's authority over BigISP.member.
        let t1_mark_services = big_isp
            .delegate(Node::entity(&mark), Node::role(member_services.clone()))
            .sign(&big_isp)
            .expect("self-certified");
        let t1_services_admin = big_isp
            .delegate(
                Node::role(member_services),
                Node::role_admin(member.clone()),
            )
            .sign(&big_isp)
            .expect("self-certified");
        let maria_support = Proof::from_steps(vec![
            ProofStep::new(t1_mark_services),
            ProofStep::new(t1_services_admin),
        ])
        .expect("linked chain");

        // Delegation (1): [Maria -> BigISP.member] Mark, tagged so the
        // server can find BigISP.member's home wallet.
        let maria_cert: Arc<SignedDelegation> = Arc::new(
            mark.delegate(Node::entity(&maria), Node::role(member.clone()))
                .object_tag(bigisp_tag.clone())
                .sign(&mark)
                .expect("Mark signs"),
        );

        // Sheila's authority: (3) Sheila in AirNet.mktg, (4) mktg holds
        // member', (5) mktg holds the three attribute-assignment rights.
        let sheila_mktg = air_net
            .delegate(Node::entity(&sheila), Node::role(mktg.clone()))
            .sign(&air_net)
            .expect("self-certified");
        let mktg_member_admin = air_net
            .delegate(
                Node::role(mktg.clone()),
                Node::role_admin(airnet_member.clone()),
            )
            .sign(&air_net)
            .expect("assignment delegation");
        let role_support = Proof::from_steps(vec![
            ProofStep::new(sheila_mktg.clone()),
            ProofStep::new(mktg_member_admin),
        ])
        .expect("linked");
        let mut partnership_supports = vec![role_support];
        for attr in [&bw, &storage, &hours] {
            let grant = air_net
                .delegate(Node::role(mktg.clone()), Node::attr_admin(attr.clone()))
                .sign(&air_net)
                .expect("attribute assignment");
            partnership_supports.push(
                Proof::from_steps(vec![
                    ProofStep::new(sheila_mktg.clone()),
                    ProofStep::new(grant),
                ])
                .expect("linked"),
            );
        }

        // Delegation (2): the coalition delegation (Table 2's example (4)).
        let partnership_cert: Arc<SignedDelegation> = Arc::new(
            sheila
                .delegate(
                    Node::role(member.clone()),
                    Node::role(airnet_member.clone()),
                )
                .with_attr(bw.clone(), 100.0)
                .expect("valid min operand")
                .with_attr(storage.clone(), 20.0)
                .expect("valid subtract operand")
                .with_attr(hours.clone(), 0.3)
                .expect("valid scale operand")
                .subject_tag(bigisp_tag.clone())
                .object_tag(airnet_tag.clone())
                .acting_as(Node::role(mktg.clone()))
                .sign(&sheila)
                .expect("Sheila signs"),
        );

        // Delegation (6): [AirNet.member -> AirNet.access] AirNet.
        let access_cert: Arc<SignedDelegation> = Arc::new(
            air_net
                .delegate(Node::role(airnet_member.clone()), Node::role(airnet_access))
                .subject_tag(airnet_tag.clone())
                .object_tag(airnet_tag.clone())
                .sign(&air_net)
                .expect("self-certified root"),
        );

        // Figure 2(a) initial placement: each delegation (with its support
        // proof) stored in its subject's home wallet.
        bigisp_home
            .wallet()
            .publish(Arc::clone(&partnership_cert), partnership_supports)
            .expect("partnership publishes with supports");
        airnet_home
            .wallet()
            .publish(Arc::clone(&access_cert), vec![])
            .expect("access root publishes");

        CoalitionScenario {
            clock,
            net,
            big_isp,
            air_net,
            maria,
            mark,
            sheila,
            server,
            bigisp_home,
            airnet_home,
            maria_cert,
            maria_support,
            partnership_cert,
            access_cert,
            bw,
            storage,
            hours,
        }
    }

    /// As [`CoalitionScenario::build`], then installs `plan` on the
    /// network — the chaos variant of the walkthrough. The world is
    /// built fault-free (out-of-band provisioning); only the discovery,
    /// subscription, and revocation traffic that follows runs under
    /// injected faults.
    pub fn build_with_faults<R: Rng + ?Sized>(rng: &mut R, plan: FaultPlan) -> Self {
        let scenario = Self::build(rng);
        scenario.net.set_fault_plan(Some(plan));
        scenario
    }

    /// The role AirNet's server protects.
    pub fn access_role(&self) -> Role {
        self.air_net.role("access")
    }

    /// Figure 2 step 1: Maria's software presents delegation (1) (with
    /// its support proof) to the AirNet server, which verifies and
    /// absorbs it.
    pub fn present_credentials(&self) -> Proof {
        let presented =
            Proof::from_steps(vec![ProofStep::new(Arc::clone(&self.maria_cert))
                .with_support(self.maria_support.clone())])
            .expect("single step");
        self.server
            .wallet()
            .absorb_proof(&presented, &drbac_core::WalletAddr::new("maria.laptop"))
            .expect("presented credential verifies");
        presented
    }

    /// A discovery agent for the server, with the directory seeded from
    /// the tags on Maria's presented credential.
    pub fn server_agent(&self, presented: &Proof) -> DiscoveryAgent {
        let mut directory = Directory::new();
        directory.learn_from_proof(presented);
        DiscoveryAgent::new(self.net.clone(), self.server.clone(), directory)
    }

    /// Figure 2 steps 2–6: the server discovers, validates, and monitors
    /// the proof `Maria ⇒ AirNet.access`.
    pub fn establish_access(&self) -> DiscoveryOutcome {
        let presented = self.present_credentials();
        let mut agent = self.server_agent(&presented);
        agent.discover(
            &Node::entity(&self.maria),
            &Node::role(self.access_role()),
            &[],
        )
    }

    /// The §5 step-5 expected effective values:
    /// `[(BW, 100), (storage, 30), (hours, 18)]`.
    pub fn expected_grants(&self) -> [(AttrRef, f64); 3] {
        [
            (self.bw.clone(), 100.0),
            (self.storage.clone(), 30.0),
            (self.hours.clone(), 18.0),
        ]
    }

    /// Ends the partnership: Sheila revokes delegation (2) at BigISP's
    /// home wallet, and the push propagates to every subscriber. The
    /// revocation request is retried under [`RetryPolicy::standard`] so
    /// injected request loss cannot silently leave the grant alive.
    /// Returns the number of push messages delivered.
    pub fn revoke_partnership(&self) -> usize {
        let revocation =
            SignedRevocation::revoke(&self.partnership_cert, &self.sheila, self.clock.now())
                .expect("Sheila issued it");
        RetryPolicy::standard()
            .run(&self.net, &BIGISP_WALLET.into(), &Request::Revoke(revocation))
            .reply
            .expect("home wallet reachable within the retry budget");
        self.net.run_until_idle()
    }
}

impl std::fmt::Debug for CoalitionScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoalitionScenario")
            .field("server", &self.server)
            .field("bigisp_home", &self.bigisp_home)
            .field("airnet_home", &self.airnet_home)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_net::DiscoveryStep;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario() -> CoalitionScenario {
        CoalitionScenario::build(&mut StdRng::seed_from_u64(2002))
    }

    #[test]
    fn initial_wallet_placement_matches_figure_2a() {
        let s = scenario();
        assert!(s.server.wallet().is_empty(), "server wallet starts empty");
        // BigISP home: partnership + its 5 support credentials
        // (sheila→mktg, mktg→member', three attr grants).
        assert!(s.bigisp_home.wallet().contains(s.partnership_cert.id()));
        assert_eq!(s.bigisp_home.wallet().len(), 6);
        // AirNet home: the access root.
        assert_eq!(s.airnet_home.wallet().len(), 1);
    }

    #[test]
    fn case_study_reproduces_paper_numbers() {
        let s = scenario();
        let outcome = s.establish_access();
        assert!(outcome.found(), "trace: {:?}", outcome.trace);
        let monitor = outcome.monitor.as_ref().unwrap();
        for (attr, expected) in s.expected_grants() {
            let got = monitor.summary().get(&attr).unwrap_or(f64::NAN);
            assert!(
                (got - expected).abs() < 1e-9,
                "{attr}: expected {expected}, got {got}"
            );
        }
    }

    #[test]
    fn discovery_follows_figure_2_steps() {
        let s = scenario();
        let outcome = s.establish_access();
        let trace = &outcome.trace;
        // Step 2: local query fails.
        assert_eq!(trace[0], DiscoveryStep::LocalQuery { found: false });
        // Step 3: subject query at BigISP's home wallet.
        assert!(
            trace.iter().any(|t| matches!(
                t,
                DiscoveryStep::RemoteSubjectQuery { wallet, .. } if wallet.as_str() == BIGISP_WALLET
            )),
            "{trace:?}"
        );
        // Step 4: direct query at AirNet's home wallet succeeds.
        assert!(
            trace.iter().any(|t| matches!(
                t,
                DiscoveryStep::RemoteDirect { wallet, found: true, .. } if wallet.as_str() == AIRNET_WALLET
            )),
            "{trace:?}"
        );
        // Both remote wallets were contacted, in order.
        let contacted: Vec<_> = outcome
            .wallets_contacted
            .iter()
            .map(|w| w.as_str())
            .collect();
        assert_eq!(contacted, vec![AIRNET_WALLET, BIGISP_WALLET]); // BTreeSet order
    }

    #[test]
    fn partnership_revocation_terminates_access() {
        let s = scenario();
        let outcome = s.establish_access();
        let monitor = outcome.monitor.unwrap();
        assert!(monitor.is_valid());
        let delivered = s.revoke_partnership();
        assert!(delivered >= 1, "push reached the server wallet");
        assert!(!monitor.is_valid(), "session terminated by push");
        // Re-discovery now fails: the server learned the revocation.
        let mut agent = s.server_agent(&s.present_credentials());
        let retry = agent.discover(&Node::entity(&s.maria), &Node::role(s.access_role()), &[]);
        assert!(!retry.found());
    }

    #[test]
    fn unrelated_principal_is_refused() {
        let s = scenario();
        let presented = s.present_credentials();
        let mut agent = s.server_agent(&presented);
        let outcome = agent.discover(&Node::entity(&s.sheila), &Node::role(s.access_role()), &[]);
        assert!(!outcome.found());
    }
}
