//! The paper's extended example (§1.1, §5, Figure 2): Maria, a BigISP
//! member, obtains wireless Internet access through AirNet's airport
//! network on the strength of the BigISP–AirNet coalition.
//!
//! ```sh
//! cargo run --example coalition_airport
//! ```

use drbac::core::Node;
use drbac::disco::CoalitionScenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2002);
    let scenario = CoalitionScenario::build(&mut rng);

    println!("== Initial state (Figure 2a) ==");
    println!(
        "server wallet        : {} delegations",
        scenario.server.wallet().len()
    );
    println!(
        "BigISP home wallet   : {} delegations",
        scenario.bigisp_home.wallet().len()
    );
    println!(
        "AirNet home wallet   : {} delegations",
        scenario.airnet_home.wallet().len()
    );
    println!(
        "\npartnership delegation (Table 2 example (4)):\n  {}",
        scenario.partnership_cert.delegation()
    );

    println!("\n== Step 1: Maria presents her BigISP membership ==");
    let presented = scenario.present_credentials();
    println!("presented: {}", presented.steps()[0].cert().delegation());

    println!("\n== Steps 2-6: discovery, validation, monitoring ==");
    let mut agent = scenario.server_agent(&presented);
    let outcome = agent.discover(
        &Node::entity(&scenario.maria),
        &Node::role(scenario.access_role()),
        &[],
    );
    for (i, step) in outcome.trace.iter().enumerate() {
        println!("  step {}: {step}", i + 1);
    }
    println!(
        "wallets contacted: {:?}",
        outcome
            .wallets_contacted
            .iter()
            .map(|w| w.as_str())
            .collect::<Vec<_>>()
    );
    println!("network stats    : {:?}", scenario.net.stats());

    let monitor = outcome.monitor.expect("access authorized");
    println!("\naccess granted to Maria with:");
    for (attr, value) in &monitor.summary().values {
        println!("  {attr} = {value}");
    }
    // Paper §5 step 5: BW 100 (<=200), storage 30 (=50-20), hours 18 (=60*0.3).
    for (attr, expected) in scenario.expected_grants() {
        let got = monitor.summary().get(&attr).expect("granted");
        assert!((got - expected).abs() < 1e-9, "{attr}: {got} != {expected}");
    }
    println!("matches the paper's numbers: BW=100, storage=30, hours=18");

    println!("\n== The partnership ends: Sheila revokes delegation (2) ==");
    monitor.on_invalidate(|status| println!("  server notified: {status}"));
    let pushed = scenario.revoke_partnership();
    println!("push messages delivered: {pushed}");
    println!("Maria's session active : {}", monitor.is_valid());
    assert!(!monitor.is_valid());
}
