//! Valued attributes (§3.2.1): one role, many service levels.
//!
//! An ISP sells gold/silver/bronze tiers of the *same* `access` role by
//! modulating scalar attributes along the delegation chain instead of
//! minting a role per tier — "to avoid an explosion in the number of
//! roles".
//!
//! ```sh
//! cargo run --example attribute_modulation
//! ```

use drbac::core::{
    AttrConstraint, AttrDeclaration, AttrOp, LocalEntity, Node, SignedAttrDeclaration, SimClock,
};
use drbac::crypto::SchnorrGroup;
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let group = SchnorrGroup::test_256();
    let isp = LocalEntity::generate("ISP", group.clone(), &mut rng);
    let reseller = LocalEntity::generate("Reseller", group.clone(), &mut rng);

    let clock = SimClock::new();
    let wallet = Wallet::new("wallet.isp.example", clock);

    // Attributes, each bound to one monotone operator.
    let bandwidth = isp.attr("bandwidth", AttrOp::Min); //  <=  running minimum
    let storage = isp.attr("storage", AttrOp::Subtract); //  -=  subtract
    let priority = isp.attr("priority", AttrOp::Scale); //  *=  scale into [0,1]

    // The ISP declares base values.
    for (attr, base) in [(&bandwidth, 1000.0), (&storage, 100.0), (&priority, 1.0)] {
        let decl = SignedAttrDeclaration::sign(AttrDeclaration::new(attr.clone(), base)?, &isp)?;
        wallet.publish_declaration(&decl)?;
    }

    // Tier roles modulate access to the single protected role.
    let access = isp.role("access");
    let tiers = [
        ("gold", 1000.0, 0.0, 1.0),
        ("silver", 300.0, 40.0, 0.7),
        ("bronze", 50.0, 80.0, 0.25),
    ];
    for (name, bw, storage_cut, prio) in tiers {
        let tier_role = isp.role(name);
        wallet.publish(
            isp.delegate(Node::role(tier_role), Node::role(access.clone()))
                .with_attr(bandwidth.clone(), bw)?
                .with_attr(storage.clone(), storage_cut)?
                .with_attr(priority.clone(), prio)?
                .sign(&isp)?,
            vec![],
        )?;
    }

    // The reseller holds assignment rights and enrolls customers into
    // tiers (third-party delegation at work).
    for (name, _, _, _) in tiers {
        wallet.publish(
            isp.delegate(Node::entity(&reseller), Node::role_admin(isp.role(name)))
                .sign(&isp)?,
            vec![],
        )?;
    }
    let mut customers = Vec::new();
    for (name, _, _, _) in tiers {
        let customer = LocalEntity::generate(format!("{name}-customer"), group.clone(), &mut rng);
        wallet.publish(
            reseller
                .delegate(Node::entity(&customer), Node::role(isp.role(name)))
                .sign(&reseller)?,
            vec![],
        )?;
        customers.push((name, customer));
    }

    println!("effective access levels (base: bw=1000, storage=100, priority=1.0):");
    for (tier, customer) in &customers {
        let monitor = wallet
            .query_direct(&Node::entity(customer), &Node::role(access.clone()), &[])
            .expect("enrolled");
        println!("  {tier:7}: {}", monitor.summary());
    }

    // Constraint queries: who can stream at >= 200 units of bandwidth?
    println!("\ncustomers satisfying bandwidth >= 200:");
    let needs_bw = AttrConstraint::at_least(bandwidth.clone(), 200.0);
    for (tier, customer) in &customers {
        let ok = wallet
            .query_direct(
                &Node::entity(customer),
                &Node::role(access.clone()),
                std::slice::from_ref(&needs_bw),
            )
            .is_some();
        println!("  {tier:7}: {}", if ok { "yes" } else { "no" });
    }

    // Monotonicity: a sub-reseller can only narrow, never widen.
    let sub = LocalEntity::generate("SubReseller", group.clone(), &mut rng);
    wallet.publish(
        isp.delegate(Node::entity(&sub), Node::role_admin(isp.role("silver")))
            .sign(&isp)?,
        vec![],
    )?;
    // Setting ISP-namespace attributes from outside requires the
    // attribute-assignment right (§3.2.1) — without these two grants the
    // publication below is rejected with SupportNotProvided.
    for attr in [&bandwidth, &priority] {
        wallet.publish(
            isp.delegate(Node::entity(&sub), Node::attr_admin(attr.clone()))
                .sign(&isp)?,
            vec![],
        )?;
    }
    let end_user = LocalEntity::generate("EndUser", group, &mut rng);
    wallet.publish(
        sub.delegate(Node::entity(&end_user), Node::role(isp.role("silver")))
            .with_attr(bandwidth, 150.0)? // narrower than silver's 300
            .with_attr(priority, 0.5)? // halves again
            .sign(&sub)?,
        vec![],
    )?;
    let monitor = wallet
        .query_direct(&Node::entity(&end_user), &Node::role(access), &[])
        .expect("enrolled");
    println!(
        "\nend user via sub-reseller (narrowed silver): {}",
        monitor.summary()
    );
    Ok(())
}
