//! Quickstart: identities, delegations, proofs, monitoring, revocation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use drbac::core::{LocalEntity, Node, SignedRevocation, SimClock};
use drbac::crypto::SchnorrGroup;
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    let group = SchnorrGroup::test_256();

    // 1. Entities are PKI identities; each key defines a namespace.
    let university = LocalEntity::generate("University", group.clone(), &mut rng);
    let registrar = LocalEntity::generate("Registrar", group.clone(), &mut rng);
    let alice = LocalEntity::generate("Alice", group, &mut rng);
    println!("entities:");
    for e in [&university, &registrar, &alice] {
        println!("  {e}");
    }

    // 2. The university creates roles and delegates assignment authority:
    //    [Registrar -> University.student'] University
    let student = university.role("student");
    let grant_assignment = university
        .delegate(Node::entity(&registrar), Node::role_admin(student.clone()))
        .sign(&university)?;
    println!(
        "\nassignment delegation:\n  {}",
        grant_assignment.delegation()
    );

    // 3. The registrar (a third party!) enrolls Alice:
    //    [Alice -> University.student] Registrar
    let enrollment = registrar
        .delegate(Node::entity(&alice), Node::role(student.clone()))
        .sign(&registrar)?;
    println!("third-party delegation:\n  {}", enrollment.delegation());

    // 4. A wallet stores credentials and answers queries.
    let clock = SimClock::new();
    let wallet = Wallet::new("wallet.university.example", clock.clone());
    wallet.publish(grant_assignment, vec![])?;
    wallet.publish(enrollment.clone(), vec![])?;

    let monitor = wallet
        .query_direct(&Node::entity(&alice), &Node::role(student.clone()), &[])
        .expect("proof exists");
    println!(
        "\nproof found: {} (chain of {}, {} delegations monitored)",
        monitor.proof(),
        monitor.proof().chain_len(),
        monitor.watched().len()
    );
    assert!(monitor.is_valid());

    // 5. Continuous monitoring: revocation invalidates the live proof.
    monitor.on_invalidate(|status| println!("monitor callback fired: {status}"));
    let revocation = SignedRevocation::revoke(&enrollment, &registrar, clock.now())?;
    wallet.revoke(&revocation)?;
    assert!(!monitor.is_valid());
    println!("after revocation, proof is valid: {}", monitor.is_valid());

    // 6. Queries now refuse Alice.
    assert!(wallet
        .query_direct(&Node::entity(&alice), &Node::role(student), &[])
        .is_none());
    println!("re-query after revocation: denied");
    Ok(())
}
