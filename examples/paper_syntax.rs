//! Replays the paper's tables from their *textual* notation: every
//! delegation is written exactly as printed in Tables 1–3, parsed,
//! signed, and assembled into the validated proofs the paper describes.
//!
//! ```sh
//! cargo run --example paper_syntax
//! ```

use drbac::core::syntax::{parse_delegation, render_delegation, SyntaxContext};
use drbac::core::{
    AttrDeclaration, AttrOp, LocalEntity, Node, SignedAttrDeclaration, SignedDelegation, SimClock,
};
use drbac::crypto::SchnorrGroup;
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2002);
    let g = SchnorrGroup::test_256();
    let big_isp = LocalEntity::generate("BigISP", g.clone(), &mut rng);
    let air_net = LocalEntity::generate("AirNet", g.clone(), &mut rng);
    let mark = LocalEntity::generate("Mark", g.clone(), &mut rng);
    let maria = LocalEntity::generate("Maria", g.clone(), &mut rng);
    let sheila = LocalEntity::generate("Sheila", g, &mut rng);

    let mut ctx = SyntaxContext::new();
    let signers: Vec<&LocalEntity> = vec![&big_isp, &air_net, &mark, &maria, &sheila];
    for e in &signers {
        ctx.register_local(e);
    }
    // Attribute-operator bindings (the single-operator rule of §3.2.1).
    ctx.register_attr(air_net.id(), "BW", AttrOp::Min);
    ctx.register_attr(air_net.id(), "storage", AttrOp::Subtract);
    ctx.register_attr(air_net.id(), "hours", AttrOp::Scale);

    // The case-study delegations, verbatim in the paper's notation.
    let texts = [
        "[Mark -> BigISP.memberServices] BigISP",
        "[BigISP.memberServices -> BigISP.member'] BigISP",
        "[Maria -> BigISP.member] Mark",
        "[Sheila -> AirNet.mktg] AirNet",
        "[AirNet.mktg -> AirNet.member'] AirNet",
        "[AirNet.mktg -> AirNet.BW <= '] AirNet",
        "[AirNet.mktg -> AirNet.storage -= '] AirNet",
        "[AirNet.mktg -> AirNet.hours *= '] AirNet",
        "[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila",
        "[AirNet.member -> AirNet.access] AirNet",
    ];

    let clock = SimClock::new();
    let wallet = Wallet::new("wallet.example", clock);

    // AirNet's declared attribute bases (§5: 200, 50, 60).
    for (name, op, base) in [
        ("BW", AttrOp::Min, 200.0),
        ("storage", AttrOp::Subtract, 50.0),
        ("hours", AttrOp::Scale, 60.0),
    ] {
        let decl = AttrDeclaration::new(air_net.attr(name, op), base)?;
        wallet.publish_declaration(&SignedAttrDeclaration::sign(decl, &air_net)?)?;
    }

    println!("parsing, signing, and publishing the paper's delegations:\n");
    for text in texts {
        let delegation = parse_delegation(text, &ctx)?;
        let issuer = signers
            .iter()
            .find(|e| e.id() == delegation.issuer())
            .expect("issuer registered");
        let cert = SignedDelegation::sign(delegation, issuer)?;
        // Round-trip check: rendering reproduces parseable text.
        let rendered = render_delegation(cert.delegation(), &ctx);
        assert_eq!(parse_delegation(&rendered, &ctx)?, *cert.delegation());
        println!("  {rendered}");
        wallet.publish(cert, vec![])?;
    }

    // The headline question, §2: "Does principal P have the permissions
    // associated with role R?"
    let monitor = wallet
        .query_direct(
            &Node::entity(&maria),
            &Node::role(air_net.role("access")),
            &[],
        )
        .expect("Maria => AirNet.access");
    println!(
        "\nMaria => AirNet.access PROVED with {} chained delegations",
        monitor.proof().chain_len()
    );
    println!("granted: {}", monitor.summary());

    let bw = air_net.attr("BW", AttrOp::Min);
    let storage = air_net.attr("storage", AttrOp::Subtract);
    let hours = air_net.attr("hours", AttrOp::Scale);
    assert_eq!(monitor.summary().get(&bw), Some(100.0));
    assert_eq!(monitor.summary().get(&storage), Some(30.0));
    assert!((monitor.summary().get(&hours).unwrap() - 18.0).abs() < 1e-9);
    println!("matches §5: BW=100 (<=200), storage=30 (=50-20), hours=18 (=60*0.3)");
    Ok(())
}
