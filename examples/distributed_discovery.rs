//! Tag-directed discovery across a chain of organizations (§4.2.1).
//!
//! Four organizations each run their own wallet; a credential chain
//! crosses all of them. The querying server starts with nothing but the
//! user's first credential and the discovery tags on it, and stitches the
//! full proof together wallet by wallet.
//!
//! ```sh
//! cargo run --example distributed_discovery
//! ```

use drbac::core::{
    DiscoveryTag, LocalEntity, Node, Proof, ProofStep, SimClock, SubjectFlag, Ticks,
};
use drbac::crypto::SchnorrGroup;
use drbac::net::{Directory, DiscoveryAgent, SimNet};
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let net = SimNet::new(clock.clone(), Ticks(5)); // 5-tick link latency

    // Four orgs, each with a home wallet; a user known only to org 0.
    let orgs: Vec<LocalEntity> = (0..4)
        .map(|i| LocalEntity::generate(format!("Org{i}"), group.clone(), &mut rng))
        .collect();
    let user = LocalEntity::generate("Wanda", group, &mut rng);
    let hosts: Vec<_> = orgs
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let addr = format!("wallet.org{i}.example");
            net.add_host(addr.as_str(), Wallet::new(addr.as_str(), clock.clone()))
        })
        .collect();
    let server = net.add_host("server.local", Wallet::new("server.local", clock.clone()));

    let tag = |i: usize| {
        DiscoveryTag::new(format!("wallet.org{i}.example").as_str())
            .with_ttl(Ticks(60))
            .with_subject_flag(SubjectFlag::Search)
    };

    // The chain: Wanda -> Org0.partner -> Org1.partner -> Org2.partner ->
    // Org3.resource, each hop stored in its subject's home wallet, each
    // carrying tags pointing at the next hop's home.
    let user_cert = Arc::new(
        orgs[0]
            .delegate(Node::entity(&user), Node::role(orgs[0].role("partner")))
            .object_tag(tag(0))
            .sign(&orgs[0])?,
    );
    hosts[0].wallet().publish(Arc::clone(&user_cert), vec![])?;
    for i in 0..3 {
        // [Org_i.partner -> Org_{i+1}.partner] Org_{i+1}: self-certified in
        // the *object's* namespace, stored at the subject's home wallet.
        let object = if i == 2 {
            orgs[3].role("resource")
        } else {
            orgs[i + 1].role("partner")
        };
        let cert = orgs[i + 1]
            .delegate(Node::role(orgs[i].role("partner")), Node::role(object))
            .subject_tag(tag(i))
            .object_tag(tag(i + 1))
            .sign(&orgs[i + 1])?;
        hosts[i].wallet().publish(cert, vec![])?;
    }

    // Wanda presents her credential to the server.
    let presented = Proof::from_steps(vec![ProofStep::new(Arc::clone(&user_cert))])?;
    server
        .wallet()
        .absorb_proof(&presented, &"wanda.device".into())?;

    // Discovery: only the presented tag is known up front.
    let mut directory = Directory::new();
    directory.learn_from_proof(&presented);
    let mut agent = DiscoveryAgent::new(net.clone(), server.clone(), directory);
    let target = Node::role(orgs[3].role("resource"));
    let outcome = agent.discover(&Node::entity(&user), &target, &[]);

    println!("discovery mode: {:?}\n", outcome.mode);
    for (i, step) in outcome.trace.iter().enumerate() {
        println!("step {:2}: {step}", i + 1);
    }
    let monitor = outcome.monitor.expect("proof found");
    println!("\nproof: {}", monitor.proof());
    println!("chain hops: {}", monitor.proof().chain_len());
    println!(
        "wallets contacted: {:?}",
        outcome
            .wallets_contacted
            .iter()
            .map(|w| w.as_str())
            .collect::<Vec<_>>()
    );
    let stats = net.stats();
    println!(
        "network: {} messages total ({} subject queries, {} direct queries, {} subscriptions), clock now t{}",
        stats.total_messages,
        stats.requests("subject-query"),
        stats.requests("direct-query"),
        stats.requests("subscribe"),
        clock.now().0,
    );

    // The server's wallet is now a coherent cache of the whole chain.
    println!(
        "\nserver wallet holds {} credentials; stale entries: {}",
        server.wallet().len(),
        server.wallet().stale_entries().len()
    );
    clock.advance(Ticks(100));
    println!(
        "after 100 ticks, stale entries: {}",
        server.wallet().stale_entries().len()
    );
    Ok(())
}
