//! Observability end to end: install a trace recorder, run the paper's
//! BigISP/AirNet coalition walkthrough (discovery, then a revocation
//! push), and inspect what the instrumented layers emitted — per-hop
//! trace events, counters, and latency histogram summaries.
//!
//! ```sh
//! cargo run --example observability
//! ```

use drbac::disco::CoalitionScenario;
use drbac::obs::{self, RingRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Install a ring-buffer recorder: from here on every span!/event!
    //    in the instrumented layers is captured (without one they are
    //    no-ops costing a single atomic load).
    let recorder = RingRecorder::install(16384);
    obs::global().reset();

    // 2. Run the scenario: Maria presents her BigISP credential to the
    //    AirNet server, which discovers the proof across home wallets;
    //    then Sheila revokes the partnership and the push propagates.
    let mut rng = StdRng::seed_from_u64(42);
    let scenario = CoalitionScenario::build(&mut rng);
    let outcome = scenario.establish_access();
    println!(
        "access {} via {:?} search ({} wallets contacted)",
        if outcome.found() { "GRANTED" } else { "DENIED" },
        outcome.mode,
        outcome.wallets_contacted.len()
    );
    let monitor = outcome.monitor.expect("scenario grants access");
    let delivered = scenario.revoke_partnership();
    println!(
        "partnership revoked: {delivered} push delivered, monitor now {}",
        if monitor.is_valid() { "valid" } else { "invalid" }
    );
    obs::clear_recorder();

    // 3. The trace: spans nest (validate inside query inside discovery),
    //    events mark the per-hop decisions. Print a compact view.
    println!("\n== trace ({} events) ==", recorder.len());
    for event in recorder.events() {
        let indent = if event.parent != 0 { "  " } else { "" };
        match event.elapsed_ns {
            Some(ns) => println!("{indent}{} {} ({ns} ns)", event.kind.as_str(), event.name),
            None => println!("{indent}{} {}", event.kind.as_str(), event.name),
        }
    }

    // 4. The metrics: merge the scenario network's registry (per-SimNet
    //    wire accounting) with the process-global one (proof, wallet and
    //    discovery instruments), then render everything.
    let mut snapshot = obs::global().snapshot();
    snapshot.merge(scenario.net.registry().snapshot());
    println!("\n== metrics ==\n{}", snapshot.render_table());

    // 5. Histogram summaries are first-class values too.
    if let Some(h) = snapshot.histograms.get("drbac.core.proof.validate.ns") {
        println!(
            "proof validation: n={} mean={:.0}ns p50={}ns p99={}ns max={}ns",
            h.count,
            h.mean(),
            h.p50,
            h.p99,
            h.max
        );
    }

    // 6. And the full structured trace exports as JSON lines for offline
    //    tooling (here: just show the first line).
    let jsonl = recorder.to_jsonl();
    if let Some(first) = jsonl.lines().next() {
        println!("\nfirst JSONL trace line:\n{first}");
    }
}
