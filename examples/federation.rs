//! The military-coalition scenario (paper §1's "governmental/military"
//! setting): three nations, a depth-limited intelligence-sharing grant,
//! clearance caps, and unilateral severance.
//!
//! ```sh
//! cargo run --example federation
//! ```

use drbac::core::{Node, SignedRevocation};
use drbac::disco::federation::BRAVO_WALLET;
use drbac::disco::FederationScenario;
use drbac::net::proto::Request;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let s = FederationScenario::build(&mut StdRng::seed_from_u64(1944));

    println!("== Joint task force: Alpha shares its intel feed with Bravo ==");
    println!(
        "grant: [Bravo.command -> Alpha.intel-feed with Alpha.clearance <= 2 <depth: 2>] Alpha\n"
    );

    // 1. A Bravo officer is cleared through Bravo's own role hierarchy.
    let outcome = s.officer_access();
    let monitor = outcome.monitor.as_ref().expect("officer authorized");
    println!(
        "officer access granted via {} hops:",
        monitor.proof().chain_len()
    );
    for step in monitor.proof().steps() {
        println!("  {}", step.cert().delegation());
    }
    println!(
        "clearance granted: {} (base 3, capped by the grant)\n",
        monitor.summary().get(&s.clearance).unwrap()
    );

    // 2. The officer cannot stretch the grant to a recruit: the depth
    //    limit caps transitive trust.
    let blocked = s.recruit_extension_blocked();
    println!("recruit enrollment beyond the depth limit blocked: {blocked}");

    // 3. Charlie, though in the coalition, was never delegated the feed.
    let mut agent = s.taskforce_agent();
    let charlie = agent.discover(
        &Node::entity(&s.charlie_analyst),
        &Node::role(s.intel_role()),
        &[],
    );
    println!("charlie analyst denied: {}", !charlie.found());

    // 4. Alpha severs Bravo unilaterally — the revocation push kills the
    //    officer's live session.
    let grant = monitor
        .proof()
        .all_certs()
        .into_iter()
        .find(|c| c.delegation().issuer() == s.alpha.id())
        .expect("the intergovernmental grant");
    let revocation = SignedRevocation::revoke(&grant, &s.alpha, s.clock.now()).unwrap();
    s.net
        .request(&BRAVO_WALLET.into(), Request::Revoke(revocation))
        .unwrap();
    let pushed = s.net.run_until_idle();
    println!("\nAlpha revokes the grant: {pushed} push message(s) delivered");
    println!("officer session still active: {}", monitor.is_valid());
    assert!(!monitor.is_valid());
}
