//! The BigISP/AirNet case study (paper §1.1, Table 3, Figure 2, §5) run
//! over real TCP sockets: every coalition wallet sits behind its own
//! loopback [`WalletDaemon`], and the AirNet access server discovers,
//! validates, and monitors `Maria ⇒ AirNet.access` through a
//! [`TcpTransport`] — the same algorithm the SimNet examples use, on the
//! deployment shape §4.1 describes ("wallets are network services").
//!
//! ```sh
//! cargo run --example tcp_federation
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use drbac::core::{Node, SignedRevocation};
use drbac::disco::scenario::{AIRNET_WALLET, BIGISP_WALLET};
use drbac::disco::CoalitionScenario;
use drbac::net::proto::Request;
use drbac::net::{
    Directory, DiscoveryAgent, SubscriberLink, TcpConfig, TcpTransport, Transport, WalletDaemon,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn wait_until(timeout: Duration, cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

fn main() {
    // §1.1 / Table 3: build the coalition world — BigISP and AirNet's
    // partnership delegation, Maria's membership credential, Sheila's
    // marketing authority, and AirNet's attribute declarations (BW 200,
    // storage 50, hours 60), each published in its subject's home wallet
    // exactly as Figure 2(a) places them.
    let s = CoalitionScenario::build(&mut StdRng::seed_from_u64(2002));

    // §4.1 deployment: each home wallet becomes a socket service. The
    // scenario's wallets share state with their SimNet hosts, so binding
    // daemons over clones serves the same certificates over TCP.
    let bigisp = WalletDaemon::bind(
        "127.0.0.1:0",
        s.bigisp_home.wallet().clone(),
        TcpConfig::default(),
    )
    .expect("bind BigISP home daemon");
    let airnet = WalletDaemon::bind(
        "127.0.0.1:0",
        s.airnet_home.wallet().clone(),
        TcpConfig::default(),
    )
    .expect("bind AirNet home daemon");
    println!("== Coalition wallets as TCP services (paper §4.1) ==");
    println!("  {BIGISP_WALLET}  ->  {}", bigisp.local_addr());
    println!("  {AIRNET_WALLET}  ->  {}", airnet.local_addr());

    // Discovery tags carry wallet *names*; the transport's route table
    // maps those names to socket endpoints, so the tag-directed search
    // of §4.2 is unchanged.
    let transport = Arc::new(TcpTransport::new(TcpConfig::default()));
    transport.add_route(BIGISP_WALLET, bigisp.local_addr());
    transport.add_route(AIRNET_WALLET, airnet.local_addr());

    // §3.4 delegation subscriptions need a push path back to the
    // subscriber: the server keeps one persistent connection to each
    // home wallet it monitors certificates from, registered under its
    // own wallet address (SimNet delivers these in-process; TCP needs
    // the explicit link).
    let bigisp_link = SubscriberLink::open(
        BIGISP_WALLET,
        s.server.wallet().clone(),
        Arc::clone(&transport),
    )
    .expect("push link to BigISP home");
    let airnet_link = SubscriberLink::open(
        AIRNET_WALLET,
        s.server.wallet().clone(),
        Arc::clone(&transport),
    )
    .expect("push link to AirNet home");

    // Figure 2 step 1: Maria's software presents delegation (1) with its
    // support proof; the server verifies and absorbs it.
    let presented = s.present_credentials();
    println!("\n== Figure 2: Maria requests AirNet.access ==");
    println!("step 1: Maria presents [Maria -> BigISP.member] Mark (+ support)");

    // Figure 2 steps 2-6, §4.2: local query misses, the subject query at
    // BigISP's home returns the partnership delegation, the direct query
    // at AirNet's home closes the chain — every hop now a real
    // request/reply exchange on a pooled TCP connection.
    let mut directory = Directory::new();
    directory.learn_from_proof(&presented);
    let mut agent = DiscoveryAgent::new(
        Arc::clone(&transport),
        s.server.wallet().clone(),
        directory,
    );
    let outcome = agent.discover(&Node::entity(&s.maria), &Node::role(s.access_role()), &[]);
    assert!(outcome.found(), "trace: {:?}", outcome.trace);
    let monitor = outcome.monitor.as_ref().expect("access granted");
    println!(
        "steps 2-6: proof found over TCP via {} hops:",
        monitor.proof().chain_len()
    );
    for step in monitor.proof().steps() {
        println!("  {}", step.cert().delegation());
    }

    // §5 step 5: the effective attribute grants — BW 100 (≤ 200),
    // storage 30 (= 50 − 20), hours 18 (= 60 × 0.3).
    println!("\n== §5: effective valued-attribute grants ==");
    for (attr, expected) in s.expected_grants() {
        let got = monitor.summary().get(&attr).expect("granted");
        println!("  {attr} = {got} (paper: {expected})");
        assert!((got - expected).abs() < 1e-9);
    }

    // §3.4 / §6: Sheila ends the partnership. The revocation lands at
    // BigISP's home daemon over TCP; the daemon pushes the invalidation
    // down the server's subscriber link, and the live session dies —
    // "notification of revocation is immediate", no polling.
    let revocation =
        SignedRevocation::revoke(&s.partnership_cert, &s.sheila, s.clock.now()).expect("issuer");
    transport
        .request(&BIGISP_WALLET.into(), Request::Revoke(revocation))
        .expect("revocation accepted");
    let terminated = wait_until(Duration::from_secs(5), || !monitor.is_valid());
    println!("\n== Sheila revokes the partnership (paper §3.4) ==");
    println!("revocation pushed over the subscriber link; session terminated: {terminated}");
    assert!(terminated, "push must terminate the monitored session");

    // Re-discovery now denies: the server learned the revocation.
    let presented = s.present_credentials();
    let mut directory = Directory::new();
    directory.learn_from_proof(&presented);
    let mut agent = DiscoveryAgent::new(
        Arc::clone(&transport),
        s.server.wallet().clone(),
        directory,
    );
    let retry = agent.discover(&Node::entity(&s.maria), &Node::role(s.access_role()), &[]);
    println!("re-discovery after revocation denied: {}", !retry.found());
    assert!(!retry.found());

    bigisp_link.close();
    airnet_link.close();
    bigisp.shutdown();
    airnet.shutdown();
}
