//! Discovery over real threads: each organization's wallet runs as a
//! `WalletService` on its own thread; the discovery agent talks to them
//! through a `ServiceRegistry` — the same tag-directed algorithm the
//! deterministic simulator runs, on a production-shaped deployment.
//!
//! ```sh
//! cargo run --example threaded_services
//! ```

use drbac::core::syntax::{render_proof, SyntaxContext};
use drbac::core::{DiscoveryTag, LocalEntity, Node, SimClock, SubjectFlag, Ticks};
use drbac::crypto::SchnorrGroup;
use drbac::net::{Directory, DiscoveryAgent, ServiceRegistry, WalletService};
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(33);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();

    let supplier = LocalEntity::generate("Supplier", group.clone(), &mut rng);
    let logistics = LocalEntity::generate("Logistics", group.clone(), &mut rng);
    let retailer = LocalEntity::generate("Retailer", group.clone(), &mut rng);
    let clerk = LocalEntity::generate("Clerk", group, &mut rng);

    // One wallet service thread per organization.
    let registry = ServiceRegistry::new();
    let mut services = Vec::new();
    for (i, org) in ["supplier", "logistics", "retailer"].iter().enumerate() {
        let addr = format!("svc.{org}");
        let service = WalletService::spawn(Wallet::new(addr.as_str(), clock.clone()));
        registry.register(addr.as_str(), service.client());
        println!("spawned wallet service {i}: {addr}");
        services.push(service);
    }

    let tag = |org: &str| {
        DiscoveryTag::new(format!("svc.{org}").as_str())
            .with_ttl(Ticks(60))
            .with_subject_flag(SubjectFlag::Search)
    };

    // Supply-chain trust: Clerk -> Retailer.staff -> Logistics.partner ->
    // Supplier.orders, each hop stored at its subject's home service.
    services[2].wallet().publish(
        retailer
            .delegate(Node::entity(&clerk), Node::role(retailer.role("staff")))
            .object_tag(tag("retailer"))
            .sign(&retailer)?,
        vec![],
    )?;
    services[2].wallet().publish(
        logistics
            .delegate(
                Node::role(retailer.role("staff")),
                Node::role(logistics.role("partner")),
            )
            .subject_tag(tag("retailer"))
            .object_tag(tag("logistics"))
            .sign(&logistics)?,
        vec![],
    )?;
    services[1].wallet().publish(
        supplier
            .delegate(
                Node::role(logistics.role("partner")),
                Node::role(supplier.role("orders")),
            )
            .subject_tag(tag("logistics"))
            .object_tag(tag("supplier"))
            .sign(&supplier)?,
        vec![],
    )?;

    // The ordering server runs discovery over the live services.
    let local = Wallet::new("server.local", clock);
    let mut directory = Directory::new();
    directory.register(Node::entity(&clerk), tag("retailer"));
    for (org, entity) in [
        ("supplier", &supplier),
        ("logistics", &logistics),
        ("retailer", &retailer),
    ] {
        directory.register_entity(entity.id(), tag(org));
    }
    let mut agent = DiscoveryAgent::new(registry, local, directory);
    let outcome = agent.discover(
        &Node::entity(&clerk),
        &Node::role(supplier.role("orders")),
        &[],
    );

    println!("\ndiscovery over threads:");
    for step in &outcome.trace {
        println!("  {step}");
    }
    let monitor = outcome.monitor.expect("clerk authorized across three orgs");

    let mut ctx = SyntaxContext::new();
    for e in [&supplier, &logistics, &retailer, &clerk] {
        ctx.register_local(e);
    }
    println!("\nproof:\n{}", render_proof(monitor.proof(), &ctx));

    let mut served = 0;
    for service in services {
        served += service.shutdown();
    }
    println!("wallet services answered {served} requests in total");
    Ok(())
}
