//! Continuous monitoring of a long-lived interaction (§4.2.2): a
//! role-gated data feed over a switchboard channel, terminated mid-stream
//! by a pushed revocation, then re-established through an alternate
//! delegation path.
//!
//! ```sh
//! cargo run --example continuous_monitoring
//! ```

use drbac::core::{LocalEntity, Node, SignedRevocation, SimClock};
use drbac::crypto::SchnorrGroup;
use drbac::net::{PushHub, Switchboard};
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let group = SchnorrGroup::test_256();
    let provider = LocalEntity::generate("FeedProvider", group.clone(), &mut rng);
    let broker = LocalEntity::generate("Broker", group.clone(), &mut rng);
    let client = LocalEntity::generate("Client", group, &mut rng);

    let clock = SimClock::new();
    let wallet = Wallet::new("wallet.provider.example", clock.clone());
    let subscriber_role = provider.role("feed-subscriber");

    // Path 1: the broker enrolls the client (third-party delegation).
    wallet.publish(
        provider
            .delegate(
                Node::entity(&broker),
                Node::role_admin(subscriber_role.clone()),
            )
            .sign(&provider)?,
        vec![],
    )?;
    let enrollment = broker
        .delegate(Node::entity(&client), Node::role(subscriber_role.clone()))
        .sign(&broker)?;
    wallet.publish(enrollment.clone(), vec![])?;

    // Establish a role-gated secure channel: the client must prove the
    // subscriber role; the channel stays open only while the proof holds.
    let switchboard = Switchboard::new();
    let channel = switchboard.connect_role_gated(
        &client,
        &provider,
        &wallet,
        subscriber_role.clone(),
        clock.now(),
        &mut rng,
    )?;
    println!("channel open: {}", channel.is_open());

    // Stream a few sealed frames.
    for i in 0..3 {
        let frame = format!("tick {i}: price=42.{i}");
        let sealed = channel.seal(frame.as_bytes())?;
        let opened = channel.open(&sealed)?;
        println!(
            "frame {i}: {} ({} sealed bytes)",
            String::from_utf8_lossy(&opened),
            sealed.len()
        );
    }

    // A threaded push hub delivers the revocation event asynchronously —
    // the push model of delegation subscriptions, no polling anywhere.
    let hub = PushHub::new();
    let events = hub.subscribe(enrollment.id());
    let publisher = hub.publisher();
    wallet.subscribe(enrollment.id(), move |event| publisher.publish(event));

    println!("\nbroker revokes the client's enrollment mid-stream...");
    let revocation = SignedRevocation::revoke(&enrollment, &broker, clock.now())?;
    wallet.revoke(&revocation)?;

    let event = events.recv_timeout(Duration::from_secs(2))?;
    println!("push received: {event}");
    println!("channel open: {}", channel.is_open());
    assert!(!channel.is_open());
    assert!(channel.seal(b"more data").is_err());

    // Path 2: the provider re-enrolls the client directly; a fresh proof
    // and channel restore service.
    println!("\nprovider re-enrolls the client directly...");
    wallet.publish(
        provider
            .delegate(Node::entity(&client), Node::role(subscriber_role.clone()))
            .sign(&provider)?,
        vec![],
    )?;
    let channel2 = switchboard.connect_role_gated(
        &client,
        &provider,
        &wallet,
        subscriber_role,
        clock.now(),
        &mut rng,
    )?;
    println!("new channel open: {}", channel2.is_open());
    let sealed = channel2.seal(b"service restored")?;
    println!(
        "frame: {}",
        String::from_utf8_lossy(&channel2.open(&sealed)?)
    );

    hub.shutdown();
    Ok(())
}
